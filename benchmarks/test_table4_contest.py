"""Table IV bench: Contango versus the non-integrated baseline flows."""

from collections import defaultdict

from harness import table4_contest_rows


def test_table4_contest_comparison(benchmark):
    rows = benchmark.pedantic(table4_contest_rows, rounds=1, iterations=1)

    by_benchmark = defaultdict(dict)
    for row in rows:
        by_benchmark[row["benchmark"]][row["flow"]] = row

    print("\nTable IV -- Contango vs baseline flows (CLR ps / cap % of limit)")
    flows = ["contango", "greedy_buffered", "unoptimized_dme", "bounded_skew"]
    print("  benchmark    " + "".join(f"{f:>22s}" for f in flows))
    for name, per_flow in by_benchmark.items():
        cells = "".join(
            f"{per_flow[f]['clr_ps']:13.1f}/{per_flow[f]['cap_pct']:7.1f}" for f in flows
        )
        print(f"  {name:<12s}{cells}")

    ratios = []
    wins = 0
    for name, per_flow in by_benchmark.items():
        contango = per_flow["contango"]
        best_baseline = min(per_flow[f]["clr_ps"] for f in flows[1:])
        # Contango must always respect the capacitance limit (the baselines
        # are allowed to land anywhere).
        assert contango["cap_pct"] <= 100.5
        if contango["clr_ps"] <= best_baseline * 1.05:
            wins += 1
        if contango["clr_ps"] > 0:
            ratios.append(best_baseline / contango["clr_ps"])
    average_advantage = sum(ratios) / len(ratios)
    print(f"  CLR wins over the best baseline: {wins}/{len(by_benchmark)}")
    print(f"  average CLR advantage over the best baseline: {average_advantage:.2f}x")
    # The Table IV shape: the integrated flow wins on (almost) every chip and
    # by a clear factor on average -- the paper reports 2.15-3.99x against the
    # contest entries.
    assert wins >= len(by_benchmark) - 2
    assert average_advantage > 1.3
