"""Service perf smoke: thin wrapper over the registered ``service`` case.

The measurement lives in :class:`repro.perf.cases.ServiceCase`: warm-pool
vs per-call-pool dispatch of many tiny jobs, gating the reuse invariant
(one pool for the whole warm run, identical fingerprints either way) while
leaving the speedup an untracked trajectory -- on a 1-core host both
variants serialize onto the same CPU.  ``repro perf run --case service`` is
the ledger-recording way to run it; this script keeps the old entry point
and ``BENCH_service.json`` drop location.

Usage::

    PYTHONPATH=src python benchmarks/service_smoke.py [output.json]
"""

from __future__ import annotations

import sys

from case_smoke import run_case_smoke

if __name__ == "__main__":
    raise SystemExit(run_case_smoke("service", "BENCH_service.json", sys.argv))
