"""Service-reuse smoke: warm-pool vs per-call-pool dispatch overhead.

A production service sees many small requests, not one big batch, so the
cost that matters is per-*call*: a fresh ``ProcessPoolExecutor`` per call
(the pre-PR5 ``BatchRunner.run`` behavior) pays pool spin-up and worker
warm-up every time, while a :class:`repro.api.SynthesisService` pays it once
and reuses the warm workers for every subsequent call.

This smoke times ``CALLS`` single-job dispatches of a deliberately tiny job
(initial-tree-only pipeline, so dispatch overhead dominates synthesis time)
both ways and writes the comparison to ``BENCH_service.json``.  It asserts
the *reuse invariant* (the warm service creates exactly one pool; results
are identical either way) and records the speedup without hard-failing on
it: on fork-based Linux pool creation is cheap and on a loaded 1-core CI
box timings are noisy, so the number is a tracked trajectory, not a gate.

Run with:  PYTHONPATH=src python benchmarks/service_smoke.py [output.json]
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

from repro.api.jobs import JobSpec
from repro.api.service import SynthesisService

CALLS = 6
WORKERS = 2
#: Initial-tree-only synthesis on a small instance: all dispatch, little work.
JOB = JobSpec(instance="ti:24", engine="elmore", pipeline=("initial",))


def fingerprints(records):
    return [record.fingerprint for record in records]


def time_cold() -> "tuple[float, list]":
    """A fresh service (and therefore a fresh pool) per call."""
    results = []
    start = time.perf_counter()
    for _ in range(CALLS):
        with SynthesisService(max_workers=WORKERS) as service:
            results.extend(service.run([JOB]).records)
    return time.perf_counter() - start, results


def time_warm() -> "tuple[float, list, SynthesisService]":
    """One service, pool created on the first call and reused afterwards."""
    results = []
    start = time.perf_counter()
    with SynthesisService(max_workers=WORKERS) as service:
        for _ in range(CALLS):
            results.extend(service.run([JOB]).records)
        elapsed = time.perf_counter() - start
    return elapsed, results, service


def main() -> int:
    output = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("BENCH_service.json")
    cold_s, cold_records = time_cold()
    warm_s, warm_records, service = time_warm()

    # Reuse invariants: one pool for the whole warm run, identical results.
    assert service.pools_created == 1, service.pools_created
    assert service.jobs_dispatched == CALLS
    assert fingerprints(cold_records) == fingerprints(warm_records)

    cpu_count = os.cpu_count() or 1
    payload = {
        "benchmark": f"service_{CALLS}call_ti24_initial_elmore",
        "calls": CALLS,
        "workers": WORKERS,
        "cpu_count": cpu_count,
        # On a 1-core box warm and cold both serialize onto the same CPU, so
        # the speedup is noise; flag it so trajectory dashboards skip it.
        "speedup_meaningful": cpu_count > 1,
        "cold_pool_wall_clock_s": round(cold_s, 4),
        "warm_pool_wall_clock_s": round(warm_s, 4),
        "cold_per_call_s": round(cold_s / CALLS, 4),
        "warm_per_call_s": round(warm_s / CALLS, 4),
        "speedup": round(cold_s / warm_s, 3) if warm_s > 0 else None,
        "pools_created_warm": service.pools_created,
        "pools_created_cold": CALLS,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    if cpu_count == 1:
        print(
            "service_smoke: single-CPU host -- speedup is not meaningful "
            "(speedup_meaningful=false in the record)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
