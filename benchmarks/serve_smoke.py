"""Serve e2e smoke: a real ``repro serve`` process, deduped over live HTTP.

Unlike the other smokes (thin wrappers over registered perf cases -- the
scheduler-level dedup measurement lives in
:class:`repro.perf.cases.ServeCase`), this one exercises the full deployed
shape: spawn ``python -m repro serve`` as a subprocess, submit the same
``scenario:banks`` job twice concurrently over HTTP, and assert through
``/metrics`` that exactly one pool execution happened and the duplicate
completed flagged ``cached``, with a bit-identical record outside the
wall-clock fields.  Exit nonzero on any violation (the CI e2e gate).

Usage::

    PYTHONPATH=src python benchmarks/serve_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

JOB = {
    "instance": "scenario:banks:sinks=24",
    "engine": "elmore",
    "pipeline": ["initial"],
}


def request(
    base: str, path: str, payload: Optional[Dict[str, Any]] = None
) -> Tuple[int, Dict[str, Any]]:
    req = urllib.request.Request(
        base + path,
        data=None if payload is None else json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="GET" if payload is None else "POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=120) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def wait_result(base: str, job_id: str, tries: int = 600) -> Dict[str, Any]:
    for _ in range(tries):
        status, body = request(base, f"/jobs/{job_id}/result")
        if status == 200:
            return body
        if status != 409:
            raise AssertionError(f"{job_id}: unexpected status {status}: {body}")
        time.sleep(0.1)
    raise AssertionError(f"{job_id} never completed")


def stable(record: Dict[str, Any]) -> Dict[str, Any]:
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    from repro.api.records import stable_record

    return stable_record(record)


def main() -> int:
    root = Path(__file__).resolve().parents[1]
    port_file = Path(tempfile.mkdtemp()) / "port"
    env = dict(os.environ, PYTHONPATH=str(root / "src"))
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--port-file", str(port_file)],
        env=env, cwd=str(root),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        deadline = time.monotonic() + 60
        while not port_file.exists():
            if time.monotonic() > deadline:
                raise AssertionError("repro serve never wrote its port file")
            if server.poll() is not None:
                out = server.stdout.read() if server.stdout else ""
                raise AssertionError(f"repro serve exited early:\n{out}")
            time.sleep(0.1)
        base = f"http://127.0.0.1:{int(port_file.read_text().strip())}"

        # The headline invariant: two concurrent identical submissions.
        results = []

        def submit() -> None:
            results.append(request(base, "/jobs", dict(JOB)))

        threads = [threading.Thread(target=submit) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert [status for status, _ in results] == [202, 202], results
        ids = [body["job_id"] for _, body in results]
        records = {job_id: wait_result(base, job_id) for job_id in ids}

        _, metrics = request(base, "/metrics")
        scheduler = metrics["scheduler"]
        cached_flags = sorted(body["cached"] for body in records.values())
        first, second = (records[job_id]["record"] for job_id in ids)

        checks = [
            ("one_pool_execution", scheduler["pool_executions"] == 1,
             f"pool_executions={scheduler['pool_executions']} (want 1)"),
            ("duplicate_flagged_cached", cached_flags == [False, True],
             f"cached flags {cached_flags} (want one of each)"),
            ("dedup_counted", scheduler["cache"]["hits"]
             + scheduler["cache"]["coalesced"] == 1,
             f"cache stats {scheduler['cache']}"),
            ("records_bit_identical", stable(first) == stable(second),
             "cached vs executed record, wall-clock fields excluded"),
            ("fingerprints_equal",
             first["fingerprint"] == second["fingerprint"],
             f"fingerprint {first['fingerprint'][:16]}..."),
        ]
        failed = [(name, detail) for name, ok, detail in checks if not ok]
        for name, ok, detail in checks:
            print(f"{'ok  ' if ok else 'FAIL'} {name}: {detail}")
        return 1 if failed else 0
    finally:
        server.send_signal(signal.SIGINT)
        try:
            output, _ = server.communicate(timeout=30)
        except subprocess.TimeoutExpired:
            server.kill()
            output, _ = server.communicate()
        print("--- repro serve ---")
        print(output or "")


if __name__ == "__main__":
    raise SystemExit(main())
