"""Figure 3 bench: render the optimized fnb1-style tree with the slack gradient."""

from pathlib import Path

from harness import bench_scale, flow_config

from repro.analysis import ClockNetworkEvaluator, EvaluatorConfig
from repro.core import ContangoFlow, annotate_tree_slacks
from repro.viz import render_tree_svg
from repro.workloads import generate_ispd09_benchmark


def _render_fnb1():
    instance = generate_ispd09_benchmark("ispd09fnb1", sink_scale=bench_scale())
    result = ContangoFlow(flow_config()).run(instance)
    evaluator = ClockNetworkEvaluator(
        EvaluatorConfig(engine="arnoldi", slew_limit=instance.slew_limit)
    )
    report = evaluator.evaluate(result.tree)
    annotation = annotate_tree_slacks(result.tree, report)
    svg = render_tree_svg(
        result.tree,
        annotation=annotation,
        obstacles=instance.obstacles,
        die=instance.die,
        title=f"{instance.name}: skew {result.skew:.1f} ps, CLR {result.clr:.1f} ps",
    )
    return {"svg": svg, "result": result, "instance": instance}


def test_fig3_tree_rendering(benchmark, tmp_path):
    outcome = benchmark.pedantic(_render_fnb1, rounds=1, iterations=1)
    svg, result = outcome["svg"], outcome["result"]

    target = Path(tmp_path) / "fnb1_tree.svg"
    target.write_text(svg, encoding="utf-8")
    print(f"\nFigure 3 -- rendered {result.tree.sink_count()} sinks, "
          f"{result.tree.buffer_count()} inverters to {target}")

    # The rendering must contain the elements the paper's figure shows:
    # sink crosses, buffer rectangles and slack-gradient coloured wires.
    assert svg.count("<path") == result.tree.sink_count()
    assert svg.count("#1f5fd0") == result.tree.buffer_count()
    assert "rgb(" in svg
