"""Table I bench: composite inverter analysis of the ISPD'09 library."""

from harness import table1_inverter_rows


def test_table1_composite_inverter_analysis(benchmark):
    rows = benchmark.pedantic(table1_inverter_rows, rounds=3, iterations=1)
    by_type = {row["type"]: row for row in rows if "count" not in row}

    # Shape check against the paper's Table I: 8 parallel small inverters
    # dominate the large inverter, smaller batches do not.
    assert by_type["8X Small"]["dominates_large"]
    assert not by_type["4X Small"]["dominates_large"]
    assert rows[-1]["count"] == 8

    print("\nTable I -- inverter analysis (ISPD'09 library)")
    for row in rows[:-1]:
        print(
            f"  {row['type']:<10s} input {row['input_cap_fF']:6.1f} fF   "
            f"output {row['output_cap_fF']:6.1f} fF   R {row['output_res_ohm']:6.1f} ohm"
        )
    print(f"  smallest small-inverter batch dominating 1X Large: {rows[-1]['count']}")
