"""Tracing perf smoke: thin wrapper over the registered ``trace`` case.

The measurement lives in :class:`repro.perf.cases.TraceCase`: traced vs
untraced record parity and fingerprint equality (deterministic checks) and
the <2% disabled-instrumentation overhead ceiling (per-event null-span cost
scaled by the traced run's span count, a timing check).  ``repro perf run
--case trace`` is the ledger-recording way to run it; this script keeps the
old entry point and ``BENCH_trace.json`` drop location.

Usage::

    PYTHONPATH=src python benchmarks/trace_smoke.py [output.json]
"""

from __future__ import annotations

import sys

from case_smoke import run_case_smoke

if __name__ == "__main__":
    raise SystemExit(run_case_smoke("trace", "BENCH_trace.json", sys.argv))
