"""Tracing overhead smoke: default-off instrumentation must stay near-free.

Runs the 200-sink TI Contango flow (arnoldi) and holds the two properties
the observability layer promises:

* **parity** -- a traced run and an untraced run of the same job produce
  bit-identical records (modulo the wall-clock-bearing fields and the trace
  summary itself) and equal fingerprints.  A tracer that perturbs results
  can never pass.
* **disabled overhead <2%** -- with tracing off, every instrumented call
  site costs one attribute read plus a branch (wrapper guards) or one
  cached no-op context manager (``NULL_TRACER.span``).  The per-event cost
  is micro-measured over many iterations, scaled by the number of span
  events a traced run of the same job records, and compared against the
  untraced flow runtime; the acceptance ceiling is
  ``DISABLED_OVERHEAD_CEILING_PCT``.

The enabled-tracing runtime is also recorded (informational, not gated --
callers opting into tracing pay for what they asked for).  The record lands
in ``BENCH_trace.json`` next to the other BENCH_* trajectories.

Usage::

    PYTHONPATH=src python benchmarks/trace_smoke.py [output.json]
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.api.jobs import JobSpec
from repro.obs import NULL_TRACER, Tracer, summarize
from repro.runner import run_job

SINKS = 200
ENGINE = "arnoldi"
NULL_SPAN_ITERATIONS = 200_000
FLOW_REPEATS = 3
DISABLED_OVERHEAD_CEILING_PCT = 2.0

#: Fields that legitimately differ between two runs of the same job.
WALLCLOCK_FIELDS = ("wall_clock_s",)


def spec() -> JobSpec:
    return JobSpec(instance=f"ti:{SINKS}", engine=ENGINE, seed=11)


def comparable(record) -> dict:
    payload = record.to_record()
    payload.pop("trace", None)
    for field in WALLCLOCK_FIELDS:
        payload.pop(field, None)
    if isinstance(payload.get("summary"), dict):
        payload["summary"].pop("runtime_s", None)
    for row in payload.get("stage_table", []):
        row.pop("elapsed_s", None)
    return payload


def check_parity() -> dict:
    tracer = Tracer()
    traced = run_job(spec(), tracer=tracer)
    plain = run_job(spec())
    summary = summarize(tracer)
    return {
        "parity": comparable(traced) == comparable(plain),
        "fingerprints_equal": traced.fingerprint == plain.fingerprint,
        "span_events": summary.spans,
        "trace_total_s": summary.total_s,
    }


def time_untraced_flow() -> float:
    best = float("inf")
    for _ in range(FLOW_REPEATS):
        start = time.perf_counter()
        run_job(spec())
        best = min(best, time.perf_counter() - start)
    return best


def time_traced_flow() -> float:
    start = time.perf_counter()
    run_job(spec(), tracer=Tracer())
    return time.perf_counter() - start


def null_span_cost_s() -> float:
    """Per-event cost of the disabled path, upper-bounded.

    One iteration covers both disabled idioms: the ``tracer.enabled`` guard
    branch of the wrapper methods *and* a full enter/exit of the cached
    no-op context manager the unconditional ``with tracer.span(...)`` sites
    use -- strictly more work than any single real call site does.
    """
    tracer = NULL_TRACER
    start = time.perf_counter()
    for _ in range(NULL_SPAN_ITERATIONS):
        if tracer.enabled:  # the wrapper-guard branch
            raise AssertionError("NULL_TRACER must be disabled")
        with tracer.span("x"):  # the unconditional-span path
            pass
    return (time.perf_counter() - start) / NULL_SPAN_ITERATIONS


def main() -> int:
    output = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("BENCH_trace.json")

    parity = check_parity()
    untraced_s = time_untraced_flow()
    traced_s = time_traced_flow()
    per_event_s = null_span_cost_s()
    disabled_overhead_s = per_event_s * parity["span_events"]
    disabled_overhead_pct = 100.0 * disabled_overhead_s / untraced_s

    payload = {
        "benchmark": f"trace_ti{SINKS}_{ENGINE}",
        "sinks": SINKS,
        "engine": ENGINE,
        "parity": parity["parity"],
        "fingerprints_equal": parity["fingerprints_equal"],
        "span_events": parity["span_events"],
        "untraced_runtime_s": round(untraced_s, 4),
        "traced_runtime_s": round(traced_s, 4),
        "traced_overhead_pct": round(100.0 * (traced_s - untraced_s) / untraced_s, 2),
        "null_span_cost_ns": round(per_event_s * 1e9, 1),
        "disabled_overhead_s": round(disabled_overhead_s, 6),
        "disabled_overhead_pct": round(disabled_overhead_pct, 4),
        "disabled_overhead_ceiling_pct": DISABLED_OVERHEAD_CEILING_PCT,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))

    failed = False
    if not parity["parity"]:
        print(
            "FAIL: traced and untraced records of the same job diverged",
            file=sys.stderr,
        )
        failed = True
    if not parity["fingerprints_equal"]:
        print(
            "FAIL: tracing changed the job's content fingerprint",
            file=sys.stderr,
        )
        failed = True
    if disabled_overhead_pct >= DISABLED_OVERHEAD_CEILING_PCT:
        print(
            f"FAIL: disabled-tracing overhead {disabled_overhead_pct:.2f}% of the "
            f"ti:{SINKS} flow runtime (ceiling "
            f"{DISABLED_OVERHEAD_CEILING_PCT:.0f}%)",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
