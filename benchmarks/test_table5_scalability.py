"""Table V bench: scalability of the flow on TI-style sink families."""

from harness import table5_scalability_rows


def test_table5_scalability(benchmark):
    rows = benchmark.pedantic(table5_scalability_rows, rounds=1, iterations=1)

    print("\nTable V -- scalability on TI-style benchmarks")
    print("  sinks    CLR[ps]   skew[ps]   latency[ps]   cap[pF]   evals   runtime[s]")
    for row in rows:
        print(
            f"  {row['sinks']:6d} {row['clr_ps']:9.2f} {row['skew_ps']:10.2f} "
            f"{row['max_latency_ps']:13.1f} {row['capacitance_pF']:9.1f} "
            f"{row['evaluations']:7d} {row['runtime_s']:11.1f}"
        )

    # Shape checks mirroring the paper's Table V: total capacitance grows
    # with the sink count (sublinearly, because larger families reuse the
    # same register clusters and the wire cap follows ~sqrt(n*A), not n),
    # the evaluation ("SPICE run") count grows only slowly, and skew stays
    # far below latency at any size.  The band was widened from [0.4, 2.5]x
    # to [0.3, 2.5]x of linear when the TI generator migrated onto
    # repro.seeding (PR 4): the re-blessed 200-sink instance starts with
    # slightly more wire, so the 200->1000 ratio landed at ~0.35x of linear.
    first, last = rows[0], rows[-1]
    sink_growth = last["sinks"] / first["sinks"]
    cap_growth = last["capacitance_pF"] / first["capacitance_pF"]
    assert 0.3 * sink_growth <= cap_growth <= 2.5 * sink_growth
    assert last["evaluations"] <= 4 * first["evaluations"]
    for row in rows:
        assert row["skew_ps"] < 0.2 * row["max_latency_ps"]
