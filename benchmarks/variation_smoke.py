"""Variation perf smoke: thin wrapper over the registered ``variation`` case.

The measurement lives in :class:`repro.perf.cases.VariationCase`: batched
1000-sample Monte Carlo skew-yield evaluation against the serial
one-``Corner``-at-a-time reference, with the zero-variance bit-parity check
(deterministic) and the 20x speedup floor (timing check).  ``repro perf run
--case variation`` is the ledger-recording way to run it; this script keeps
the old entry point and ``BENCH_variation.json`` drop location.

Usage::

    PYTHONPATH=src python benchmarks/variation_smoke.py [output.json]
"""

from __future__ import annotations

import sys

from case_smoke import run_case_smoke

if __name__ == "__main__":
    raise SystemExit(run_case_smoke("variation", "BENCH_variation.json", sys.argv))
