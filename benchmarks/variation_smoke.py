"""Variation-engine performance smoke: batched vs. per-sample Monte Carlo.

Synthesizes the 200-sink TI instance once (arnoldi Contango flow), then
times a 1000-sample Monte Carlo skew-yield evaluation two ways:

* **batched** -- :meth:`ClockNetworkEvaluator.evaluate_yield`, which pushes
  every sample and both transitions through one
  :func:`~repro.analysis.arnoldi.batched_tap_moments` call per stage and
  corner;
* **serial reference** -- the pre-subsystem way: one
  :meth:`ClockNetworkEvaluator.evaluate` call per sample against globally
  perturbed :class:`~repro.analysis.corners.Corner` objects (a fresh
  evaluator per sample, as a naive sweep would do).  Only a subset of
  samples is actually run and the per-sample rate extrapolated, because the
  full serial sweep would dominate CI time -- which is rather the point.

The record lands in ``BENCH_variation.json`` (samples/sec both ways, the
speedup, and a zero-variance bit-parity check) so the variation engine's
performance trajectory is machine-readable across PRs, next to
``BENCH_evaluator.json`` and ``BENCH_runner.json``.

Usage::

    PYTHONPATH=src python benchmarks/variation_smoke.py [output.json]
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.analysis import ClockNetworkEvaluator, EvaluatorConfig
from repro.analysis.variation import VariationModel, default_variation_model
from repro.core import ContangoFlow, FlowConfig
from repro.seeding import derive_rng
from repro.workloads import generate_ti_benchmark

SINKS = 200
ENGINE = "arnoldi"
SAMPLES = 1000
SERIAL_SAMPLES = 30
SEED = 7


def _make_evaluator(instance, corners=None) -> ClockNetworkEvaluator:
    return ClockNetworkEvaluator(
        config=EvaluatorConfig(engine=ENGINE, slew_limit=instance.slew_limit),
        corners=corners,
        capacitance_limit=instance.capacitance_limit,
    )


def serial_reference_rate(instance, tree, model: VariationModel) -> float:
    """Per-sample wall-clock of the naive one-``Corner``-at-a-time sweep.

    Each sample draws one global multiplier set from the model's marginal
    and evaluates the tree at correspondingly scaled corners with a fresh
    evaluator -- the only way to express the perturbation through the
    nominal :meth:`evaluate` API.
    """
    rng = derive_rng(SEED, "variation-bench-serial")
    base_corners = FlowConfig().corners
    start = time.perf_counter()
    for _ in range(SERIAL_SAMPLES):
        draw = model.sample(1, rng, n_stages=1)
        corners = [
            corner.scaled(
                driver=float(draw.driver[0, 0]),
                wire=float(draw.wire_res[0, 0]),
            )
            for corner in base_corners
        ]
        _make_evaluator(instance, corners).evaluate(tree)
    return (time.perf_counter() - start) / SERIAL_SAMPLES


def main() -> int:
    output = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("BENCH_variation.json")
    instance = generate_ti_benchmark(SINKS)
    flow_start = time.perf_counter()
    result = ContangoFlow(FlowConfig(engine=ENGINE)).run(instance)
    flow_s = time.perf_counter() - flow_start
    tree = result.require_tree()
    model = default_variation_model()

    evaluator = _make_evaluator(instance)
    # Cold pass populates the base-moment cache; the timed pass measures the
    # steady-state throughput an optimization loop would see.
    evaluator.evaluate_yield(tree, model, samples=8, rng=derive_rng(SEED, "warmup"))
    start = time.perf_counter()
    report = evaluator.evaluate_yield(
        tree, model, samples=SAMPLES, rng=derive_rng(SEED, "variation-bench")
    )
    batched_s = time.perf_counter() - start

    serial_per_sample = serial_reference_rate(instance, tree, model)
    speedup = serial_per_sample / (batched_s / SAMPLES)

    nominal = evaluator.evaluate(tree)
    zero = evaluator.evaluate_yield(
        tree, VariationModel(), samples=4, rng=derive_rng(SEED, "parity")
    )
    parity = bool(
        np.all(zero.skew_samples == nominal.skew)
        and np.all(zero.clr_samples == nominal.clr)
        and np.all(zero.worst_slew_samples == nominal.worst_slew)
    )

    payload = {
        "benchmark": f"variation_ti{SINKS}_{ENGINE}_mc{SAMPLES}",
        "sinks": SINKS,
        "engine": ENGINE,
        "samples": SAMPLES,
        "seed": SEED,
        "model": model.describe(),
        "flow_runtime_s": round(flow_s, 4),
        "batched_wall_clock_s": round(batched_s, 4),
        "batched_samples_per_s": round(SAMPLES / batched_s, 1),
        "serial_reference_samples": SERIAL_SAMPLES,
        "serial_samples_per_s": round(1.0 / serial_per_sample, 1),
        "speedup_vs_serial": round(speedup, 1),
        "zero_variance_bit_parity": parity,
        "skew_p95_ps": round(report.skew_p95, 3),
        "skew_yield": report.skew_yield,
        "cache": evaluator.cache_stats(),
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    if not parity:
        print("FAIL: zero-variance Monte Carlo diverged from nominal evaluation",
              file=sys.stderr)
        return 1
    if speedup < 20.0:
        print(f"FAIL: batched path only {speedup:.1f}x over the serial reference "
              "(acceptance floor is 20x)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
