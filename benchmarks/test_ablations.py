"""Ablation benches for the design choices DESIGN.md calls out.

Three ablations, all on the same scaled benchmark:

* composite inverters (8x/16x/24x small) versus large-inverter batches,
* obstacle-aware construction versus ignoring blockages at buffer time,
* evaluation engine accuracy: Elmore vs Arnoldi vs the transient solver on
  the same optimized network.
"""

import pytest

from harness import bench_scale, flow_config

from repro.analysis import ClockNetworkEvaluator, EvaluatorConfig
from repro.core import ContangoFlow, FlowConfig
from repro.workloads import generate_ispd09_benchmark

BENCHMARK = "ispd09f22"


def _run(config):
    instance = generate_ispd09_benchmark(BENCHMARK, sink_scale=bench_scale())
    return instance, ContangoFlow(config).run(instance)


def test_ablation_composite_inverters(benchmark):
    """Composite small inverters versus batches of the large inverter."""

    def run_both():
        _, with_composites = _run(flow_config(use_composite_inverters=True))
        _, without = _run(flow_config(use_composite_inverters=False))
        return with_composites, without

    with_composites, without = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print("\nAblation: composite inverters")
    print(f"  8x-small composites : CLR {with_composites.clr:7.2f} ps  cap "
          f"{100 * with_composites.capacitance_utilization:5.1f}%")
    print(f"  large-inverter mode : CLR {without.clr:7.2f} ps  cap "
          f"{100 * without.capacitance_utilization:5.1f}%")
    # The composite library never does worse on capacitance at comparable CLR
    # (Table I dominance carried through the flow).
    assert with_composites.capacitance_utilization <= without.capacitance_utilization * 1.10


def test_ablation_obstacle_avoidance(benchmark):
    """Disabling obstacle repair must not make the network cleaner."""

    def run_both():
        _, with_repair = _run(flow_config(enable_obstacle_avoidance=True))
        _, without_repair = _run(flow_config(enable_obstacle_avoidance=False))
        return with_repair, without_repair

    with_repair, without_repair = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print("\nAblation: obstacle avoidance")
    print(f"  with repair    : slew violations {len(with_repair.final_report.slew_violations):3d}  "
          f"CLR {with_repair.clr:7.2f} ps")
    print(f"  without repair : slew violations {len(without_repair.final_report.slew_violations):3d}  "
          f"CLR {without_repair.clr:7.2f} ps")
    assert len(with_repair.final_report.slew_violations) <= len(
        without_repair.final_report.slew_violations
    )


def test_ablation_engine_accuracy(benchmark):
    """Elmore vs Arnoldi vs transient on the same optimized network."""

    def run_engines():
        instance, result = _run(flow_config())
        summaries = {}
        for engine in ("elmore", "arnoldi", "spice"):
            evaluator = ClockNetworkEvaluator(
                EvaluatorConfig(engine=engine, slew_limit=instance.slew_limit),
                capacitance_limit=instance.capacitance_limit,
            )
            summaries[engine] = evaluator.evaluate(result.tree)
        return summaries

    summaries = benchmark.pedantic(run_engines, rounds=1, iterations=1)
    print("\nAblation: evaluation engine accuracy (same network)")
    for engine, report in summaries.items():
        print(f"  {engine:8s} latency {report.max_latency:7.1f} ps  skew {report.skew:6.2f} ps  "
              f"worst slew {report.worst_slew:6.1f} ps")
    # Elmore over-estimates latency; the reduced-order model tracks the
    # transient solver closely (the paper's argument for replacing SPICE with
    # Arnoldi-style evaluation).
    assert summaries["elmore"].max_latency >= summaries["spice"].max_latency
    assert summaries["arnoldi"].max_latency == pytest.approx(
        summaries["spice"].max_latency, rel=0.2
    )
