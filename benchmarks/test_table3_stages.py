"""Table III bench: CLR/skew after each Contango stage on every benchmark."""

from collections import defaultdict

from harness import table3_stage_rows


def test_table3_stage_progress(benchmark):
    rows = benchmark.pedantic(table3_stage_rows, rounds=1, iterations=1)

    by_benchmark = defaultdict(dict)
    for row in rows:
        by_benchmark[row["benchmark"]][row["stage"]] = row

    print("\nTable III -- progress of individual Contango steps (CLR / skew, ps)")
    stages = ["INITIAL", "TBSZ", "TWSZ", "TWSN", "BWSN"]
    header = "  benchmark    " + "".join(f"{s:>18s}" for s in stages)
    print(header)
    for name, per_stage in by_benchmark.items():
        cells = "".join(
            f"{per_stage[s]['clr_ps']:9.1f}/{per_stage[s]['skew_ps']:7.1f}" for s in stages
        )
        print(f"  {name:<12s}{cells}")

    # Shape checks mirroring the paper's table: the wire-tuning stages never
    # increase skew, and the final skew improves on the initial one.
    for per_stage in by_benchmark.values():
        assert per_stage["TWSZ"]["skew_ps"] <= per_stage["TBSZ"]["skew_ps"] + 1e-6
        assert per_stage["TWSN"]["skew_ps"] <= per_stage["TWSZ"]["skew_ps"] + 1e-6
        assert per_stage["BWSN"]["skew_ps"] <= per_stage["TWSN"]["skew_ps"] + 1e-6
        assert per_stage["BWSN"]["skew_ps"] <= per_stage["INITIAL"]["skew_ps"] + 1e-6
        assert per_stage["BWSN"]["clr_ps"] <= per_stage["INITIAL"]["clr_ps"] + 1e-6
