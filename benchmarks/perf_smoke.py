"""Performance smoke benchmark: the 200-sink TI flow with the arnoldi engine.

Runs the full ``ContangoFlow`` on the 200-sink TI-style benchmark a few times
and writes the best wall-clock time plus evaluator cache statistics to
``BENCH_evaluator.json`` (at the repository root by default), so successive
PRs leave a machine-readable performance trajectory.  The seed (whole-tree
re-evaluation per candidate move) ran this flow in ~1.3 s; the incremental +
vectorized evaluator is expected to stay at least 3x below that.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py [output.json]
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.core import ContangoFlow, FlowConfig
from repro.workloads import generate_ti_benchmark

SINKS = 200
ENGINE = "arnoldi"
REPEATS = 3


def run_flow():
    instance = generate_ti_benchmark(SINKS)
    best = float("inf")
    last = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        last = ContangoFlow(FlowConfig(engine=ENGINE)).run(instance)
        best = min(best, time.perf_counter() - start)
    return best, last


def main() -> int:
    output = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("BENCH_evaluator.json")
    best, result = run_flow()
    payload = {
        "benchmark": f"ti{SINKS}_contango_{ENGINE}",
        "sinks": SINKS,
        "engine": ENGINE,
        "best_runtime_s": round(best, 4),
        "evaluations": result.total_evaluations,
        "skew_ps": round(result.final_report.skew, 3),
        "clr_ps": round(result.final_report.clr, 3),
        "max_latency_ps": round(result.final_report.max_latency, 2),
        "slew_violations": len(result.final_report.slew_violations),
        # The flow evaluator's own cache statistics: a caching regression
        # shows up here as a collapsed hit count, not just as wall-clock.
        "cache": result.evaluator_cache,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
