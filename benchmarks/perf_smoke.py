"""Performance smoke benchmark: the 200-sink TI flow with the arnoldi engine.

A thin wrapper over the :mod:`repro.runner` batch engine: the flow runs as a
single runner job a few times and the best wall-clock plus evaluator cache
statistics go to ``BENCH_evaluator.json`` (at the repository root by
default), so successive PRs leave a machine-readable performance trajectory.
The seed (whole-tree re-evaluation per candidate move) ran this flow in
~1.3 s; the incremental + vectorized evaluator is expected to stay at least
3x below that.

The runner's own parallel-scaling smoke is separate: ``python -m repro
bench`` writes ``BENCH_runner.json`` (serial vs parallel wall-clock of a
4-job matrix).

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py [output.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.runner import JobSpec, run_job

SINKS = 200
ENGINE = "arnoldi"
REPEATS = 3


def run_flow():
    spec = JobSpec(instance=f"ti:{SINKS}", flow="contango", engine=ENGINE)
    best = None
    for _ in range(REPEATS):
        record = run_job(spec)
        if best is None or record.summary.runtime_s < best.summary.runtime_s:
            best = record
    return best


def main() -> int:
    output = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("BENCH_evaluator.json")
    record = run_flow()
    summary = record.summary
    payload = {
        "benchmark": f"ti{SINKS}_contango_{ENGINE}",
        "sinks": SINKS,
        "engine": ENGINE,
        "best_runtime_s": round(summary.runtime_s, 4),
        "evaluations": summary.evaluations,
        "skew_ps": round(summary.skew_ps, 3),
        "clr_ps": round(summary.clr_ps, 3),
        "max_latency_ps": round(summary.max_latency_ps, 2),
        "slew_violations": summary.slew_violations,
        # The flow evaluator's own cache statistics: a caching regression
        # shows up here as a collapsed hit count, not just as wall-clock.
        "cache": record.evaluator_cache,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
