"""Evaluator perf smoke: thin wrapper over the registered ``evaluator`` case.

The measurement itself lives in :class:`repro.perf.cases.EvaluatorCase`:
the 200-sink TI Contango flow (arnoldi) run as a traced job, its evaluator
and cache counters quarantined from the wall-clock medians.  ``repro perf
run --case evaluator`` is the ledger-recording way to run it; this script
keeps the old entry point and ``BENCH_evaluator.json`` drop location.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py [output.json]
"""

from __future__ import annotations

import sys

from case_smoke import run_case_smoke

if __name__ == "__main__":
    raise SystemExit(run_case_smoke("evaluator", "BENCH_evaluator.json", sys.argv))
