"""Shared harness used by every benchmark: regenerates the paper's tables.

Each ``table*_rows`` function returns a list of dictionaries -- one per row of
the corresponding table in the paper -- and is exercised both by the
pytest-benchmark entries in this directory and by ``EXPERIMENTS.md``.

Scaling
-------
The full ISPD'09-style suite takes several minutes per flow with the
transient engine, so the benchmarks default to *scaled* instances (a fraction
of the sinks per chip) and the fast Arnoldi engine; set the environment
variable ``REPRO_BENCH_SCALE=1.0`` and ``REPRO_BENCH_ENGINE=spice`` to run the
full-size reproduction.  The *shape* of every table (orderings, trends,
ratios) is preserved at reduced scale; absolute picosecond values shift.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

from repro.baselines import all_baselines
from repro.core import ContangoFlow, FlowConfig, analyze_composites, table1_rows as _table1
from repro.core.composite import smallest_dominating_count
from repro.cts import ispd09_buffer_library
from repro.cts.bufferlib import ISPD09_LARGE_INVERTER, ISPD09_SMALL_INVERTER
from repro.workloads import (
    ISPD09_BENCHMARKS,
    generate_ispd09_benchmark,
    generate_ti_benchmark,
)

__all__ = [
    "bench_scale",
    "bench_engine",
    "flow_config",
    "table1_inverter_rows",
    "table2_polarity_rows",
    "table3_stage_rows",
    "table4_contest_rows",
    "table5_scalability_rows",
    "DEFAULT_BENCHMARK_NAMES",
    "DEFAULT_TI_COUNTS",
]

DEFAULT_BENCHMARK_NAMES = list(ISPD09_BENCHMARKS)
DEFAULT_TI_COUNTS = [200, 500, 1000]


def bench_scale() -> float:
    """Sink-count scale factor for the ISPD'09-style suite (env: REPRO_BENCH_SCALE)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.35"))


def bench_engine() -> str:
    """Timing engine used by the benches (env: REPRO_BENCH_ENGINE)."""
    return os.environ.get("REPRO_BENCH_ENGINE", "arnoldi")


def flow_config(**overrides) -> FlowConfig:
    """The FlowConfig shared by all benchmark runs."""
    return FlowConfig(engine=bench_engine(), **overrides)


# ----------------------------------------------------------------------
# Table I -- composite inverter analysis
# ----------------------------------------------------------------------
def table1_inverter_rows() -> List[Dict[str, float]]:
    """Rows of Table I plus the dominance conclusion the paper draws from it."""
    rows = _table1(ispd09_buffer_library())
    dominating = smallest_dominating_count(ISPD09_SMALL_INVERTER, ISPD09_LARGE_INVERTER)
    for row in rows:
        row["dominates_large"] = (
            row["type"] != "1X Large"
            and row["input_cap_fF"] <= ISPD09_LARGE_INVERTER.input_cap
            and row["output_cap_fF"] <= ISPD09_LARGE_INVERTER.output_cap
            and row["output_res_ohm"] <= ISPD09_LARGE_INVERTER.output_res
        )
    rows.append({"type": "smallest dominating count", "count": dominating})
    return rows


# ----------------------------------------------------------------------
# Table II -- inverted sinks vs polarity-correcting inverters
# ----------------------------------------------------------------------
def table2_polarity_rows(
    names: Optional[Sequence[str]] = None, sink_scale: Optional[float] = None
) -> List[Dict[str, float]]:
    names = list(names) if names is not None else DEFAULT_BENCHMARK_NAMES
    scale = sink_scale if sink_scale is not None else bench_scale()
    config = flow_config()
    rows = []
    for name in names:
        instance = generate_ispd09_benchmark(name, sink_scale=scale)
        result = ContangoFlow(config).run(instance)
        rows.append(
            {
                "benchmark": name,
                "sinks": instance.sink_count,
                "inverted_sinks": result.inverted_sinks,
                "added_inverters": result.polarity_inverters_added,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Table III -- per-stage progress of the flow
# ----------------------------------------------------------------------
def table3_stage_rows(
    names: Optional[Sequence[str]] = None, sink_scale: Optional[float] = None
) -> List[Dict[str, float]]:
    names = list(names) if names is not None else DEFAULT_BENCHMARK_NAMES
    scale = sink_scale if sink_scale is not None else bench_scale()
    config = flow_config()
    rows = []
    for name in names:
        instance = generate_ispd09_benchmark(name, sink_scale=scale)
        result = ContangoFlow(config).run(instance)
        for record in result.stages:
            rows.append(
                {
                    "benchmark": name,
                    "stage": record.stage,
                    "clr_ps": round(record.clr_ps, 2),
                    "skew_ps": round(record.skew_ps, 2),
                    "cap_pct": round(100.0 * (record.capacitance_utilization or 0.0), 1),
                }
            )
    return rows


# ----------------------------------------------------------------------
# Table IV -- Contango versus the baseline flows
# ----------------------------------------------------------------------
def table4_contest_rows(
    names: Optional[Sequence[str]] = None, sink_scale: Optional[float] = None
) -> List[Dict[str, float]]:
    names = list(names) if names is not None else DEFAULT_BENCHMARK_NAMES
    scale = sink_scale if sink_scale is not None else bench_scale()
    config = flow_config()
    rows = []
    for name in names:
        instance = generate_ispd09_benchmark(name, sink_scale=scale)
        flows = [("contango", ContangoFlow(config))] + [
            (baseline.name, baseline) for baseline in all_baselines(config)
        ]
        for flow_name, flow in flows:
            result = flow.run(instance)
            rows.append(
                {
                    "benchmark": name,
                    "flow": flow_name,
                    "clr_ps": round(result.clr, 2),
                    "skew_ps": round(result.skew, 2),
                    "cap_pct": round(100.0 * (result.capacitance_utilization or 0.0), 1),
                    "slew_violations": len(result.final_report.slew_violations),
                    "runtime_s": round(result.runtime_s, 1),
                }
            )
    return rows


# ----------------------------------------------------------------------
# Table V -- scalability on TI-style benchmarks
# ----------------------------------------------------------------------
def table5_scalability_rows(
    counts: Optional[Sequence[int]] = None,
) -> List[Dict[str, float]]:
    counts = list(counts) if counts is not None else DEFAULT_TI_COUNTS
    config = flow_config()
    rows = []
    for count in counts:
        instance = generate_ti_benchmark(count)
        result = ContangoFlow(config).run(instance)
        report = result.final_report
        rows.append(
            {
                "sinks": count,
                "clr_ps": round(report.clr, 2),
                "skew_ps": round(report.skew, 2),
                "max_latency_ps": round(report.max_latency, 1),
                "capacitance_pF": round(report.total_capacitance / 1000.0, 1),
                "evaluations": result.total_evaluations,
                "runtime_s": round(result.runtime_s, 1),
            }
        )
    return rows
