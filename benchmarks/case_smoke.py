"""Shared CLI shim turning one registered :mod:`repro.perf` case into a smoke.

The five ``*_smoke.py`` scripts used to carry their own measurement code;
that now lives in :mod:`repro.perf.cases` where ``repro perf run`` and the
CI ledger gate execute it.  Each smoke is a thin wrapper: run the named
case, write its schema-versioned ledger entry where the old ``BENCH_*.json``
landed, and exit nonzero if any check (deterministic or timing) failed --
the old hard-floor behavior, preserved for ad-hoc local runs.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import List


def run_case_smoke(case_name: str, default_output: str, argv: List[str]) -> int:
    from repro.perf import resolve_cases, run_case

    output = Path(argv[1]) if len(argv) > 1 else Path(default_output)
    entry = run_case(resolve_cases([case_name])[0])
    output.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n")
    print(json.dumps(entry, indent=2, sort_keys=True))
    failed = [
        check
        for check in list(entry["checks"]) + list(entry["timings"]["checks"])
        if not check["ok"]
    ]
    for check in failed:
        print(f"FAIL: {check['name']}: {check['detail']}", file=sys.stderr)
    return 1 if failed else 0
