"""Propagation perf smoke: thin wrapper over the registered ``propagation`` case.

The measurement lives in :class:`repro.perf.cases.PropagationCase`:
dirty-region single-touch re-evaluation vs cold (5x floor), batched
K-candidate scoring vs serial (3x floor) -- both bit-parity-gated -- plus
the float-keyed timing-cache finding whose hit/miss deltas are now
regression-gated counters.  ``repro perf run --case propagation`` is the
ledger-recording way to run it; this script keeps the old entry point and
``BENCH_propagation.json`` drop location.

Usage::

    PYTHONPATH=src python benchmarks/propagation_smoke.py [output.json]
"""

from __future__ import annotations

import sys

from case_smoke import run_case_smoke

if __name__ == "__main__":
    raise SystemExit(
        run_case_smoke("propagation", "BENCH_propagation.json", sys.argv)
    )
