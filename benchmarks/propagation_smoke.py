"""Incremental-evaluation performance smoke: dirty regions + candidate batches.

Synthesizes the 200-sink TI instance once (arnoldi Contango flow), then
measures the two incremental-evaluation paths the optimization loops lean
on:

* **dirty-region re-evaluation** -- after touching a single sink edge, an
  incremental :meth:`ClockNetworkEvaluator.evaluate` re-propagates only the
  dirty frontier and splices the retained timing back in.  Timed against a
  cold (cache-bypassing) evaluation of the same tree; the acceptance floor
  is 5x.
* **batched candidate scoring** -- :meth:`ClockNetworkEvaluator.
  evaluate_candidates` scores K independent moves in one numpy pass along
  the candidates axis.  Timed against the serial reference (the identical
  call with ``candidate_batching=False``, i.e. one full evaluation per
  candidate); the acceptance floor is 3x.

Both sections assert bit-parity against the reference path before timing
anything, so a fast-but-wrong result can never pass the gate.  The record
also documents the float-keyed timing-cache finding for the transient
engine (the key embeds the raw ``drive_slew``, see
``_transient_stage_timing``): an upstream touch wiggles every downstream
stage's input slew, so the downstream timing entries can never hit again --
dirty-region propagation sidesteps the lookups for retained stages instead
of fixing the key, which would change results.

The record lands in ``BENCH_propagation.json`` next to the other BENCH_*
trajectories.

Usage::

    PYTHONPATH=src python benchmarks/propagation_smoke.py [output.json]
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.analysis import ClockNetworkEvaluator, EvaluatorConfig
from repro.core import ContangoFlow, FlowConfig
from repro.workloads import generate_ti_benchmark

SINKS = 200
ENGINE = "arnoldi"
TOUCH_REPEATS = 40
BATCH_REPEATS = 20
CANDIDATES = 12
COLD_FLOOR = 5.0
BATCH_FLOOR = 3.0


def _make_evaluator(instance, **overrides) -> ClockNetworkEvaluator:
    config = dict(engine=ENGINE, slew_limit=instance.slew_limit)
    config.update(overrides)
    return ClockNetworkEvaluator(
        config=EvaluatorConfig(**config),
        capacitance_limit=instance.capacitance_limit,
    )


def reports_bit_identical(a, b) -> bool:
    if set(a.corners) != set(b.corners):
        return False
    for name in a.corners:
        got, want = a.corners[name], b.corners[name]
        if got.latency != want.latency or got.tap_slew != want.tap_slew:
            return False
        if got.slew != want.slew:
            return False
    return a.summary() == b.summary()


def time_dirty_region(instance, tree):
    """Single-sink-touch incremental re-evaluation vs cold evaluation."""
    evaluator = _make_evaluator(instance)
    evaluator.evaluate(tree)  # warm: models cached, snapshot taken
    sinks = sorted(s.node_id for s in tree.sinks())

    # Parity first: a touched tree's incremental report must equal a fresh
    # cold evaluation bit for bit.
    tree.add_snake(sinks[0], 1.0)
    incremental = evaluator.evaluate(tree)
    cold_reference = _make_evaluator(instance).evaluate(tree, incremental=False)
    parity = reports_bit_identical(incremental, cold_reference)

    start = time.perf_counter()
    for index in range(TOUCH_REPEATS):
        tree.add_snake(sinks[index % len(sinks)], 0.5)
        evaluator.evaluate(tree)
    touch_s = (time.perf_counter() - start) / TOUCH_REPEATS

    start = time.perf_counter()
    for _ in range(TOUCH_REPEATS):
        evaluator.evaluate(tree, incremental=False)
    cold_s = (time.perf_counter() - start) / TOUCH_REPEATS

    stats = evaluator.cache_stats()
    return {
        "parity": parity,
        "cold_ms": round(cold_s * 1e3, 3),
        "touch_ms": round(touch_s * 1e3, 3),
        "speedup": round(cold_s / touch_s, 2),
        "stages_total": stats["stages_total"],
        "stages_propagated": stats["stages_propagated"],
        "propagations_partial": stats["propagations_partial"],
        "propagations_full": stats["propagations_full"],
    }


def candidate_moves(tree, count=CANDIDATES):
    """K independent content-only moves, each snaking two distinct sinks."""
    sinks = sorted(s.node_id for s in tree.sinks())

    def make(index):
        first = sinks[(2 * index) % len(sinks)]
        second = sinks[(2 * index + 1) % len(sinks)]

        def move():
            tree.add_snake(first, 5.0 + index)
            tree.add_snake(second, 2.5 + index)
            return 2

        return move

    return [make(index) for index in range(count)]


def time_candidate_batch(instance, tree):
    """Batched K-candidate scoring vs the serial one-evaluation-per-candidate."""
    moves = candidate_moves(tree)
    batched_eval = _make_evaluator(instance)
    batched_eval.evaluate(tree)
    serial_eval = _make_evaluator(instance, candidate_batching=False)
    serial_eval.evaluate(tree)

    batched = batched_eval.evaluate_candidates(tree, moves)
    serial = serial_eval.evaluate_candidates(tree, moves)
    parity = all(
        fast.skew == slow.skew
        and fast.clr == slow.clr
        and fast.max_latency == slow.max_latency
        and fast.worst_slew == slow.worst_slew
        for fast, slow in zip(batched, serial)
    )

    start = time.perf_counter()
    for _ in range(BATCH_REPEATS):
        batched_eval.evaluate_candidates(tree, moves)
    batched_s = (time.perf_counter() - start) / BATCH_REPEATS

    start = time.perf_counter()
    for _ in range(BATCH_REPEATS):
        serial_eval.evaluate_candidates(tree, moves)
    serial_s = (time.perf_counter() - start) / BATCH_REPEATS

    return {
        "parity": parity,
        "candidates": len(moves),
        "batched_scored": batched.batched,
        "fallbacks": batched.fallbacks,
        "batched_ms": round(batched_s * 1e3, 3),
        "serial_ms": round(serial_s * 1e3, 3),
        "speedup": round(serial_s / batched_s, 2),
    }


def deepest_buffer_edge(tree):
    """Edge of the buffer with the most buffered ancestors.

    Touching it leaves retained stages upstream (whose lookups hit, or are
    skipped entirely under dirty regions) and dirty stages downstream (whose
    timing lookups always miss -- the float-key thrash under measurement).
    """
    best, best_depth = None, -1
    for node in tree.buffers():
        depth = 0
        up = node.parent
        while up is not None:
            ancestor = tree.node(up)
            if ancestor.buffer is not None:
                depth += 1
            up = ancestor.parent
        if depth > best_depth:
            best, best_depth = node.node_id, depth
    return best


def timing_cache_finding(instance, tree):
    """Hit-rate evidence for the float-keyed transient timing cache.

    One mid-tree edge touch under the spice engine.  The timing key embeds
    the raw ``drive_slew`` float, so every downstream stage's lookup misses
    in *both* configurations (its input slew moved -- the thrash; quantizing
    the key would change waveform results, so the key is kept honest).
    What dirty regions change is the other side: without them every retained
    upstream stage is still looked up each evaluation (the hits below); with
    them those lookups never happen at all.
    """
    edge = deepest_buffer_edge(tree)
    results = {}
    for label, dirty_region in (("before_dirty_region", False), ("after", True)):
        evaluator = _make_evaluator(instance, engine="spice", dirty_region=dirty_region)
        evaluator.evaluate(tree)
        warm = evaluator.cache_stats()
        tree.add_snake(edge, 0.25)
        evaluator.evaluate(tree)
        stats = evaluator.cache_stats()
        results[label] = {
            "hits_delta": stats["hits"] - warm["hits"],
            "misses_delta": stats["misses"] - warm["misses"],
            "timing_entries": stats["timings"],
        }
    results["finding"] = (
        "timing keys embed the raw drive_slew float, so a touch re-misses "
        "every downstream stage identically with or without dirty regions "
        "(equal misses_delta); dirty-region propagation instead removes the "
        "redundant retained-stage lookups (the hits_delta drop) rather than "
        "quantizing the key, which would change results"
    )
    return results


def main() -> int:
    output = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("BENCH_propagation.json")
    instance = generate_ti_benchmark(SINKS)
    flow_start = time.perf_counter()
    result = ContangoFlow(FlowConfig(engine=ENGINE)).run(instance)
    flow_s = time.perf_counter() - flow_start
    tree = result.require_tree()

    dirty = time_dirty_region(instance, tree)
    batch = time_candidate_batch(instance, tree)
    small = generate_ti_benchmark(40)
    small_tree = (
        ContangoFlow(FlowConfig(engine=ENGINE, pipeline=["initial"]))
        .run(small)
        .require_tree()
    )
    timing_cache = timing_cache_finding(small, small_tree)

    payload = {
        "benchmark": f"propagation_ti{SINKS}_{ENGINE}",
        "sinks": SINKS,
        "engine": ENGINE,
        "flow_runtime_s": round(flow_s, 4),
        "flow_evaluator_cache": result.evaluator_cache,
        "dirty_region": dirty,
        "candidate_batch": batch,
        "timing_cache": timing_cache,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))

    failed = False
    if not dirty["parity"]:
        print("FAIL: dirty-region re-evaluation diverged from cold evaluation",
              file=sys.stderr)
        failed = True
    if not batch["parity"]:
        print("FAIL: batched candidate scores diverged from serial scoring",
              file=sys.stderr)
        failed = True
    if dirty["speedup"] < COLD_FLOOR:
        print(f"FAIL: single-touch re-evaluation only {dirty['speedup']:.1f}x over "
              f"cold (acceptance floor is {COLD_FLOOR:.0f}x)", file=sys.stderr)
        failed = True
    if batch["speedup"] < BATCH_FLOOR:
        print(f"FAIL: batched candidate scoring only {batch['speedup']:.1f}x over "
              f"serial (acceptance floor is {BATCH_FLOOR:.0f}x)", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
