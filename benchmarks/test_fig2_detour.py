"""Figure 2 bench: the obstacle contour-detouring algorithm."""

import random

from repro.core.composite import analyze_composites
from repro.cts import ispd09_buffer_library, ispd09_wire_library
from repro.cts.dme import build_zero_skew_tree
from repro.cts.obstacle_avoid import ObstacleAvoider
from repro.cts.topology import SinkInstance
from repro.geometry import Obstacle, ObstacleSet, Point, Rect


def _figure2_scenario():
    """A compound obstacle enclosing a heavy register cluster (the Fig. 2 setting)."""
    rng = random.Random(42)
    obstacles = ObstacleSet(
        [
            Obstacle(Rect(1500.0, 1500.0, 3600.0, 3400.0), name="macro_left"),
            Obstacle(Rect(3600.0, 1900.0, 4600.0, 3000.0), name="macro_right"),
        ]
    )
    sinks = [
        SinkInstance(
            f"inner_{i}",
            Point(rng.uniform(1700.0, 4400.0), rng.uniform(1700.0, 3200.0)),
            rng.uniform(80.0, 140.0),
        )
        for i in range(8)
    ] + [
        SinkInstance(
            f"outer_{i}",
            Point(rng.uniform(0.0, 6000.0), rng.uniform(0.0, 1200.0)),
            rng.uniform(15.0, 40.0),
        )
        for i in range(16)
    ]
    return obstacles, sinks


def _run_detour():
    obstacles, sinks = _figure2_scenario()
    wires = ispd09_wire_library()
    buffers = ispd09_buffer_library()
    driver = analyze_composites(buffers).preferred_base
    tree = build_zero_skew_tree(sinks, Point(3000.0, 0.0), wires.widest)
    avoider = ObstacleAvoider(obstacles, driver=driver, slew_limit=100.0)
    crossing_before = len(avoider.find_crossing_edges(tree))
    wirelength_before = tree.total_wirelength()
    report = avoider.repair(tree)
    return {
        "crossing_before": crossing_before,
        "crossing_after": len(avoider.find_crossing_edges(tree)),
        "captured": report.subtrees_captured,
        "detoured": report.subtrees_detoured,
        "legalized": report.nodes_legalized,
        "detour_wirelength_um": round(report.detour_wirelength, 1),
        "wirelength_before_um": round(wirelength_before, 1),
        "wirelength_after_um": round(tree.total_wirelength(), 1),
        "tree": tree,
        "obstacles": obstacles,
    }


def test_fig2_contour_detouring(benchmark):
    stats = benchmark.pedantic(_run_detour, rounds=1, iterations=1)

    print("\nFigure 2 -- obstacle detouring")
    for key in (
        "crossing_before", "crossing_after", "captured", "detoured",
        "legalized", "detour_wirelength_um", "wirelength_before_um", "wirelength_after_um",
    ):
        print(f"  {key:<24s} {stats[key]}")

    # Shape checks: the enclosed cluster is captured and detoured along the
    # contour, the detour costs wirelength, and no internal node remains
    # inside the compound obstacle afterwards.
    assert stats["captured"] >= 1
    assert stats["detoured"] >= 1
    assert stats["wirelength_after_um"] > stats["wirelength_before_um"]
    tree, obstacles = stats["tree"], stats["obstacles"]
    for node in tree.nodes():
        if not node.is_sink and node.parent is not None:
            assert not obstacles.blocks_point(node.position)
