"""Table II bench: inverted sinks vs polarity-correcting inverters added."""

from harness import table2_polarity_rows


def test_table2_polarity_correction(benchmark):
    rows = benchmark.pedantic(table2_polarity_rows, rounds=1, iterations=1)

    print("\nTable II -- inverted sinks vs corrective inverters")
    for row in rows:
        print(
            f"  {row['benchmark']:<12s} sinks {row['sinks']:4d}   "
            f"inverted {row['inverted_sinks']:4d}   added inverters {row['added_inverters']:3d}"
        )

    # Shape check: the minimal subtree strategy always adds far fewer
    # inverters than the number of inverted sinks it repairs (Table II shows
    # 2-16 added for 46-153 inverted).
    for row in rows:
        if row["inverted_sinks"] > 4:
            assert row["added_inverters"] < row["inverted_sinks"]
    assert any(row["inverted_sinks"] > 0 for row in rows)
