"""Benchmark-suite configuration.

No ``sys.path`` manipulation is needed here: pytest's default ``prepend``
import mode already puts this directory on ``sys.path`` while collecting the
benchmark modules, which is what makes ``from harness import ...`` work, and
the shared fixture builders are imported by package path from
:mod:`repro.testing`.
"""
