"""Contango: integrated optimization of SoC clock networks (DATE 2010) -- reproduction.

The top-level package re-exports the most commonly used entry points:

* :class:`repro.cts.ClockTree` -- the clock-tree data model,
* :class:`repro.analysis.ClockNetworkEvaluator` -- the SPICE-substitute evaluator,
* :class:`repro.core.ContangoFlow` -- the end-to-end synthesis methodology,
* :mod:`repro.workloads` -- ISPD'09-style and TI-style benchmark generators.

The *stable, typed* entry points -- result schemas, the unified job model,
and the long-lived :class:`~repro.api.service.SynthesisService` facade --
live in :mod:`repro.api`; prefer them for anything programmatic.

See ``README.md`` for a quickstart and ``DESIGN.md`` for the system inventory.
"""

#: Kept in lockstep with ``pyproject.toml``; ``repro --version`` prefers the
#: installed distribution metadata and falls back to this constant.
__version__ = "0.11.0"

__all__ = ["__version__"]
