"""Contango: integrated optimization of SoC clock networks (DATE 2010) -- reproduction.

The top-level package re-exports the most commonly used entry points:

* :class:`repro.cts.ClockTree` -- the clock-tree data model,
* :class:`repro.analysis.ClockNetworkEvaluator` -- the SPICE-substitute evaluator,
* :class:`repro.core.ContangoFlow` -- the end-to-end synthesis methodology,
* :mod:`repro.workloads` -- ISPD'09-style and TI-style benchmark generators.

See ``README.md`` for a quickstart and ``DESIGN.md`` for the system inventory.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
