"""Deterministic seed derivation shared by the flow, runner and CLI.

Every stochastic component of the library (the Monte Carlo variation engine,
the variation-aware acceptance gate, benchmark harnesses) draws from a
:class:`numpy.random.Generator` derived here, so one ``--seed`` value makes a
whole batch bit-reproducible: per-job generators are spawned from the base
seed plus a stable hash of the job's identity keys (instance spec, flow,
sample count, ...), which keeps jobs statistically independent without any
global seeding or draw-order coupling between workers.

The derivation uses :class:`numpy.random.SeedSequence`, whose spawn/entropy
mixing is designed exactly for this (unlike ad-hoc ``seed * K + offset``
arithmetic, nearby seeds do not produce correlated streams).
"""

from __future__ import annotations

import zlib
from typing import Optional, Union

import numpy as np

__all__ = ["DEFAULT_SEED", "seed_sequence", "derive_rng", "derive_seed"]

DEFAULT_SEED = 7
"""Base seed used whenever the caller does not supply one."""

_Key = Union[int, str, float]


def _key_word(key: _Key) -> int:
    """Map one identity key to a stable 32-bit word (platform-independent)."""
    if isinstance(key, bool):  # bool is an int subclass; make it explicit
        return int(key)
    if isinstance(key, (int, np.integer)):
        return int(key) & 0xFFFFFFFF
    return zlib.crc32(str(key).encode("utf-8"))


def seed_sequence(seed: Optional[int], *keys: _Key) -> np.random.SeedSequence:
    """A :class:`~numpy.random.SeedSequence` for ``seed`` plus identity keys."""
    base = DEFAULT_SEED if seed is None else int(seed)
    return np.random.SeedSequence([base & 0xFFFFFFFFFFFFFFFF, *map(_key_word, keys)])


def derive_rng(seed: Optional[int], *keys: _Key) -> np.random.Generator:
    """The deterministic generator for ``seed`` and the given identity keys.

    Equal arguments always return a generator producing the identical stream;
    any differing key yields an independent stream.
    """
    return np.random.default_rng(seed_sequence(seed, *keys))


def derive_seed(seed: Optional[int], *keys: _Key) -> int:
    """A derived integer seed (for APIs that take an int instead of an rng)."""
    return int(seed_sequence(seed, *keys).generate_state(1, dtype=np.uint64)[0])
