"""The unified job model: one composable spec hierarchy, one ``expand()`` path.

A :class:`Job` names everything that identifies one unit of work -- the
instance spec, the flow, the evaluation engine, an optional pass-pipeline
override and a seed.  :class:`JobSpec` (plain synthesis) and
:class:`McJobSpec` (synthesize, then Monte Carlo-evaluate the skew yield)
specialize it; both are tiny frozen dataclasses, cheap to pickle across
worker processes.

:class:`JobMatrix` is the single fan-out path: ``repro run``, ``repro
sweep`` and ``repro mc`` all describe their work as a matrix (explicit
instance specs and/or scenario-family sweeps, times flows, times engines,
times Monte Carlo sample counts) and call :meth:`JobMatrix.expand`, instead
of each maintaining its own nested-loop expansion.  Expansion order is
deterministic and documented: scenario-sweep points first (in
:func:`repro.scenarios.expand_families` order), then explicit instances,
each crossed with flows, engines and -- for Monte Carlo matrices -- sample
counts, in the order given.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.variation import SAMPLING_FAMILIES
from repro.scenarios import expand_families

__all__ = [
    "sanitize_spec",
    "Job",
    "JobSpec",
    "McJobSpec",
    "MonteCarloAxes",
    "JobMatrix",
]


def sanitize_spec(text: str) -> str:
    """Filesystem-safe, *injective* form of an instance spec.

    ``:`` maps to ``-`` and ``/`` to ``_`` so the common specs stay readable
    (``ti:200`` -> ``ti-200``); literal occurrences of the replacement
    characters (and ``%``) are percent-escaped first, so no two distinct
    specs share a label.  Stripping separators outright collided ``ti:200``
    with a hypothetical ``ti2:00`` -- and a collision means one job's result
    file silently overwrites another's.
    """
    text = text.replace("%", "%25").replace("-", "%2D").replace("_", "%5F")
    return text.replace(":", "-").replace("/", "_")


@dataclass(frozen=True)
class Job:
    """Identity of one unit of batch work, cheap to pickle across processes.

    ``instance`` uses a ``kind:value`` spec:

    * ``ti:<sinks>`` -- the TI-style scalability generator;
    * ``ispd09:<name>`` or ``ispd09:<name>:<scale>`` -- an ISPD'09-style
      benchmark, optionally shrunk by ``scale`` in (0, 1];
    * ``scenario:<family>[:k=v,...]`` -- a registered scenario family from
      :mod:`repro.scenarios` (``repro sweep --list-families`` lists them);
    * ``file:<path>`` -- a saved instance in the plain-text format.

    ``pipeline`` overrides :attr:`FlowConfig.pipeline` (pass-registry
    names); ``seed`` overrides the TI generator's (or a scenario's) default
    instance seed and doubles as the flow's base seed.
    """

    instance: str
    flow: str = "contango"
    engine: str = "arnoldi"
    pipeline: Optional[Tuple[str, ...]] = None
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        # A sequence of pass names is the only valid pipeline.  Checking the
        # shape here turns positional-argument mistakes (e.g. a sample count
        # landing in ``pipeline``) into an immediate, clearly-worded error
        # instead of a crash deep inside a worker.
        if self.pipeline is not None and (
            isinstance(self.pipeline, str)
            or not isinstance(self.pipeline, (tuple, list))
            or not all(isinstance(name, str) for name in self.pipeline)
        ):
            raise ValueError(
                f"pipeline must be a sequence of pass names or None, "
                f"got {self.pipeline!r}"
            )
        if self.seed is not None and not isinstance(self.seed, int):
            raise ValueError(f"seed must be an int or None, got {self.seed!r}")

    def label_parts(self) -> List[str]:
        """Components of :attr:`label`, in order (subclasses extend)."""
        parts = [sanitize_spec(self.instance), self.flow, self.engine]
        if self.pipeline is not None:
            parts.append("-".join(self.pipeline))
        if self.seed is not None:
            parts.append(f"seed{self.seed}")
        return parts

    @property
    def label(self) -> str:
        """Filesystem-safe identifier used for result files and log lines."""
        return "__".join(self.label_parts())


@dataclass(frozen=True)
class JobSpec(Job):
    """One plain synthesis job: run the flow, report the final metrics."""


@dataclass(frozen=True)
class McJobSpec(Job):
    """One Monte Carlo variation job: synthesize, then sample the yield.

    The instance spec and flow/engine/pipeline axes mirror :class:`JobSpec`;
    ``samples`` and ``family`` select the Monte Carlo sweep, and ``seed``
    drives *only* the stochastic parts (sampling, gates) -- the instance
    itself stays pinned by its spec so different seeds explore different
    scenarios of the same network.  ``gated`` additionally switches the
    synthesis pipeline to the variation-aware variant
    (:data:`repro.core.config.VARIATION_PIPELINE`), so robust-optimization
    ablations are one flag away from the nominal flow.
    """

    #: Monte Carlo jobs always carry a concrete base seed (default 7).
    seed: Optional[int] = 7
    samples: int = 1000
    family: str = "independent"
    skew_limit_ps: float = 7.5
    gated: bool = False
    #: Scenario count per gate check during gated synthesis; ``None`` keeps
    #: the :class:`FlowConfig` default (the gate runs once per IVC round, so
    #: it deliberately uses fewer samples than the final reporting sweep).
    gate_samples: Optional[int] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.seed is None:
            raise ValueError("Monte Carlo jobs need a concrete seed")
        if self.samples < 1:
            raise ValueError("samples must be >= 1")
        if self.gate_samples is not None and self.gate_samples < 2:
            raise ValueError("gate_samples must be >= 2")
        if self.family not in SAMPLING_FAMILIES:
            raise ValueError(
                f"unknown sampling family {self.family!r}; choose from {SAMPLING_FAMILIES}"
            )
        if self.engine not in ("elmore", "arnoldi"):
            raise ValueError(
                "Monte Carlo jobs need an analytical engine ('elmore' or 'arnoldi')"
            )
        if self.gated and self.flow != "contango":
            raise ValueError(
                "--gated selects the Contango variation-aware pipeline and is "
                f"not available for flow {self.flow!r}"
            )
        if self.gated and self.pipeline is not None:
            raise ValueError(
                "--gated and an explicit pipeline are mutually exclusive; put "
                "the *_mc pass variants in the pipeline instead"
            )

    def label_parts(self) -> List[str]:
        parts = [
            sanitize_spec(self.instance),
            self.flow,
            self.engine,
            f"mc{self.samples}",
            self.family,
            f"seed{self.seed}",
        ]
        if self.gated:
            parts.append("gated")
        if self.pipeline is not None:
            parts.append("-".join(self.pipeline))
        return parts


@dataclass(frozen=True)
class MonteCarloAxes:
    """The Monte Carlo dimensions of a :class:`JobMatrix`.

    ``samples`` is a sweep axis (one job per count); the remaining knobs are
    shared by every expanded :class:`McJobSpec`.
    """

    samples: Tuple[int, ...] = (1000,)
    family: str = "independent"
    skew_limit_ps: float = 7.5
    gated: bool = False
    gate_samples: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.samples:
            raise ValueError("a Monte Carlo matrix needs at least one sample count")


@dataclass
class JobMatrix:
    """A declarative job matrix, expanded through one shared code path.

    ``instances`` lists explicit instance specs; ``families`` (with
    ``fixed`` parameters and ``sweeps`` value lists) adds scenario-lab
    cross products expanded via :func:`repro.scenarios.expand_families`.
    Setting ``monte_carlo`` turns every cell into a :class:`McJobSpec`.
    """

    instances: Sequence[str] = ()
    families: Sequence[str] = ()
    fixed: Mapping[str, Any] = field(default_factory=dict)
    sweeps: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    flows: Sequence[str] = ("contango",)
    engines: Sequence[str] = ("arnoldi",)
    pipeline: Optional[Tuple[str, ...]] = None
    seed: Optional[int] = None
    monte_carlo: Optional[MonteCarloAxes] = None

    def specs(self) -> List[str]:
        """The instance specs of the matrix: sweep points, then explicit ones."""
        specs = expand_families(self.families, self.fixed, self.sweeps)
        specs.extend(self.instances)
        return specs

    def expand(self) -> List[Job]:
        """All jobs of the matrix, in deterministic documented order.

        Order: instance specs (scenario-sweep points first, then explicit
        instances) x flows x engines x -- for Monte Carlo matrices --
        sample counts.  Every spec-level validation error (unknown family
        or parameter, bad Monte Carlo axes) surfaces here, before any
        synthesis starts.
        """
        specs = self.specs()
        if not specs:
            raise ValueError("a job matrix needs at least one instance or family")
        jobs: List[Job] = []
        for spec in specs:
            for flow in self.flows:
                for engine in self.engines:
                    if self.monte_carlo is None:
                        jobs.append(
                            JobSpec(
                                instance=spec,
                                flow=flow,
                                engine=engine,
                                pipeline=self.pipeline,
                                seed=self.seed,
                            )
                        )
                        continue
                    mc = self.monte_carlo
                    for samples in mc.samples:
                        kwargs: dict = dict(
                            instance=spec,
                            flow=flow,
                            engine=engine,
                            pipeline=self.pipeline,
                            samples=samples,
                            family=mc.family,
                            skew_limit_ps=mc.skew_limit_ps,
                            gated=mc.gated,
                            gate_samples=mc.gate_samples,
                        )
                        # An unset matrix seed falls through to the McJobSpec
                        # default, so that default is defined exactly once.
                        if self.seed is not None:
                            kwargs["seed"] = self.seed
                        jobs.append(McJobSpec(**kwargs))
        return jobs
