"""`SynthesisService`: the long-lived, warm-pool execution facade.

Where :class:`repro.runner.BatchRunner` is one-shot (spin a pool up, run one
batch, tear it down), a :class:`SynthesisService` is built to *stay up*: it
owns one :class:`~concurrent.futures.ProcessPoolExecutor` that is created on
first use and reused across every subsequent call, so repeated small requests
-- the traffic shape of a synthesis service, as opposed to a nightly sweep --
pay the worker spawn cost once instead of per call
(``benchmarks/service_smoke.py`` tracks the difference as
``BENCH_service.json``).

The facade speaks the typed API end to end:

* :meth:`synthesize` / :meth:`monte_carlo` -- one job, returning a
  :class:`~repro.api.records.RunRecord` / :class:`~repro.api.records.McRecord`
  (a failed job raises :class:`~repro.runner.JobError` with the worker-side
  traceback);
* :meth:`sweep` -- a whole :class:`~repro.api.jobs.JobMatrix` (or keyword
  axes), returning records in job order;
* :meth:`stream` / :meth:`run` -- the general interface: an iterator of
  :class:`JobEvent` (as jobs complete) or a collected :class:`ServiceBatch`
  with an optional per-event callback;
* :meth:`compare` -- diff two run selections of the attached store.

Attach a :class:`~repro.store.RunStore` and every completed record -- errors
included -- is appended under the service's ``run_id`` before its event is
delivered, so being recorded and content-addressed is not something callers
can forget.

The service is a context manager; :meth:`close` shuts the pool down.  The
CLI subcommands (``repro run`` / ``sweep`` / ``mc``) are thin adapters over
one short-lived service each.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import Executor, Future, ProcessPoolExecutor
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.api.jobs import Job, JobMatrix, JobSpec, McJobSpec, MonteCarloAxes
from repro.api.records import ErrorRecord, McRecord, Record, RunRecord
from repro.runner import (
    JobError,
    dispatch_jobs,
    error_record,
    execute_job_guarded,
    execute_job_traced,
)
from repro.store import CompareTolerances, ComparisonResult, RunStore, diff_records

__all__ = ["JobEvent", "ServiceBatch", "SynthesisService"]


@dataclass(frozen=True)
class JobEvent:
    """One job lifecycle notification, delivered through the streaming interface.

    ``kind`` says which moment of the job's life this is:

    * ``"started"`` -- the job was handed to a worker (``record`` is
      ``None``); long sweeps show liveness before the first completion.
    * ``"completed"`` -- the job finished; ``record`` carries its typed
      result (an :class:`~repro.api.records.ErrorRecord` on failure).
    * ``"progress"`` -- a mid-batch heartbeat for a job that is still
      pending: :meth:`SynthesisService.stream` emits one per still-waiting
      job after every completion when asked (``progress=True``), and the
      :mod:`repro.serve` scheduler forwards them down per-client streams.
      ``note`` carries the human-readable heartbeat text.

    ``cached`` marks a completion served from the content-addressed result
    cache of :mod:`repro.serve` (no worker ran for *this* submission); both
    new fields default to their zero values so events from producers that
    predate them are indistinguishable from before.
    """

    index: int
    total: int
    job: Job
    record: Optional[Record] = None
    kind: str = "completed"
    cached: bool = False
    note: str = ""

    @property
    def failed(self) -> bool:
        return isinstance(self.record, ErrorRecord)


@dataclass
class ServiceBatch:
    """Outcome of one service call: typed records (in job order) plus timing."""

    jobs: List[Job]
    records: List[Record]
    wall_clock_s: float
    workers: int

    @property
    def failures(self) -> List[ErrorRecord]:
        return [record for record in self.records if isinstance(record, ErrorRecord)]


#: Event callback signature of :meth:`SynthesisService.run`.
EventCallback = Callable[[JobEvent], None]


class SynthesisService:
    """Long-lived synthesis facade with a persistent warm worker pool.

    Parameters
    ----------
    max_workers:
        Worker process count.  ``1`` executes in-process (no pool at all --
        deterministic ordering, zero IPC overhead); higher counts create one
        :class:`~concurrent.futures.ProcessPoolExecutor` lazily and keep it
        warm across calls until :meth:`close`.
    store:
        Optional :class:`~repro.store.RunStore` (or a path understood by its
        constructor).  When attached, every completed record of every call
        is appended under ``run_id``.
    run_id:
        Store tag for this service's appends (default ``"service"``).
    trace:
        When true, every job runs under a fresh :class:`~repro.obs.Tracer`
        (in the worker process) and its record carries the ``trace``
        summary.  Results are bit-identical to untraced runs.
    """

    def __init__(
        self,
        max_workers: int = 1,
        store: Union[RunStore, str, None] = None,
        run_id: str = "service",
        trace: bool = False,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self.trace = trace
        self._worker = execute_job_traced if trace else execute_job_guarded
        self.store: Optional[RunStore] = (
            store if isinstance(store, RunStore) or store is None else RunStore(store)
        )
        self.run_id = RunStore.check_run_id(run_id)
        self._executor: Optional[Executor] = None
        #: Total jobs dispatched since construction (pool-reuse telemetry).
        self.jobs_dispatched = 0
        #: Pools created over the service lifetime (stays at 1 across calls
        #: unless a broken pool had to be replaced).
        self.pools_created = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    @property
    def pool_started(self) -> bool:
        """True once the warm pool exists (it never exists at ``max_workers=1``)."""
        return self._executor is not None

    def _pool(self) -> Executor:
        if self._closed:
            raise RuntimeError("SynthesisService is closed")
        # A worker killed mid-call (OOM, segfault) leaves a ProcessPoolExecutor
        # permanently broken: that call's jobs already degraded to error
        # records, but submitting to the broken pool would raise forever.  A
        # long-lived service must recover, so discard the carcass and start a
        # fresh pool.  (``_broken`` is private but present on every supported
        # CPython; worst case the getattr stays False and behavior matches
        # the old always-reuse path.)
        if self._executor is not None and getattr(self._executor, "_broken", False):
            self._executor.shutdown(wait=False)
            self._executor = None
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.max_workers)
            self.pools_created += 1
        return self._executor

    def close(self) -> None:
        """Shut the warm pool down; the service cannot dispatch afterwards."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._closed = True

    def __enter__(self) -> "SynthesisService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Core streaming execution
    # ------------------------------------------------------------------
    def stream(self, jobs: Iterable[Job], progress: bool = False) -> Iterator[JobEvent]:
        """Execute ``jobs``, yielding ``started``/``progress``/``completed`` events.

        Every job produces a ``kind="started"`` event when it is handed to a
        worker and a ``kind="completed"`` event when it finishes.  With
        workers, all jobs are submitted up front (so every ``started`` event
        arrives first) and completions stream in *completion* order; in-process
        execution interleaves started/completed in job order.  Every completed
        record is appended to the attached store before its event is
        delivered.

        ``progress=True`` additionally emits one ``kind="progress"`` heartbeat
        per *still-pending* job after every completion (``note`` says how far
        the batch is), so a consumer watching one job of a long batch sees
        monotone liveness instead of silence until its own completion.  The
        default leaves the event sequence exactly as it has always been.
        """
        job_list = list(jobs)
        if not job_list:
            return
        if self._closed:
            raise RuntimeError("SynthesisService is closed")
        self.jobs_dispatched += len(job_list)
        total = len(job_list)
        if self.max_workers == 1:
            for index, job in enumerate(job_list):
                yield JobEvent(index=index, total=total, job=job, kind="started")
                record = self._worker(job)
                self._record(record)
                yield JobEvent(index=index, total=total, job=job, record=record)
                if progress:
                    yield from self._progress_events(
                        job_list, pending=range(index + 1, total), done=index + 1
                    )
            return
        pool = self._pool()
        for index, job in enumerate(job_list):
            yield JobEvent(index=index, total=total, job=job, kind="started")
        pending_set = set(range(total))
        for index, record in dispatch_jobs(pool, job_list, self._worker):
            self._record(record)
            pending_set.discard(index)
            yield JobEvent(
                index=index, total=total, job=job_list[index], record=record
            )
            if progress:
                yield from self._progress_events(
                    job_list,
                    pending=sorted(pending_set),
                    done=total - len(pending_set),
                )

    @staticmethod
    def _progress_events(
        job_list: List[Job], pending: Iterable[int], done: int
    ) -> Iterator[JobEvent]:
        total = len(job_list)
        note = f"{done}/{total} completed"
        for index in pending:
            yield JobEvent(
                index=index,
                total=total,
                job=job_list[index],
                kind="progress",
                note=note,
            )

    def _record(self, record: Record) -> None:
        if self.store is not None:
            self.store.append(record, run_id=self.run_id)

    def submit(self, job: Job) -> "Future[Record]":
        """Dispatch one job and return a future for its record, never blocking
        on the *result* (at ``max_workers=1`` the job runs inline before the
        call returns, exactly like every other in-process code path).

        The returned future always resolves to a :class:`Record` -- pool
        infrastructure failures (a dead worker, a broken pipe) degrade to the
        job's :class:`~repro.api.records.ErrorRecord` just as they do in
        :func:`repro.runner.dispatch_jobs` -- and the record is appended to
        the attached store *before* the future resolves, so a waiter that
        sees the result can rely on it being recorded.  This is the
        :mod:`repro.serve` scheduler's dispatch primitive: it hands the
        future to ``asyncio.wrap_future`` and awaits it off-loop.
        """
        if self._closed:
            raise RuntimeError("SynthesisService is closed")
        self.jobs_dispatched += 1
        result: "Future[Record]" = Future()
        result.set_running_or_notify_cancel()
        if self.max_workers == 1:
            try:
                record = self._worker(job)
            except Exception:  # the guarded worker never raises; belt-and-braces
                record = error_record(job, traceback.format_exc())
            self._record(record)
            result.set_result(record)
            return result
        pool_future = self._pool().submit(self._worker, job)

        def _resolve(done: "Future[Record]") -> None:
            try:
                record = done.result()
            except Exception:  # pool infrastructure failure
                record = error_record(job, traceback.format_exc())
            self._record(record)
            result.set_result(record)

        pool_future.add_done_callback(_resolve)
        return result

    def run(
        self, jobs: Iterable[Job], on_event: Optional[EventCallback] = None
    ) -> ServiceBatch:
        """Execute ``jobs`` and collect a :class:`ServiceBatch` in job order.

        ``on_event`` fires for every event (``started`` and ``completed``)
        while the rest of the batch is still running; the batch collects the
        completed records.
        """
        start = time.perf_counter()  # repro: lint-ok[untimed-wallclock]
        job_list = list(jobs)
        records: List[Optional[Record]] = [None] * len(job_list)
        for event in self.stream(job_list):
            if event.kind == "completed":
                records[event.index] = event.record
            if on_event is not None:
                on_event(event)
        return ServiceBatch(
            jobs=job_list,
            records=[record for record in records if record is not None],
            wall_clock_s=time.perf_counter() - start,  # repro: lint-ok[untimed-wallclock]
            workers=self.max_workers,
        )

    # ------------------------------------------------------------------
    # The typed facade
    # ------------------------------------------------------------------
    def _single(self, job: Job) -> Record:
        (event,) = [e for e in self.stream([job]) if e.kind == "completed"]
        if isinstance(event.record, ErrorRecord):
            raise JobError(
                f"job {event.record.job!r} failed:\n{event.record.error}"
            )
        assert event.record is not None  # completed events always carry one
        return event.record

    def synthesize(
        self,
        instance: str,
        flow: str = "contango",
        engine: str = "arnoldi",
        pipeline: Optional[Sequence[str]] = None,
        seed: Optional[int] = None,
    ) -> RunRecord:
        """Run one synthesis job and return its typed record (raises on failure)."""
        record = self._single(
            JobSpec(
                instance=instance,
                flow=flow,
                engine=engine,
                pipeline=tuple(pipeline) if pipeline is not None else None,
                seed=seed,
            )
        )
        assert isinstance(record, RunRecord)
        return record

    def monte_carlo(
        self,
        instance: str,
        flow: str = "contango",
        engine: str = "arnoldi",
        samples: int = 1000,
        family: str = "independent",
        seed: int = 7,
        skew_limit_ps: float = 7.5,
        gated: bool = False,
        gate_samples: Optional[int] = None,
        pipeline: Optional[Sequence[str]] = None,
    ) -> McRecord:
        """Synthesize + Monte Carlo-evaluate one instance (raises on failure)."""
        record = self._single(
            McJobSpec(
                instance=instance,
                flow=flow,
                engine=engine,
                pipeline=tuple(pipeline) if pipeline is not None else None,
                seed=seed,
                samples=samples,
                family=family,
                skew_limit_ps=skew_limit_ps,
                gated=gated,
                gate_samples=gate_samples,
            )
        )
        assert isinstance(record, McRecord)
        return record

    def sweep(
        self,
        matrix: Optional[JobMatrix] = None,
        *,
        instances: Sequence[str] = (),
        families: Sequence[str] = (),
        fixed: Optional[Mapping[str, Any]] = None,
        sweeps: Optional[Mapping[str, Sequence[Any]]] = None,
        flows: Sequence[str] = ("contango",),
        engines: Sequence[str] = ("arnoldi",),
        pipeline: Optional[Tuple[str, ...]] = None,
        seed: Optional[int] = None,
        monte_carlo: Optional[MonteCarloAxes] = None,
        on_event: Optional[EventCallback] = None,
    ) -> ServiceBatch:
        """Expand a job matrix and run it through the warm pool.

        Pass a ready :class:`~repro.api.jobs.JobMatrix`, or describe one
        with the keyword axes (the ``repro sweep`` vocabulary).
        """
        if matrix is None:
            matrix = JobMatrix(
                instances=instances,
                families=families,
                fixed=dict(fixed or {}),
                sweeps=dict(sweeps or {}),
                flows=flows,
                engines=engines,
                pipeline=pipeline,
                seed=seed,
                monte_carlo=monte_carlo,
            )
        return self.run(matrix.expand(), on_event=on_event)

    def compare(
        self,
        baseline_run_id: str,
        candidate_run_id: str,
        tolerances: CompareTolerances = CompareTolerances(),
    ) -> ComparisonResult:
        """Diff two run ids of the attached store (requires ``store``)."""
        if self.store is None:
            raise ValueError("compare() needs a service with an attached RunStore")
        return diff_records(
            self.store.records(run_id=baseline_run_id),
            self.store.records(run_id=candidate_run_id),
            tolerances,
        )
