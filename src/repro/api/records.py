"""Typed result-record schemas: the single source of truth for field names.

Every JSON-able record the batch engine emits -- synthesis runs, Monte Carlo
yield sweeps, failed jobs -- is defined here exactly once, as a dataclass
whose ``to_record()`` / ``from_record()`` pair round-trips **bit-identically**
to the dict shapes the runner has streamed since PR 2 (pinned by
``tests/golden/legacy_records.json``).  Producers (:mod:`repro.runner`), the
persistent store (:mod:`repro.store`), the diff engine
(:mod:`repro.store.compare`) and every table renderer consume these classes
instead of hand-rolled dicts, so adding or renaming a field is a one-line,
type-checked change instead of a cross-module string hunt.

Conventions
-----------
* ``to_record()`` emits keys in dataclass field order, which matches the
  historical dict insertion order -- per-job JSON files stay byte-identical.
* Keys that the legacy records emitted *conditionally* (``variation_gate``
  only when a gate ran; the error-record spec envelope, which pre-dates this
  module) are omitted again by ``to_record()`` when unset, so legacy records
  survive a parse/serialize round trip unchanged.
* ``from_record()`` is lenient about missing keys (old or hand-written
  records parse with ``None`` holes) but never invents conditional keys.

This module is intentionally a *leaf*: it imports nothing from the rest of
the package, so low-level modules (e.g. :mod:`repro.core.report`) can build
on the schemas without import cycles.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

__all__ = [
    "MISSING",
    "StageRow",
    "RunSummary",
    "YieldSummary",
    "RunRecord",
    "McRecord",
    "ErrorRecord",
    "Record",
    "ResultRecord",
    "record_from_dict",
    "stable_record",
    "STAGE_TABLE_COLUMNS",
    "RUN_SUMMARY_COLUMNS",
    "MC_TABLE_COLUMNS",
]


class _MissingType:
    """Sentinel for 'key absent from the record' (distinct from ``None``)."""

    __slots__ = ()
    _instance: Optional["_MissingType"] = None

    def __new__(cls) -> "_MissingType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "MISSING"

    def __bool__(self) -> bool:
        return False


MISSING = _MissingType()
"""Field value meaning "this key was not present in the source record".

``to_record()`` skips ``MISSING`` fields entirely, which is how the error
envelope stays backward round-trippable: legacy error records (which carried
no ``pipeline``/``seed`` keys) parse to ``MISSING`` and serialize back without
them, while newly produced error records carry the full spec envelope.
"""


@dataclass
class StageRow:
    """One optimization-stage snapshot (one row of a Table III stage table)."""

    stage: str
    skew_ps: float
    clr_ps: float
    max_latency_ps: float
    worst_slew_ps: float
    total_capacitance_fF: float
    capacitance_utilization: Optional[float]
    wirelength_um: float
    buffer_count: int
    evaluations: int
    elapsed_s: float = 0.0

    def to_record(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(StageRow)}

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "StageRow":
        # ``elapsed_s`` was added in PR 2; rows saved before then default to
        # 0.0 (the behavior the old ``table_iii`` setdefault provided).
        return cls(**{f.name: record.get(f.name, 0.0 if f.name == "elapsed_s" else None)
                      for f in fields(cls)})


@dataclass
class RunSummary:
    """Final metrics of one synthesis run (one row of a Table IV comparison)."""

    instance: Optional[str] = None
    flow: Optional[str] = None
    clr_ps: Optional[float] = None
    skew_ps: Optional[float] = None
    max_latency_ps: Optional[float] = None
    capacitance_utilization: Optional[float] = None
    total_capacitance_fF: Optional[float] = None
    wirelength_um: Optional[float] = None
    slew_violations: Optional[int] = None
    evaluations: Optional[int] = None
    runtime_s: Optional[float] = None

    def to_record(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(RunSummary)}

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "RunSummary":
        return cls(**{f.name: record.get(f.name) for f in fields(cls)})


@dataclass
class YieldSummary:
    """Skew/CLR distribution statistics of one Monte Carlo yield sweep."""

    n_samples: Optional[int] = None
    engine: Optional[str] = None
    model: Optional[Dict[str, Any]] = None
    skew_limit_ps: Optional[float] = None
    skew_mean_ps: Optional[float] = None
    skew_std_ps: Optional[float] = None
    skew_p95_ps: Optional[float] = None
    skew_p99_ps: Optional[float] = None
    skew_max_ps: Optional[float] = None
    skew_yield: Optional[float] = None
    clr_mean_ps: Optional[float] = None
    clr_p95_ps: Optional[float] = None
    clr_p99_ps: Optional[float] = None
    slew_yield: Optional[float] = None

    def to_record(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(YieldSummary)}

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "YieldSummary":
        return cls(**{f.name: record.get(f.name) for f in fields(cls)})


@dataclass
class RunRecord:
    """Complete result of one synthesis job (the ``repro run`` record shape).

    Field order is the serialization order; it matches the dicts
    :func:`repro.runner.run_job` has emitted since PR 2, so per-job JSON
    files and store lines are byte-compatible across the typed migration.
    """

    job: Optional[str] = None
    instance: Optional[str] = None
    flow: Optional[str] = None
    engine: Optional[str] = None
    pipeline: Optional[List[str]] = None
    seed: Optional[int] = None
    instance_fingerprint: Optional[str] = None
    config_digest: Optional[str] = None
    fingerprint: Optional[str] = None
    sinks: Optional[int] = None
    summary: Optional[RunSummary] = None
    stage_table: List[StageRow] = field(default_factory=list)
    pass_notes: Dict[str, List[str]] = field(default_factory=dict)
    evaluator_cache: Dict[str, int] = field(default_factory=dict)
    wall_clock_s: Optional[float] = None
    #: Present only when the pipeline ran variation-aware passes; omitted
    #: from the serialized record otherwise (matching the legacy shape).
    variation_gate: Optional[Dict[str, Any]] = None
    #: Serialized :class:`repro.obs.TraceSummary`; present only when the job
    #: ran traced, so untraced records keep their historical byte shape.
    #: Plain dict here: this module is a dependency-free leaf.
    trace: Optional[Dict[str, Any]] = None

    def to_record(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "job": self.job,
            "instance": self.instance,
            "flow": self.flow,
            "engine": self.engine,
            "pipeline": self.pipeline,
            "seed": self.seed,
            "instance_fingerprint": self.instance_fingerprint,
            "config_digest": self.config_digest,
            "fingerprint": self.fingerprint,
            "sinks": self.sinks,
            "summary": self.summary.to_record() if self.summary is not None else None,
            "stage_table": [row.to_record() for row in self.stage_table],
            "pass_notes": self.pass_notes,
            "evaluator_cache": self.evaluator_cache,
            "wall_clock_s": self.wall_clock_s,
        }
        if self.variation_gate:
            record["variation_gate"] = self.variation_gate
        if self.trace:
            record["trace"] = self.trace
        return record

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "RunRecord":
        summary = record.get("summary")
        return cls(
            job=record.get("job"),
            instance=record.get("instance"),
            flow=record.get("flow"),
            engine=record.get("engine"),
            pipeline=record.get("pipeline"),
            seed=record.get("seed"),
            instance_fingerprint=record.get("instance_fingerprint"),
            config_digest=record.get("config_digest"),
            fingerprint=record.get("fingerprint"),
            sinks=record.get("sinks"),
            summary=RunSummary.from_record(summary) if summary is not None else None,
            stage_table=[
                StageRow.from_record(row) for row in record.get("stage_table", [])
            ],
            pass_notes=record.get("pass_notes", {}),
            evaluator_cache=record.get("evaluator_cache", {}),
            wall_clock_s=record.get("wall_clock_s"),
            variation_gate=record.get("variation_gate"),
            trace=record.get("trace"),
        )


@dataclass
class McRecord:
    """Complete result of one Monte Carlo job (the ``repro mc`` record shape)."""

    job: Optional[str] = None
    instance: Optional[str] = None
    flow: Optional[str] = None
    engine: Optional[str] = None
    samples: Optional[int] = None
    family: Optional[str] = None
    seed: Optional[int] = None
    gated: Optional[bool] = None
    sinks: Optional[int] = None
    #: Serialized under the legacy key ``"yield"`` (a Python keyword).
    yield_: Optional[YieldSummary] = None
    nominal: Optional[RunSummary] = None
    wall_clock_s: Optional[float] = None
    variation_gate: Optional[Dict[str, Any]] = None
    #: Serialized :class:`repro.obs.TraceSummary`; present only when traced.
    trace: Optional[Dict[str, Any]] = None

    def to_record(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "job": self.job,
            "instance": self.instance,
            "flow": self.flow,
            "engine": self.engine,
            "samples": self.samples,
            "family": self.family,
            "seed": self.seed,
            "gated": self.gated,
            "sinks": self.sinks,
            "yield": self.yield_.to_record() if self.yield_ is not None else None,
            "nominal": self.nominal.to_record() if self.nominal is not None else None,
            "wall_clock_s": self.wall_clock_s,
        }
        if self.variation_gate:
            record["variation_gate"] = self.variation_gate
        if self.trace:
            record["trace"] = self.trace
        return record

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "McRecord":
        yield_payload = record.get("yield")
        nominal = record.get("nominal")
        return cls(
            job=record.get("job"),
            instance=record.get("instance"),
            flow=record.get("flow"),
            engine=record.get("engine"),
            samples=record.get("samples"),
            family=record.get("family"),
            seed=record.get("seed"),
            gated=record.get("gated"),
            sinks=record.get("sinks"),
            yield_=(
                YieldSummary.from_record(yield_payload)
                if yield_payload is not None
                else None
            ),
            nominal=RunSummary.from_record(nominal) if nominal is not None else None,
            wall_clock_s=record.get("wall_clock_s"),
            variation_gate=record.get("variation_gate"),
            trace=record.get("trace"),
        )


#: Value of an optional error-envelope field: the real value, ``None``, or
#: :data:`MISSING` when the source record did not carry the key at all.
_OptField = Union[Any, _MissingType]


@dataclass
class ErrorRecord:
    """A failed job, with the same spec envelope as a successful record.

    Legacy error records carried only ``job``/``instance``/``flow``/``engine``
    plus the traceback; records produced by this codebase additionally carry
    the spec envelope (``pipeline``, ``seed``, and the Monte Carlo axes for
    MC jobs) so ``repro compare`` can line failed jobs up against their
    baseline counterparts by the same job key as successful ones.
    """

    job: Optional[str] = None
    instance: Optional[str] = None
    flow: Optional[str] = None
    engine: Optional[str] = None
    error: Optional[str] = None
    pipeline: _OptField = MISSING
    seed: _OptField = MISSING
    samples: _OptField = MISSING
    family: _OptField = MISSING
    gated: _OptField = MISSING

    #: Envelope keys emitted only when explicitly set (legacy round-trip).
    _OPTIONAL = ("pipeline", "seed", "samples", "family", "gated")

    def to_record(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "job": self.job,
            "instance": self.instance,
            "flow": self.flow,
            "engine": self.engine,
            "error": self.error,
        }
        for name in self._OPTIONAL:
            value = getattr(self, name)
            if value is not MISSING:
                record[name] = value
        return record

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "ErrorRecord":
        return cls(
            job=record.get("job"),
            instance=record.get("instance"),
            flow=record.get("flow"),
            engine=record.get("engine"),
            error=record.get("error"),
            **{name: record.get(name, MISSING) for name in cls._OPTIONAL},
        )

    def envelope(self, name: str) -> Any:
        """An optional envelope field, with absence normalized to ``None``."""
        value = getattr(self, name)
        return None if value is MISSING else value


#: A record that carries results (indexed by the compare engine).
ResultRecord = Union[RunRecord, McRecord]
#: Anything the batch engine can emit for one job.
Record = Union[RunRecord, McRecord, ErrorRecord]


def record_from_dict(record: Union[Mapping[str, Any], Record]) -> Record:
    """Parse one legacy record dict into its typed class (typed passes through).

    Dispatch mirrors how consumers have always told the shapes apart:
    ``"error"`` marks a failed job, ``"yield"`` a Monte Carlo record, and
    anything else is a synthesis run record.
    """
    if isinstance(record, (RunRecord, McRecord, ErrorRecord)):
        return record
    if "error" in record:
        return ErrorRecord.from_record(record)
    if "yield" in record:
        return McRecord.from_record(record)
    return RunRecord.from_record(record)


def stable_record(record: Union[Mapping[str, Any], "Record"]) -> Dict[str, Any]:
    """The record's serialized form with every wall-clock field removed.

    Two executions of the same fingerprint must agree on *this* projection
    bit-for-bit -- the content of a run is everything except how long it
    took.  It is the comparison key of the traced/untraced parity perf check
    and of the serve-layer cache invariant (a cached completion equals a
    fresh run outside ``wall_clock_s``, ``trace``, the summary runtimes and
    the per-stage elapsed times).
    """
    payload = copy.deepcopy(
        dict(record) if isinstance(record, Mapping) else record.to_record()
    )
    payload.pop("wall_clock_s", None)
    payload.pop("trace", None)
    for key in ("summary", "nominal"):
        summary = payload.get(key)
        if isinstance(summary, dict):
            summary.pop("runtime_s", None)
    for row in payload.get("stage_table") or []:
        if isinstance(row, dict):
            row.pop("elapsed_s", None)
    return payload


# ----------------------------------------------------------------------
# Table column specifications (key, header, format-spec)
# ----------------------------------------------------------------------
#: One row per optimization stage of a single run (Table III).  Keys are
#: :class:`StageRow` field names.
STAGE_TABLE_COLUMNS: Tuple[Tuple[str, str, str], ...] = (
    ("stage", "stage", "s"),
    ("skew_ps", "skew[ps]", ".2f"),
    ("clr_ps", "CLR[ps]", ".2f"),
    ("max_latency_ps", "latency[ps]", ".1f"),
    ("worst_slew_ps", "slew[ps]", ".1f"),
    ("total_capacitance_fF", "cap[fF]", ".0f"),
    ("wirelength_um", "WL[um]", ".0f"),
    ("buffer_count", "buffers", "d"),
    ("evaluations", "evals", "d"),
    ("elapsed_s", "t[s]", ".2f"),
)

#: One row per (instance, flow) with the final metrics (Table IV).  Keys are
#: :class:`RunSummary` field names.
RUN_SUMMARY_COLUMNS: Tuple[Tuple[str, str, str], ...] = (
    ("instance", "instance", "s"),
    ("flow", "flow", "s"),
    ("clr_ps", "CLR[ps]", ".2f"),
    ("skew_ps", "skew[ps]", ".2f"),
    ("max_latency_ps", "latency[ps]", ".1f"),
    ("total_capacitance_fF", "cap[fF]", ".0f"),
    ("wirelength_um", "WL[um]", ".0f"),
    ("slew_violations", "slew viol", "d"),
    ("evaluations", "evals", "d"),
    ("runtime_s", "runtime[s]", ".2f"),
)

#: One row per Monte Carlo job with the distribution statistics the
#: ISPD'10-style scoring cares about.  Keys match :func:`mc_table_row`.
MC_TABLE_COLUMNS: Tuple[Tuple[str, str, str], ...] = (
    ("instance", "instance", "s"),
    ("flow", "flow", "s"),
    ("family", "family", "s"),
    ("samples", "samples", "d"),
    ("skew_mean_ps", "skew mu[ps]", ".2f"),
    ("skew_std_ps", "sigma[ps]", ".2f"),
    ("skew_p95_ps", "p95[ps]", ".2f"),
    ("skew_p99_ps", "p99[ps]", ".2f"),
    ("skew_yield_pct", "yield[%]", ".1f"),
    ("clr_p95_ps", "CLR p95[ps]", ".2f"),
    ("nominal_skew_ps", "nom skew[ps]", ".2f"),
    ("wall_clock_s", "t[s]", ".2f"),
)


def mc_table_row(record: McRecord) -> Dict[str, Any]:
    """Flatten one :class:`McRecord` into a :data:`MC_TABLE_COLUMNS` row."""
    summary = record.yield_ or YieldSummary()
    return {
        "instance": record.instance,
        "flow": record.flow,
        "family": record.family,
        "samples": record.samples,
        "skew_mean_ps": summary.skew_mean_ps,
        "skew_std_ps": summary.skew_std_ps,
        "skew_p95_ps": summary.skew_p95_ps,
        "skew_p99_ps": summary.skew_p99_ps,
        "skew_yield_pct": 100.0 * (summary.skew_yield or 0.0),
        "clr_p95_ps": summary.clr_p95_ps,
        "nominal_skew_ps": record.nominal.skew_ps if record.nominal else None,
        "wall_clock_s": record.wall_clock_s,
    }
