"""``repro.api`` -- the stable, typed public surface of the reproduction.

Three layers, bottom-up:

* :mod:`repro.api.records` -- the typed result schemas (:class:`RunRecord`,
  :class:`McRecord`, :class:`ErrorRecord`, :class:`StageRow`,
  :class:`RunSummary`, :class:`YieldSummary`): every JSON record the system
  emits, defined exactly once, round-tripping bit-identically to the legacy
  dict shapes;
* :mod:`repro.api.jobs` -- the unified job model (:class:`Job`,
  :class:`JobSpec`, :class:`McJobSpec`) and the single
  :meth:`JobMatrix.expand` fan-out path shared by ``repro run`` / ``repro
  sweep`` / ``repro mc``;
* :mod:`repro.api.service` -- :class:`SynthesisService`, the long-lived
  facade owning a persistent warm worker pool, streaming typed results and
  recording every call in an attached :class:`~repro.store.RunStore`.

Import everything from here::

    from repro.api import JobMatrix, RunRecord, SynthesisService

The records layer is imported eagerly (it is a dependency-free leaf); the
job and service layers load lazily on first attribute access, so low-level
modules can depend on :mod:`repro.api.records` without import cycles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List

from repro.api.records import (
    MC_TABLE_COLUMNS,
    MISSING,
    RUN_SUMMARY_COLUMNS,
    STAGE_TABLE_COLUMNS,
    ErrorRecord,
    McRecord,
    Record,
    ResultRecord,
    RunRecord,
    RunSummary,
    StageRow,
    YieldSummary,
    mc_table_row,
    record_from_dict,
    stable_record,
)

if TYPE_CHECKING:  # pragma: no cover - static imports for annotations only
    from repro.api.jobs import (
        Job,
        JobMatrix,
        JobSpec,
        McJobSpec,
        MonteCarloAxes,
        sanitize_spec,
    )
    from repro.api.service import JobEvent, ServiceBatch, SynthesisService

__all__ = [
    # records
    "MISSING",
    "StageRow",
    "RunSummary",
    "YieldSummary",
    "RunRecord",
    "McRecord",
    "ErrorRecord",
    "Record",
    "ResultRecord",
    "record_from_dict",
    "stable_record",
    "mc_table_row",
    "STAGE_TABLE_COLUMNS",
    "RUN_SUMMARY_COLUMNS",
    "MC_TABLE_COLUMNS",
    # jobs
    "Job",
    "JobSpec",
    "McJobSpec",
    "MonteCarloAxes",
    "JobMatrix",
    "sanitize_spec",
    # service
    "SynthesisService",
    "JobEvent",
    "ServiceBatch",
]

#: Lazily resolved attribute -> providing submodule (PEP 562).  The job and
#: service layers pull in the runner/core stack, which itself depends on
#: :mod:`repro.api.records`; loading them on first access keeps that edge
#: acyclic.
_LAZY = {
    "Job": "repro.api.jobs",
    "JobSpec": "repro.api.jobs",
    "McJobSpec": "repro.api.jobs",
    "MonteCarloAxes": "repro.api.jobs",
    "JobMatrix": "repro.api.jobs",
    "sanitize_spec": "repro.api.jobs",
    "SynthesisService": "repro.api.service",
    "JobEvent": "repro.api.service",
    "ServiceBatch": "repro.api.service",
}


def __getattr__(name: str) -> Any:
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> List[str]:
    return sorted(__all__)
