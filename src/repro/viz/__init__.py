"""Visualization helpers (SVG clock-tree rendering, Figure 3)."""

from repro.viz.svg import render_tree_svg, save_tree_svg

__all__ = ["render_tree_svg", "save_tree_svg"]
