"""SVG rendering of clock trees (Figure 3 of the paper).

The paper visualizes optimized trees with sinks drawn as crosses, buffers as
blue rectangles, L-shapes drawn as "diagonal wires" to reduce clutter, and
wires coloured with a red-green gradient encoding their slow-down slack (red =
no slack, green = large slack).  This module reproduces that rendering as a
standalone SVG string with no third-party plotting dependency, so the
examples and benchmarks can emit figures in any environment.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.core.slack import SlackAnnotation
from repro.cts.tree import ClockTree
from repro.geometry.obstacles import ObstacleSet
from repro.geometry.rect import Rect

__all__ = ["render_tree_svg", "save_tree_svg"]


def _slack_color(normalized: float) -> str:
    """Red (no slack) to green (maximum slack) gradient."""
    clamped = min(max(normalized, 0.0), 1.0)
    red = int(round(220 * (1.0 - clamped)))
    green = int(round(180 * clamped))
    return f"rgb({red},{green},40)"


def render_tree_svg(
    tree: ClockTree,
    annotation: Optional[SlackAnnotation] = None,
    obstacles: Optional[ObstacleSet] = None,
    die: Optional[Rect] = None,
    width: int = 900,
    title: Optional[str] = None,
) -> str:
    """Return an SVG document depicting ``tree``.

    Wires are straight lines between node positions ("diagonal wires" in the
    paper's phrasing); when a slack ``annotation`` is given they are coloured
    by normalized slow-down slack, otherwise drawn in neutral grey.  Sinks are
    crosses, buffers blue rectangles, the source a black square, obstacles
    light-grey rectangles.
    """
    xs = [n.position.x for n in tree.nodes()]
    ys = [n.position.y for n in tree.nodes()]
    if die is not None:
        xs.extend([die.xlo, die.xhi])
        ys.extend([die.ylo, die.yhi])
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    span_x = max(xmax - xmin, 1.0)
    span_y = max(ymax - ymin, 1.0)
    margin = 0.04 * max(span_x, span_y)
    scale = (width - 20.0) / (span_x + 2 * margin)
    height = int((span_y + 2 * margin) * scale) + 20

    def sx(x: float) -> float:
        return 10.0 + (x - xmin + margin) * scale

    def sy(y: float) -> float:
        # SVG y grows downward; flip so the die is drawn in conventional orientation.
        return height - 10.0 - (y - ymin + margin) * scale

    marker = max(2.0, 0.006 * width)
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">',
        f'<rect x="0" y="0" width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="12" y="16" font-size="13" font-family="sans-serif">{title}</text>'
        )
    if die is not None:
        parts.append(
            f'<rect x="{sx(die.xlo):.1f}" y="{sy(die.yhi):.1f}" '
            f'width="{(die.width) * scale:.1f}" height="{(die.height) * scale:.1f}" '
            'fill="none" stroke="#444" stroke-width="1"/>'
        )
    if obstacles is not None:
        for obstacle in obstacles:
            rect = obstacle.rect
            parts.append(
                f'<rect x="{sx(rect.xlo):.1f}" y="{sy(rect.yhi):.1f}" '
                f'width="{rect.width * scale:.1f}" height="{rect.height * scale:.1f}" '
                'fill="#dddddd" stroke="#999" stroke-width="0.5"/>'
            )

    normalized = annotation.normalized_edge_slow() if annotation is not None else {}
    for node in tree.nodes():
        if node.parent is None:
            continue
        parent = tree.parent_of(node.node_id)
        color = (
            _slack_color(normalized[node.node_id])
            if node.node_id in normalized
            else "#777777"
        )
        parts.append(
            f'<line x1="{sx(parent.position.x):.1f}" y1="{sy(parent.position.y):.1f}" '
            f'x2="{sx(node.position.x):.1f}" y2="{sy(node.position.y):.1f}" '
            f'stroke="{color}" stroke-width="1.2"/>'
        )

    for node in tree.nodes():
        x, y = sx(node.position.x), sy(node.position.y)
        if node.is_source:
            parts.append(
                f'<rect x="{x - marker:.1f}" y="{y - marker:.1f}" width="{2 * marker:.1f}" '
                f'height="{2 * marker:.1f}" fill="black"/>'
            )
        elif node.has_buffer:
            parts.append(
                f'<rect x="{x - marker * 0.8:.1f}" y="{y - marker * 0.8:.1f}" '
                f'width="{1.6 * marker:.1f}" height="{1.6 * marker:.1f}" '
                'fill="#1f5fd0" stroke="none"/>'
            )
        if node.is_sink:
            parts.append(
                f'<path d="M {x - marker:.1f} {y - marker:.1f} L {x + marker:.1f} {y + marker:.1f} '
                f'M {x - marker:.1f} {y + marker:.1f} L {x + marker:.1f} {y - marker:.1f}" '
                'stroke="#b02020" stroke-width="1"/>'
            )
    parts.append("</svg>")
    return "\n".join(parts)


def save_tree_svg(
    tree: ClockTree,
    path: Union[str, Path],
    annotation: Optional[SlackAnnotation] = None,
    obstacles: Optional[ObstacleSet] = None,
    die: Optional[Rect] = None,
    width: int = 900,
    title: Optional[str] = None,
) -> Path:
    """Render ``tree`` and write the SVG to ``path``; returns the path."""
    target = Path(path)
    target.write_text(
        render_tree_svg(
            tree,
            annotation=annotation,
            obstacles=obstacles,
            die=die,
            width=width,
            title=title,
        ),
        encoding="utf-8",
    )
    return target
