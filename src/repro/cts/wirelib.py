"""Wire libraries: available routing wire types and their RC constants.

The ISPD'09 CNS contest provided two wire codes (a default and a wide wire);
clock wire *sizing* in Contango means switching an edge between library
entries.  "Downsizing" selects a narrower (higher-resistance) wire, which
slows the downstream sinks; "upsizing" selects a wider (lower-resistance,
higher-capacitance) wire, which speeds them up at a power cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

__all__ = ["WireType", "WireLibrary", "ispd09_wire_library"]


@dataclass(frozen=True)
class WireType:
    """A routing wire type with per-unit-length parasitics.

    Attributes
    ----------
    name:
        Human-readable identifier (e.g. ``"W1"``).
    unit_resistance:
        Resistance in ohm per micrometre of wire.
    unit_capacitance:
        Capacitance in femtofarad per micrometre of wire.
    """

    name: str
    unit_resistance: float
    unit_capacitance: float

    def __post_init__(self) -> None:
        if self.unit_resistance <= 0.0:
            raise ValueError(f"wire {self.name}: unit resistance must be positive")
        if self.unit_capacitance <= 0.0:
            raise ValueError(f"wire {self.name}: unit capacitance must be positive")

    def resistance(self, length: float) -> float:
        """Total resistance (ohm) of ``length`` micrometres of this wire."""
        return self.unit_resistance * length

    def capacitance(self, length: float) -> float:
        """Total capacitance (fF) of ``length`` micrometres of this wire."""
        return self.unit_capacitance * length


class WireLibrary:
    """An ordered collection of wire types, from narrowest to widest.

    "Narrow" means high resistance per unit length.  The ordering defines what
    wire up-/down-sizing means for the optimization passes.
    """

    def __init__(self, types: Sequence[WireType]) -> None:
        if not types:
            raise ValueError("wire library must contain at least one wire type")
        ordered = sorted(types, key=lambda w: -w.unit_resistance)
        names = [w.name for w in ordered]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate wire type names: {names}")
        self._types: List[WireType] = ordered
        self._index = {w.name: i for i, w in enumerate(ordered)}

    def __len__(self) -> int:
        return len(self._types)

    def __iter__(self) -> Iterator[WireType]:
        return iter(self._types)

    def __contains__(self, wire: WireType) -> bool:
        return wire.name in self._index

    @property
    def narrowest(self) -> WireType:
        return self._types[0]

    @property
    def widest(self) -> WireType:
        return self._types[-1]

    @property
    def default(self) -> WireType:
        """The wire used for initial tree construction (the widest type).

        Contango builds the initial tree with strong wires to minimize
        insertion delay and later *downsizes* selected wires to balance skew.
        """
        return self.widest

    def by_name(self, name: str) -> WireType:
        try:
            return self._types[self._index[name]]
        except KeyError:
            raise KeyError(f"unknown wire type {name!r}") from None

    def index_of(self, wire: WireType) -> int:
        if wire.name not in self._index:
            raise KeyError(f"wire type {wire.name!r} not in library")
        return self._index[wire.name]

    def narrower(self, wire: WireType) -> WireType:
        """Return the next-narrower wire type, or ``wire`` if already narrowest."""
        idx = self.index_of(wire)
        return self._types[max(idx - 1, 0)]

    def wider(self, wire: WireType) -> WireType:
        """Return the next-wider wire type, or ``wire`` if already widest."""
        idx = self.index_of(wire)
        return self._types[min(idx + 1, len(self._types) - 1)]

    def can_downsize(self, wire: WireType) -> bool:
        return self.index_of(wire) > 0

    def can_upsize(self, wire: WireType) -> bool:
        return self.index_of(wire) < len(self._types) - 1


def ispd09_wire_library() -> WireLibrary:
    """Return a two-entry 45 nm-class wire library matching the contest setup.

    The contest supplied a default and a wide clock wire; the constants here
    are representative 45 nm global-layer values (the exact contest numbers
    are not printed in the paper, and only relative trends matter for the
    reproduction).
    """
    return WireLibrary(
        [
            WireType(name="W_NARROW", unit_resistance=0.30, unit_capacitance=0.16),
            WireType(name="W_WIDE", unit_resistance=0.10, unit_capacitance=0.20),
        ]
    )
