"""Buffer/inverter libraries, including composite (parallel) inverters.

Table I of the paper characterizes the two ISPD'09 inverters and the parallel
compositions of the small inverter that Contango uses instead of the large
one.  :func:`repro.core.composite.analyze_composites` reproduces that table
from the primitives defined here.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, List, Optional, Sequence

__all__ = [
    "BufferType",
    "BufferLibrary",
    "ispd09_buffer_library",
    "ISPD09_LARGE_INVERTER",
    "ISPD09_SMALL_INVERTER",
]


@dataclass(frozen=True)
class BufferType:
    """A clock buffer or inverter.

    Attributes
    ----------
    name:
        Identifier, e.g. ``"INV_L"`` or ``"8X INV_S"``.
    input_cap:
        Gate input pin capacitance in fF.
    output_cap:
        Output (drain) parasitic capacitance in fF.
    output_res:
        Effective switching output resistance in ohm at nominal supply.
    intrinsic_delay:
        Load-independent delay contribution in ps.
    inverting:
        True for inverters (the ISPD'09 library only has inverters).
    parallel_count:
        Number of parallel primitive devices forming this (composite) buffer.
    base_name:
        Name of the primitive device; equals ``name`` for primitives.
    """

    name: str
    input_cap: float
    output_cap: float
    output_res: float
    intrinsic_delay: float = 10.0
    inverting: bool = True
    parallel_count: int = 1
    base_name: Optional[str] = None

    def __post_init__(self) -> None:
        if min(self.input_cap, self.output_cap, self.output_res) <= 0.0:
            raise ValueError(f"buffer {self.name}: parasitics must be positive")
        if self.parallel_count < 1:
            raise ValueError(f"buffer {self.name}: parallel_count must be >= 1")
        if self.base_name is None:
            object.__setattr__(self, "base_name", self.name)

    @property
    def total_cap(self) -> float:
        """Input plus output capacitance -- the power/area proxy used in sizing."""
        return self.input_cap + self.output_cap

    def parallel(self, count: int) -> "BufferType":
        """Return the composite buffer made of ``count`` parallel copies.

        Parallel composition multiplies the capacitances and divides the
        output resistance; the intrinsic delay is unchanged (all copies switch
        together).
        """
        if count < 1:
            raise ValueError("parallel count must be >= 1")
        if count == 1:
            return self
        total = count * self.parallel_count
        return replace(
            self,
            name=f"{total}X {self.base_name}",
            input_cap=self.input_cap * count,
            output_cap=self.output_cap * count,
            output_res=self.output_res / count,
            parallel_count=total,
        )

    def scaled(self, factor: float) -> "BufferType":
        """Return a continuously-sized version of this buffer.

        Used by iterative buffer sizing, which grows composite inverters by a
        percentage per iteration (p_i = 100/(i+3)%).  Capacitances scale with
        ``factor``; output resistance scales with ``1/factor``.
        """
        if factor <= 0.0:
            raise ValueError("scale factor must be positive")
        return replace(
            self,
            name=f"{self.name} x{factor:.3f}",
            input_cap=self.input_cap * factor,
            output_cap=self.output_cap * factor,
            output_res=self.output_res / factor,
        )

    def dominates(self, other: "BufferType") -> bool:
        """Return True when this buffer is at least as good as ``other`` on every axis.

        "Better" means lower input cap, lower output cap and lower output
        resistance; strict improvement is required on at least one axis.
        """
        no_worse = (
            self.input_cap <= other.input_cap
            and self.output_cap <= other.output_cap
            and self.output_res <= other.output_res
        )
        strictly_better = (
            self.input_cap < other.input_cap
            or self.output_cap < other.output_cap
            or self.output_res < other.output_res
        )
        return no_worse and strictly_better


class BufferLibrary:
    """A collection of primitive buffer/inverter types."""

    def __init__(self, types: Sequence[BufferType]) -> None:
        if not types:
            raise ValueError("buffer library must contain at least one buffer")
        names = [b.name for b in types]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate buffer names: {names}")
        self._types: List[BufferType] = list(types)
        self._index = {b.name: i for i, b in enumerate(self._types)}

    def __len__(self) -> int:
        return len(self._types)

    def __iter__(self) -> Iterator[BufferType]:
        return iter(self._types)

    @property
    def types(self) -> List[BufferType]:
        return list(self._types)

    def by_name(self, name: str) -> BufferType:
        try:
            return self._types[self._index[name]]
        except KeyError:
            raise KeyError(f"unknown buffer type {name!r}") from None

    @property
    def smallest(self) -> BufferType:
        """The buffer with the smallest total capacitance (power footprint)."""
        return min(self._types, key=lambda b: b.total_cap)

    @property
    def strongest(self) -> BufferType:
        """The buffer with the lowest output resistance."""
        return min(self._types, key=lambda b: b.output_res)


# Table I of the paper (ISPD'09 CNS inverters).
ISPD09_LARGE_INVERTER = BufferType(
    name="INV_L",
    input_cap=35.0,
    output_cap=80.0,
    output_res=61.2,
    intrinsic_delay=6.0,
    inverting=True,
)
ISPD09_SMALL_INVERTER = BufferType(
    name="INV_S",
    input_cap=4.2,
    output_cap=6.1,
    output_res=440.0,
    intrinsic_delay=8.0,
    inverting=True,
)


def ispd09_buffer_library() -> BufferLibrary:
    """Return the two-inverter ISPD'09 library from Table I."""
    return BufferLibrary([ISPD09_LARGE_INVERTER, ISPD09_SMALL_INVERTER])
