"""Zero-skew tree construction by Deferred Merge Embedding (DME).

The builder follows the classic two-phase algorithm the paper cites ([1], [3],
[4] in its reference list):

1. *Bottom-up*: every topology node is assigned a merging segment (a
   Manhattan arc) and wire lengths to its two children such that the Elmore
   delays through both children are exactly equal.  When one child subtree is
   so much slower that balancing is impossible with the direct spanning
   wirelength, the faster child's wire is lengthened (wire detour / snaking).
2. *Top-down*: concrete locations are chosen -- the root as close as possible
   to the clock source, every other merge point as close as possible to its
   already-placed parent -- and an L-shaped route plus any required snaking
   length is recorded on the tree edge.

The resulting :class:`repro.cts.tree.ClockTree` has zero skew under the Elmore
delay model with the chosen wire type, which is the property the optimization
passes start from (SPICE-accurate skew is then non-zero but small, exactly as
in the paper's INITIAL row of Table III).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cts.topology import SinkInstance, Topology, build_topology
from repro.cts.tree import ClockTree, Sink
from repro.cts.wirelib import WireType
from repro.geometry.lshape import best_lshape
from repro.geometry.obstacles import ObstacleSet
from repro.geometry.point import Point
from repro.geometry.trr import ManhattanArc, merging_segment
from repro.analysis.units import OHM_FF_TO_PS

__all__ = ["MergeRecord", "ZeroSkewTreeBuilder", "build_zero_skew_tree"]


@dataclass
class MergeRecord:
    """Bottom-up DME data for one topology node."""

    arc: ManhattanArc
    subtree_capacitance: float
    subtree_delay: float
    edge_length_left: float = 0.0
    edge_length_right: float = 0.0


class ZeroSkewTreeBuilder:
    """Build zero-skew (Elmore-balanced) trees for a given wire type.

    Parameters
    ----------
    wire:
        Wire type used for every edge of the initial tree.
    topology_method:
        ``"bisection"`` (default) or ``"greedy"``; ignored when an explicit
        topology is passed to :meth:`build`.
    obstacles:
        Optional obstacle set used only to pick the less-overlapping L-shape
        for each edge during embedding (full obstacle legalization is done
        later by :mod:`repro.cts.obstacle_avoid`).
    """

    def __init__(
        self,
        wire: WireType,
        topology_method: str = "bisection",
        obstacles: Optional[ObstacleSet] = None,
    ) -> None:
        self.wire = wire
        self.topology_method = topology_method
        self.obstacles = obstacles

    # ------------------------------------------------------------------
    def build(
        self,
        sinks: Sequence[SinkInstance],
        source_position: Point,
        source_resistance: float = 100.0,
        topology: Optional[Topology] = None,
    ) -> ClockTree:
        """Construct the zero-skew clock tree for the given sinks."""
        if not sinks:
            raise ValueError("cannot build a clock tree without sinks")
        topo = topology if topology is not None else build_topology(sinks, self.topology_method)
        topo.validate(len(sinks))
        records = self._bottom_up(topo, sinks)
        return self._top_down(topo, sinks, records, source_position, source_resistance)

    # ------------------------------------------------------------------
    # Phase 1: bottom-up merging segments
    # ------------------------------------------------------------------
    def _bottom_up(
        self, topo: Topology, sinks: Sequence[SinkInstance]
    ) -> Dict[int, MergeRecord]:
        records: Dict[int, MergeRecord] = {}
        for node in topo.postorder():
            if node.is_leaf:
                records[node.index] = self._leaf_record(sinks[node.sink_index])
                continue
            left = records[node.left]
            right = records[node.right]
            records[node.index] = self._merge(left, right)
        return records

    def _leaf_record(self, sink: SinkInstance) -> MergeRecord:
        """Merging data of a leaf: the sink point with its pin capacitance."""
        return MergeRecord(
            arc=ManhattanArc.from_point(sink.position),
            subtree_capacitance=sink.capacitance,
            subtree_delay=0.0,
        )

    def _merge(self, left: MergeRecord, right: MergeRecord) -> MergeRecord:
        distance = left.arc.distance_to_arc(right.arc)
        length_left, length_right = self._balanced_lengths(left, right, distance)
        radius_left = max(length_left, 0.0)
        radius_right = max(length_right, 0.0)
        # The balanced split sums to the spanning distance by construction
        # (detour cases overshoot it), so any shortfall here is floating-point
        # noise.  Absorb it symmetrically; inflating a radius by more than the
        # rounding error would move the merging segment off the equal-delay
        # locus and silently unbalance the subtree.
        shortfall = distance - (radius_left + radius_right)
        if shortfall > 0.0:
            radius_left += shortfall / 2.0
            radius_right += shortfall / 2.0
        arc = merging_segment(left.arc, right.arc, radius_left, radius_right)
        capacitance = (
            left.subtree_capacitance
            + right.subtree_capacitance
            + self.wire.unit_capacitance * (length_left + length_right)
        )
        delay = left.subtree_delay + self._wire_delay(length_left, left.subtree_capacitance)
        return MergeRecord(
            arc=arc,
            subtree_capacitance=capacitance,
            subtree_delay=delay,
            edge_length_left=length_left,
            edge_length_right=length_right,
        )

    def _wire_delay(self, length: float, load: float) -> float:
        """Elmore delay (ps) of ``length`` um of wire driving ``load`` fF."""
        r = self.wire.unit_resistance * length
        c = self.wire.unit_capacitance * length
        return r * (c / 2.0 + load) * OHM_FF_TO_PS

    def _balanced_lengths(
        self, left: MergeRecord, right: MergeRecord, distance: float
    ) -> tuple:
        """Split ``distance`` of wire between the children to balance Elmore delay.

        Returns ``(length_left, length_right)``.  One of the lengths exceeds
        ``distance`` (and the other is zero) when a detour is required.
        """
        r = self.wire.unit_resistance
        c = self.wire.unit_capacitance
        ca, cb = left.subtree_capacitance, right.subtree_capacitance
        ta, tb = left.subtree_delay, right.subtree_delay
        if distance <= 0.0:
            # Co-located arcs: any residual imbalance must be fixed by snaking
            # the faster side.
            if abs(ta - tb) <= 1e-12:
                return 0.0, 0.0
            if ta > tb:
                return 0.0, self._detour_length(ta - tb, cb)
            return self._detour_length(tb - ta, ca), 0.0
        denom = r * (ca + cb + c * distance) * OHM_FF_TO_PS
        numer = (tb - ta) + r * distance * (cb + c * distance / 2.0) * OHM_FF_TO_PS
        length_left = numer / denom
        if 0.0 <= length_left <= distance:
            return length_left, distance - length_left
        if length_left < 0.0:
            # Left subtree is already slower even with zero wire: detour right.
            extra = ta - (tb + self._wire_delay(distance, cb))
            return 0.0, distance + self._detour_length(max(extra, 0.0), cb + c * distance)
        # Right subtree is slower: detour left.
        extra = tb - (ta + self._wire_delay(distance, ca))
        return distance + self._detour_length(max(extra, 0.0), ca + c * distance), 0.0

    def _detour_length(self, delay_gap: float, load: float) -> float:
        """Extra wirelength needed to add ``delay_gap`` ps before ``load`` fF.

        Solves ``r*x*(c*x/2 + load) = delay_gap`` for ``x >= 0``.
        """
        if delay_gap <= 0.0:
            return 0.0
        r = self.wire.unit_resistance * OHM_FF_TO_PS
        c = self.wire.unit_capacitance
        a = r * c / 2.0
        b = r * load
        disc = b * b + 4.0 * a * delay_gap
        return (-b + math.sqrt(disc)) / (2.0 * a)

    # ------------------------------------------------------------------
    # Phase 2: top-down embedding
    # ------------------------------------------------------------------
    def _top_down(
        self,
        topo: Topology,
        sinks: Sequence[SinkInstance],
        records: Dict[int, MergeRecord],
        source_position: Point,
        source_resistance: float,
    ) -> ClockTree:
        tree = ClockTree(
            source_position,
            source_resistance=source_resistance,
            default_wire=self.wire,
        )
        root_record = records[topo.root_index]
        root_placement = root_record.arc.closest_point_to(source_position)
        root_sink = (
            sinks[topo.root.sink_index] if topo.root.is_leaf else None
        )
        if root_sink is not None:
            root_placement = root_sink.position
        root_tree_id = self._attach(
            tree, tree.root_id, source_position, root_placement, 0.0, root_sink
        )
        self._embed_children(tree, topo, sinks, records, topo.root_index, root_tree_id, root_placement)
        tree.validate()
        return tree

    def _embed_children(
        self,
        tree: ClockTree,
        topo: Topology,
        sinks: Sequence[SinkInstance],
        records: Dict[int, MergeRecord],
        topo_index: int,
        parent_tree_id: int,
        parent_position: Point,
    ) -> None:
        node = topo.node(topo_index)
        if node.is_leaf:
            return
        record = records[topo_index]
        for child_index, edge_length in (
            (node.left, record.edge_length_left),
            (node.right, record.edge_length_right),
        ):
            child_record = records[child_index]
            child_node = topo.node(child_index)
            placement = child_record.arc.closest_point_to(parent_position)
            sink = sinks[child_node.sink_index] if child_node.is_leaf else None
            if sink is not None:
                placement = sink.position
            snake = max(edge_length - parent_position.manhattan_to(placement), 0.0)
            child_tree_id = self._attach(
                tree, parent_tree_id, parent_position, placement, snake, sink
            )
            self._embed_children(
                tree, topo, sinks, records, child_index, child_tree_id, placement
            )

    def _attach(
        self,
        tree: ClockTree,
        parent_tree_id: int,
        parent_position: Point,
        position: Point,
        snake: float,
        sink: Optional[SinkInstance] = None,
    ) -> int:
        route = self._route(parent_position, position)
        if sink is not None:
            node_id = tree.add_sink(
                parent_tree_id,
                position,
                Sink(sink.name, sink.capacitance, sink.required_polarity),
                route=route,
                wire_type=self.wire,
            )
        else:
            node_id = tree.add_internal(
                parent_tree_id, position, route=route, wire_type=self.wire
            )
        if snake > 0.0:
            tree.add_snake(node_id, snake)
        return node_id

    def _route(self, start: Point, end: Point) -> List[Point]:
        if start == end:
            return [start, end]
        lshape = best_lshape(start, end, self.obstacles)
        points = [lshape.start, lshape.bend, lshape.end]
        return [p for i, p in enumerate(points) if i == 0 or p != points[i - 1]]


def build_zero_skew_tree(
    sinks: Sequence[SinkInstance],
    source_position: Point,
    wire: WireType,
    source_resistance: float = 100.0,
    topology_method: str = "bisection",
    obstacles: Optional[ObstacleSet] = None,
    topology: Optional[Topology] = None,
) -> ClockTree:
    """Convenience wrapper around :class:`ZeroSkewTreeBuilder`."""
    builder = ZeroSkewTreeBuilder(
        wire=wire, topology_method=topology_method, obstacles=obstacles
    )
    return builder.build(
        sinks,
        source_position,
        source_resistance=source_resistance,
        topology=topology,
    )
