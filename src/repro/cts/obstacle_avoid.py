"""Obstacle-violation repair for clock trees (Section IV-A of the paper).

The ISPD'09/SoC obstacle model allows *routing* clock wires over pre-designed
blocks but forbids *buffering* over them.  A zero-skew tree built by DME
ignores obstacles, so this module repairs it before buffer insertion:

* **L-shape flipping / maze rerouting** (Step 1).  Every edge whose route
  crosses an obstacle, but whose endpoints both lie outside, is first re-bent
  to the alternative L configuration; if that still conflicts it is rerouted
  with the obstacle-avoiding maze router.  Endpoints are unchanged, so the
  tree structure is untouched -- only wirelength (and therefore delay) grows,
  which downstream electrical correction compensates.

* **Subtree capture and the slew-free capacitance test** (Step 2).  When a
  wire dives *into* an obstacle the entire enclosed subtree is captured and
  its capacitance compared against the largest load one buffer can drive
  without violating the slew limit.  Small subtrees need no detour: a buffer
  placed just before the obstacle can drive them.

* **Contour detouring** (Step 3, Figure 2).  Larger enclosed subtrees are
  re-attached along the obstacle contour: the full contour is taken as the
  detour and the contour arc *furthest from the detour source* (between the
  most contour-distant sink and its far-side neighbour) is removed so the
  network stays a tree while the longest detoured source-to-sink path is
  minimized.  Sinks keep their original positions and are fed by short stubs
  from the contour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.units import LN9
from repro.buffering.candidates import max_drivable_capacitance
from repro.cts.bufferlib import BufferType
from repro.cts.tree import ClockTree, NodeKind, TreeNode, TreeValidationError
from repro.geometry.lshape import lshape_routes
from repro.geometry.maze import MazeRouteError, MazeRouter
from repro.geometry.obstacles import CompoundObstacle, ObstacleSet
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.segment import Segment

__all__ = [
    "ObstacleAvoidanceReport",
    "ObstacleAvoider",
    "slew_free_capacitance",
    "repair_obstacle_violations",
]


def slew_free_capacitance(
    buffer: BufferType, slew_limit: float, margin: float = 0.9
) -> float:
    """Largest load (fF) one ``buffer`` can drive without violating the slew limit.

    Uses the single-pole estimate ``slew ~= ln(9) * R_out * C_load`` with a
    safety ``margin`` (defaults to 90% of the limit), which is the same simple
    analytical model the paper applies at this early, pre-SPICE stage.
    """
    if slew_limit <= 0.0:
        raise ValueError("slew limit must be positive")
    if not 0.0 < margin <= 1.0:
        raise ValueError("margin must be in (0, 1]")
    return margin * slew_limit / (LN9 * buffer.output_res * 1e-3)


@dataclass
class ObstacleAvoidanceReport:
    """Statistics of one obstacle-repair run."""

    edges_checked: int = 0
    lshape_flips: int = 0
    maze_reroutes: int = 0
    subtrees_captured: int = 0
    subtrees_detoured: int = 0
    nodes_legalized: int = 0
    detour_wirelength: float = 0.0
    remaining_violations: int = 0
    notes: List[str] = field(default_factory=list)


class ObstacleAvoider:
    """Repairs obstacle conflicts in a routed clock tree.

    Parameters
    ----------
    obstacles:
        The obstacle set (compound obstacles are derived internally).
    die:
        Optional die outline; rerouted wires are kept inside it.
    driver:
        The composite buffer assumed when applying the slew-free-capacitance
        test of Step 2.
    slew_limit:
        10-90% slew limit in ps used by the same test.
    """

    def __init__(
        self,
        obstacles: ObstacleSet,
        die: Optional[Rect] = None,
        driver: Optional[BufferType] = None,
        slew_limit: float = 100.0,
    ) -> None:
        self.obstacles = obstacles
        self.die = die
        self.driver = driver
        self.slew_limit = slew_limit
        self._router = MazeRouter(obstacles, die=die, clearance=1.0)

    # ------------------------------------------------------------------
    def repair(self, tree: ClockTree) -> ObstacleAvoidanceReport:
        """Repair all obstacle conflicts of ``tree`` in place.

        Order matters: enclosed sink-subtrees are detoured first (Steps 2-3),
        then any remaining Steiner/merge nodes stranded inside blockages are
        pushed to the blockage boundary (they are not legal buffer sites, and
        leaving them inside would create arbitrarily long unbufferable wire
        spans), and finally ordinary crossing wires are rerouted (Step 1).
        """
        report = ObstacleAvoidanceReport()
        if len(self.obstacles) == 0:
            return report
        self._detour_enclosed_subtrees(tree, report)
        self._legalize_internal_nodes(tree, report)
        self._reroute_crossing_edges(tree, report)
        report.remaining_violations = len(self.find_crossing_edges(tree))
        tree.validate()
        return report

    # ------------------------------------------------------------------
    # Merge-node legalization: no internal node may sit inside a blockage
    # ------------------------------------------------------------------
    def _legalize_internal_nodes(self, tree: ClockTree, report: ObstacleAvoidanceReport) -> None:
        for node in list(tree.nodes()):
            if node.parent is None or node.is_sink:
                continue
            if not self.obstacles.blocks_point(node.position):
                continue
            new_position = self.obstacles.push_out_of_obstacles(node.position, self.die)
            tree.move_node(node.node_id, new_position)
            report.nodes_legalized += 1

    # ------------------------------------------------------------------
    # Step 1: reroute point-to-point wires that merely cross an obstacle
    # ------------------------------------------------------------------
    def find_crossing_edges(self, tree: ClockTree) -> List[int]:
        """Node ids whose parent edge's route crosses an obstacle interior."""
        crossing = []
        for node in tree.nodes():
            if node.parent is None:
                continue
            if self._route_crosses(node.route):
                crossing.append(node.node_id)
        return crossing

    def _route_crosses(self, route: Sequence[Point]) -> bool:
        for a, b in zip(route, route[1:]):
            if self.obstacles.crossing_obstacles(Segment(a, b)):
                return True
        return False

    def _reroute_crossing_edges(self, tree: ClockTree, report: ObstacleAvoidanceReport) -> None:
        for node in list(tree.preorder()):
            if node.parent is None:
                continue
            report.edges_checked += 1
            if not self._route_crosses(node.route):
                continue
            parent = tree.parent_of(node.node_id)
            if self._endpoint_blocked(parent.position) or self._endpoint_blocked(node.position):
                # The wire legitimately terminates inside an obstacle (e.g. a
                # sink placed on a macro); routing over is allowed, so leave
                # the minimum-overlap L-shape in place.
                new_route = self._least_overlap_lshape(parent.position, node.position)
                if new_route is not None:
                    tree.set_route(node.node_id, new_route)
                continue
            flipped = self._clear_lshape(parent.position, node.position)
            if flipped is not None:
                tree.set_route(node.node_id, flipped)
                report.lshape_flips += 1
                continue
            try:
                rerouted = self._router.route(parent.position, node.position)
            except MazeRouteError:
                report.notes.append(
                    f"edge to node {node.node_id}: no obstacle-free route exists"
                )
                continue
            extra = _route_length(rerouted) - node.route_length()
            tree.set_route(node.node_id, rerouted)
            report.maze_reroutes += 1
            report.detour_wirelength += max(extra, 0.0)

    def _endpoint_blocked(self, position: Point) -> bool:
        return self.obstacles.blocks_point(position)

    def _clear_lshape(self, start: Point, end: Point) -> Optional[List[Point]]:
        for candidate in lshape_routes(start, end):
            points = _dedupe([candidate.start, candidate.bend, candidate.end])
            if not self._route_crosses(points):
                return points
        return None

    def _least_overlap_lshape(self, start: Point, end: Point) -> Optional[List[Point]]:
        rects = [o.rect for o in self.obstacles]
        best = None
        best_overlap = float("inf")
        for candidate in lshape_routes(start, end):
            overlap = sum(candidate.overlap_length_with(r) for r in rects)
            if overlap < best_overlap:
                best_overlap = overlap
                best = _dedupe([candidate.start, candidate.bend, candidate.end])
        return best

    # ------------------------------------------------------------------
    # Steps 2-3: capture enclosed subtrees and detour along the contour
    # ------------------------------------------------------------------
    def _detour_enclosed_subtrees(self, tree: ClockTree, report: ObstacleAvoidanceReport) -> None:
        for compound in self.obstacles.compound_obstacles():
            bbox = compound.bbox
            captured = self._captured_subtree_roots(tree, bbox)
            for root_id in captured:
                report.subtrees_captured += 1
                if self.driver is not None and self._single_buffer_drivable(tree, root_id):
                    # One buffer placed before the obstacle can drive the whole
                    # enclosed subtree: no detour required (Step 2).
                    continue
                # The contour detour is heavy tree surgery (detach sinks,
                # delete the enclosed internals, rebuild along the contour);
                # run it as a transaction so a failed rebuild rolls back to
                # the intact subtree instead of leaving the tree half-wired.
                token = tree.checkpoint()
                try:
                    added = self._contour_detour(tree, root_id, bbox)
                except (ValueError, MazeRouteError, TreeValidationError) as exc:
                    tree.rollback_to(token)
                    report.notes.append(
                        f"contour detour of subtree {root_id} rolled back: {exc}"
                    )
                    continue
                tree.release(token)
                if added > 0.0:
                    report.subtrees_detoured += 1
                    report.detour_wirelength += added

    def _captured_subtree_roots(self, tree: ClockTree, bbox: Rect) -> List[int]:
        """Highest nodes whose whole subtree lies strictly inside ``bbox``.

        Only internal subtrees with at least two sinks are returned: a single
        sink inside an obstacle is always drivable from the boundary and never
        needs a contour detour.
        """
        inside: Dict[int, bool] = {}
        for node in tree.postorder():
            own = bbox.contains_point(node.position, strict=True)
            inside[node.node_id] = own and all(inside[c] for c in node.children)
        roots: List[int] = []
        for node in tree.preorder():
            if node.parent is None or not inside[node.node_id]:
                continue
            if not inside[tree.parent_of(node.node_id).node_id]:
                if len(tree.subtree_sinks(node.node_id)) >= 2 and not node.is_sink:
                    roots.append(node.node_id)
        return roots

    def _subtree_capacitance(self, tree: ClockTree, root_id: int) -> float:
        total = 0.0
        for node in tree.preorder(root_id):
            total += tree.edge_capacitance(node.node_id)
            total += tree.node_load_capacitance(node.node_id)
        return total

    def _single_buffer_drivable(self, tree: ClockTree, root_id: int) -> bool:
        """Step-2 test: can one ``driver`` drive the enclosed subtree within the slew limit?

        Besides the total capacitance, the unbuffered wire inside the obstacle
        contributes its own Elmore delay to the far-sink slew, so the test is
        ``ln(9) * (R_driver * C_subtree + tau_subtree) <= margin * limit``
        (equivalently, the subtree capacitance must not exceed the
        tau-adjusted slew-free capacitance).
        """
        subtree_cap = self._subtree_capacitance(tree, root_id)
        tau = self._subtree_worst_elmore(tree, root_id)
        budget = max_drivable_capacitance(
            self.driver, self.slew_limit, wire_delay_to_worst_tap=tau
        )
        return subtree_cap <= budget

    def _subtree_worst_elmore(self, tree: ClockTree, root_id: int) -> float:
        """Worst Elmore delay (ps) from ``root_id`` to any downstream sink."""
        downstream_cap: Dict[int, float] = {}
        for node in tree.postorder(root_id):
            cap = tree.node_load_capacitance(node.node_id)
            cap += sum(
                downstream_cap[c] + tree.edge_capacitance(c) for c in node.children
            )
            downstream_cap[node.node_id] = cap
        worst = 0.0
        delays: Dict[int, float] = {root_id: 0.0}
        for node in tree.preorder(root_id):
            if node.node_id != root_id:
                resistance = tree.edge_resistance(node.node_id)
                wire_cap = tree.edge_capacitance(node.node_id)
                delays[node.node_id] = delays[node.parent] + resistance * (
                    wire_cap / 2.0 + downstream_cap[node.node_id]
                ) * 1e-3
                worst = max(worst, delays[node.node_id])
        return worst

    def _contour_detour(self, tree: ClockTree, subtree_root: int, bbox: Rect) -> float:
        """Re-attach the enclosed subtree's sinks along the obstacle contour."""
        subtree_root_node = tree.node(subtree_root)
        parent = tree.parent_of(subtree_root)
        sinks = tree.subtree_sinks(subtree_root)
        if parent is None or len(sinks) < 2:
            return 0.0
        wire = subtree_root_node.wire_type or tree.default_wire

        entry = bbox.clamp_point(parent.position)
        entry = _snap_to_contour(bbox, entry)
        perimeter = bbox.perimeter
        entry_param = _contour_parameter(bbox, entry)

        # Contour positions of every enclosed sink, relative to the entry.
        sink_params: List[Tuple[float, TreeNode]] = []
        for sink in sinks:
            projected = _snap_to_contour(bbox, bbox.clamp_point(sink.position))
            param = (_contour_parameter(bbox, projected) - entry_param) % perimeter
            sink_params.append((param, sink))
        sink_params.sort(key=lambda item: item[0])

        # The most contour-distant sink (shortest-path distance from the
        # entry) determines which contour arc is removed (Step 3).
        distances = [min(p, perimeter - p) for p, _ in sink_params]
        far_pos = max(range(len(distances)), key=lambda i: distances[i])
        far_param = sink_params[far_pos][0]
        clockwise = [item for item in sink_params if item[0] <= far_param + 1e-9]
        counter = [item for item in sink_params if item[0] > far_param + 1e-9]
        if far_param > perimeter - far_param:
            # The far sink is best reached counter-clockwise: it anchors the
            # counter-clockwise branch instead.
            clockwise = [item for item in sink_params if item[0] < far_param - 1e-9]
            counter = [item for item in sink_params if item[0] >= far_param - 1e-9]
        counter = list(reversed(counter))

        # Detach the old subtree: remove every non-sink descendant.
        removed_wirelength = self._remove_internal_subtree(tree, subtree_root)

        # Entry node on the contour, fed from the old parent.
        entry_id = tree.add_internal(parent.node_id, entry, wire_type=wire)

        added = 0.0
        added += self._build_contour_branch(
            tree, entry_id, entry, bbox, [p for p, _ in clockwise],
            [s for _, s in clockwise], wire, forward=True,
        )
        added += self._build_contour_branch(
            tree, entry_id, entry, bbox, [perimeter - p for p, _ in counter],
            [s for _, s in counter], wire, forward=False,
        )
        added += parent.position.manhattan_to(entry)
        return max(added - removed_wirelength, 0.0)

    def _remove_internal_subtree(self, tree: ClockTree, subtree_root: int) -> float:
        """Delete the enclosed subtree except its sinks; return removed wirelength."""
        removed = 0.0
        sinks = tree.subtree_sinks(subtree_root)
        sink_ids = {s.node_id for s in sinks}
        for node in tree.preorder(subtree_root):
            removed += node.edge_length()
        # Detach sinks first so they survive the subtree deletion below.
        for sink_id in sink_ids:
            tree.detach_subtree(sink_id)
        tree.remove_subtree(subtree_root)
        return removed

    def _build_contour_branch(
        self,
        tree: ClockTree,
        entry_id: int,
        entry: Point,
        bbox: Rect,
        params: List[float],
        sinks: List[TreeNode],
        wire,
        forward: bool,
    ) -> float:
        """Build one contour branch and hook the given sinks onto it."""
        added = 0.0
        current_id = entry_id
        current_point = entry
        current_param = 0.0
        entry_param = _contour_parameter(bbox, entry)
        perimeter = bbox.perimeter
        for param, sink in zip(params, sinks):
            absolute = (entry_param + param) % perimeter if forward else (entry_param - param) % perimeter
            target = _contour_point(bbox, absolute)
            corner_points = _contour_walk(bbox, current_point, target, forward)
            for corner in corner_points:
                if corner.is_close(current_point):
                    continue
                current_id = tree.add_internal(current_id, corner, wire_type=wire)
                added += current_point.manhattan_to(corner)
                current_point = corner
            # Stub from the contour into the sink's original position.
            self._reattach_sink(tree, current_id, sink, wire)
            added += current_point.manhattan_to(sink.position)
            current_param = param
        del current_param
        return added

    def _reattach_sink(self, tree: ClockTree, parent_id: int, sink: TreeNode, wire) -> None:
        parent = tree.node(parent_id)
        route = [parent.position, sink.position]
        # The sink's position may force a bend (the route is interpreted as an
        # L-shape downstream, like the paper's Figure 3).
        if parent.position.x != sink.position.x and parent.position.y != sink.position.y:
            bend = Point(sink.position.x, parent.position.y)
            route = [parent.position, bend, sink.position]
        tree.attach_subtree(sink.node_id, parent_id, wire_type=wire, route=route)


def repair_obstacle_violations(
    tree: ClockTree,
    obstacles: ObstacleSet,
    die: Optional[Rect] = None,
    driver: Optional[BufferType] = None,
    slew_limit: float = 100.0,
) -> ObstacleAvoidanceReport:
    """Convenience wrapper: repair ``tree`` in place and return the report."""
    avoider = ObstacleAvoider(obstacles, die=die, driver=driver, slew_limit=slew_limit)
    return avoider.repair(tree)


# ----------------------------------------------------------------------
# Contour parametrization helpers
# ----------------------------------------------------------------------
def _snap_to_contour(bbox: Rect, p: Point) -> Point:
    """Project a point (already clamped into the box) onto the box contour."""
    gaps = [
        (abs(p.x - bbox.xlo), Point(bbox.xlo, p.y)),
        (abs(p.x - bbox.xhi), Point(bbox.xhi, p.y)),
        (abs(p.y - bbox.ylo), Point(p.x, bbox.ylo)),
        (abs(p.y - bbox.yhi), Point(p.x, bbox.yhi)),
    ]
    return min(gaps, key=lambda item: item[0])[1]


def _contour_parameter(bbox: Rect, p: Point) -> float:
    """Arc-length position of a contour point, clockwise from (xlo, ylo)."""
    w, h = bbox.width, bbox.height
    tol = 1e-6
    if abs(p.y - bbox.ylo) <= tol:
        return p.x - bbox.xlo
    if abs(p.x - bbox.xhi) <= tol:
        return w + (p.y - bbox.ylo)
    if abs(p.y - bbox.yhi) <= tol:
        return w + h + (bbox.xhi - p.x)
    return 2 * w + h + (bbox.yhi - p.y)


def _contour_point(bbox: Rect, param: float) -> Point:
    """Inverse of :func:`_contour_parameter`."""
    w, h = bbox.width, bbox.height
    perimeter = 2 * (w + h)
    s = param % perimeter
    if s <= w:
        return Point(bbox.xlo + s, bbox.ylo)
    s -= w
    if s <= h:
        return Point(bbox.xhi, bbox.ylo + s)
    s -= h
    if s <= w:
        return Point(bbox.xhi - s, bbox.yhi)
    s -= w
    return Point(bbox.xlo, bbox.yhi - s)


def _contour_walk(bbox: Rect, start: Point, end: Point, forward: bool) -> List[Point]:
    """Corner points visited when walking the contour from ``start`` to ``end``."""
    perimeter = bbox.perimeter
    s = _contour_parameter(bbox, start)
    e = _contour_parameter(bbox, end)
    corners = sorted(_contour_parameter(bbox, c) for c in bbox.corners())
    points: List[float] = []
    if forward:
        span = (e - s) % perimeter
        for c in corners:
            offset = (c - s) % perimeter
            if 0 < offset < span:
                points.append(offset)
        points.sort()
        params = [(s + off) % perimeter for off in points] + [e]
    else:
        span = (s - e) % perimeter
        for c in corners:
            offset = (s - c) % perimeter
            if 0 < offset < span:
                points.append(offset)
        points.sort()
        params = [(s - off) % perimeter for off in points] + [e]
    return [_contour_point(bbox, p) for p in params]


def _route_length(points: Sequence[Point]) -> float:
    return sum(a.manhattan_to(b) for a, b in zip(points, points[1:]))


def _dedupe(points: List[Point]) -> List[Point]:
    result: List[Point] = []
    for p in points:
        if not result or p != result[-1]:
            result.append(p)
    return result
