"""The clock-tree data model shared by construction, optimization and analysis.

A :class:`ClockTree` is a rooted tree.  Every node has a planar position; the
edge between a node and its parent carries a rectilinear route, a wire type,
and an optional *snake length* (extra wirelength added by wiresnaking or by
obstacle detours).  A node may additionally hold a buffer/inverter that drives
its entire downstream subtree, and leaf nodes hold sink loads.

The structure is deliberately mutable: Contango's optimization passes edit
wire types, snake lengths and buffers in place, snapshot the tree with
:meth:`ClockTree.clone` before risky changes, and roll back when a SPICE-style
evaluation reports a regression or a slew violation.

Change tracking
---------------
Every mutation is journalled so that downstream consumers (most importantly
the incremental :class:`repro.analysis.evaluator.ClockNetworkEvaluator`) can
re-analyze only what actually changed:

* each node carries a **revision** (:meth:`ClockTree.node_revision`), bumped
  whenever the node's electrical content changes -- buffer placed/removed/
  resized, wire type reassigned, snaking added, route or position edited;
* the tree carries a **structure revision**
  (:attr:`ClockTree.structure_revision`), bumped whenever the decomposition
  into buffer stages can change -- children added, edges split, subtrees
  re-parented or removed, buffers placed on or removed from a node.

Revisions are drawn from one process-global monotonic counter, so a
``(node_id, revision)`` pair observed anywhere uniquely identifies that
node's content at that moment: clones share revisions (their content is
identical at clone time) while any later edit, in either tree, produces a
revision never seen before.  That property is what lets the evaluator use
revisions as content-addressed cache keys across snapshots, probes and
rollbacks.

Checkpoints
-----------
Optimization rounds used to snapshot with :meth:`ClockTree.clone` (O(n) per
round even when the round touches three edges).  The journal-revision
checkpoint API replaces that on the hot path:

* :meth:`ClockTree.checkpoint` opens a transaction and returns a token;
  from then on every mutator records an O(1) pre-image of each node it is
  about to touch (first touch per node per checkpoint only);
* :meth:`ClockTree.rollback_to` undoes everything back to the token in
  O(touched nodes), restoring node *revisions* verbatim so content-addressed
  caches (the evaluator's stage cache) recognise the rolled-back state as
  already analyzed;
* :meth:`ClockTree.release` closes an accepted transaction and drops its
  journal entries.

Checkpoints nest and must be released/rolled back LIFO.  With no checkpoint
outstanding the journal hooks are a single branch per mutation.  Code that
edits :class:`TreeNode` attributes directly (bypassing the mutators) must
call :meth:`ClockTree.journal_node` *before* the edit -- and :meth:`touch`
after it -- to stay transactional.  One caveat: nodes deleted by
:meth:`remove_subtree` are re-inserted at the end of the node table on
rollback, so their *iteration order* (not their content) can differ from a
:meth:`clone`-based restore.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.cts.bufferlib import BufferType
from repro.cts.wirelib import WireType
from repro.geometry.point import Point

__all__ = ["NodeKind", "Sink", "TreeNode", "ClockTree", "TreeValidationError"]

#: Process-global monotonic revision source shared by every ClockTree, so that
#: revisions are unique across clones and independently built trees alike.
_REVISIONS = itertools.count(1)


class TreeValidationError(RuntimeError):
    """Raised by :meth:`ClockTree.validate` when a structural invariant is broken."""


class NodeKind(enum.Enum):
    """Role of a node in the clock tree."""

    SOURCE = "source"
    INTERNAL = "internal"
    SINK = "sink"


@dataclass(frozen=True)
class Sink:
    """A clock sink (flip-flop clock pin or pre-designed block clock port)."""

    name: str
    capacitance: float
    required_polarity: int = 0

    def __post_init__(self) -> None:
        if self.capacitance <= 0.0:
            raise ValueError(f"sink {self.name}: capacitance must be positive")
        if self.required_polarity not in (0, 1):
            raise ValueError(f"sink {self.name}: polarity must be 0 or 1")


@dataclass
class TreeNode:
    """A single clock-tree node together with the edge from its parent.

    Edge attributes (``route``, ``wire_type``, ``snake_length``) describe the
    wire from ``parent`` to this node and are meaningless for the root.
    """

    node_id: int
    position: Point
    kind: NodeKind
    parent: Optional[int] = None
    children: List[int] = field(default_factory=list)
    sink: Optional[Sink] = None
    buffer: Optional[BufferType] = None
    route: List[Point] = field(default_factory=list)
    wire_type: Optional[WireType] = None
    snake_length: float = 0.0

    #: Memoized Manhattan length of ``route``.  All route re-assignments go
    #: through :meth:`replace_route` (or happen before the first
    #: :meth:`route_length` call), which keeps the memo coherent without
    #: intercepting every attribute write.
    _route_length: Optional[float] = field(default=None, repr=False, compare=False)

    def replace_route(self, route: List[Point]) -> None:
        """Replace the edge route and invalidate its memoized length."""
        self.route = route
        self._route_length = None

    @property
    def is_sink(self) -> bool:
        return self.kind is NodeKind.SINK

    @property
    def is_source(self) -> bool:
        return self.kind is NodeKind.SOURCE

    @property
    def has_buffer(self) -> bool:
        return self.buffer is not None

    def route_length(self) -> float:
        """Manhattan length of the routed wire from the parent (without snaking)."""
        cached = self._route_length
        if cached is not None:
            return cached
        if len(self.route) < 2:
            length = 0.0
        else:
            length = sum(a.manhattan_to(b) for a, b in zip(self.route, self.route[1:]))
        self._route_length = length
        return length

    def edge_length(self) -> float:
        """Total electrical wirelength of the parent edge including snaking."""
        return self.route_length() + self.snake_length


class ClockTree:
    """A buffered, routed clock tree.

    Parameters
    ----------
    source_position:
        Location of the clock entry point (usually on the die boundary).
    source_resistance:
        Output resistance of the clock source driver, in ohm.
    default_wire:
        Wire type assigned to edges created without an explicit type.
    """

    def __init__(
        self,
        source_position: Point,
        source_resistance: float = 100.0,
        default_wire: Optional[WireType] = None,
    ) -> None:
        if source_resistance <= 0.0:
            raise ValueError("source resistance must be positive")
        self._nodes: Dict[int, TreeNode] = {}
        self._next_id = 0
        self._default_wire = default_wire
        self.source_resistance = source_resistance
        self._node_revision: Dict[int, int] = {}
        self._structure_revision = next(_REVISIONS)
        self._journal: List[tuple] = []
        self._checkpoints: List[int] = []
        self._journaled: List[set] = []
        self.root_id = self._new_node(source_position, NodeKind.SOURCE, parent=None)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _new_node(
        self, position: Point, kind: NodeKind, parent: Optional[int]
    ) -> int:
        if self._checkpoints:
            self._journal.append(("next_id", self._next_id))
        node_id = self._next_id
        self._next_id += 1
        self._nodes[node_id] = TreeNode(node_id=node_id, position=position, kind=kind, parent=parent)
        self._node_revision[node_id] = next(_REVISIONS)
        if self._checkpoints:
            self._journal.append(("create", node_id))
        return node_id

    # ------------------------------------------------------------------
    # Change tracking
    # ------------------------------------------------------------------
    @property
    def structure_revision(self) -> int:
        """Revision of the tree's topology and buffer-site placement.

        Two trees (or two snapshots of one tree) with equal structure
        revisions have identical node ids, parent/child links and buffer
        sites, hence identical buffer-stage decompositions.
        """
        return self._structure_revision

    def node_revision(self, node_id: int) -> int:
        """Revision of one node's electrical content (see module docstring)."""
        return self._node_revision[node_id]

    @property
    def node_revisions(self) -> Dict[int, int]:
        """The live node-id -> revision mapping (treat as read-only).

        Exposed for bulk consumers (the incremental evaluator builds one
        content key per stage); use :meth:`touch` to record changes, never
        write into this mapping directly.
        """
        return self._node_revision

    def touch(self, node_id: int) -> None:
        """Mark a node's electrical content as changed.

        All :class:`ClockTree` mutators call this automatically; it is public
        for code that edits :class:`TreeNode` attributes directly (e.g.
        bespoke geometry surgery) so that incremental consumers stay sound.
        """
        self._node_revision[node_id] = next(_REVISIONS)

    def touch_structure(self) -> None:
        """Mark the tree topology / buffer-site set as changed."""
        if self._checkpoints:
            self._journal.append(("structure", self._structure_revision))
        self._structure_revision = next(_REVISIONS)

    # ------------------------------------------------------------------
    # Journal-revision checkpoints (transactional snapshots)
    # ------------------------------------------------------------------
    def checkpoint(self) -> int:
        """Open a transaction; returns a token for :meth:`rollback_to`/:meth:`release`.

        While at least one checkpoint is outstanding every mutator journals a
        pre-image of each node it touches (once per node per checkpoint), so
        rolling back costs O(touched nodes) instead of the O(n) of a
        :meth:`clone`-based snapshot.  Checkpoints nest; tokens must be
        consumed in LIFO order.
        """
        token = len(self._journal)
        self._checkpoints.append(token)
        self._journaled.append(set())
        return token

    def rollback_to(self, token: int) -> None:
        """Undo every mutation made since :meth:`checkpoint` returned ``token``.

        Node revisions and the structure revision are restored verbatim, so
        caches keyed by them (the evaluator's stage cache) recognise the
        rolled-back state as already analyzed -- exactly like a
        :meth:`copy_state_from` restore, at O(touched nodes) cost.
        """
        self._pop_checkpoint(token)
        while len(self._journal) > token:
            entry = self._journal.pop()
            kind = entry[0]
            if kind == "node":
                _, node_id, pre_image, revision = entry
                self._nodes[node_id] = pre_image
                self._node_revision[node_id] = revision
            elif kind == "create":
                self._nodes.pop(entry[1], None)
                self._node_revision.pop(entry[1], None)
            elif kind == "structure":
                self._structure_revision = entry[1]
            else:  # "next_id"
                self._next_id = entry[1]

    def release(self, token: int) -> None:
        """Close an accepted transaction opened by :meth:`checkpoint`.

        Journal entries are kept while an enclosing checkpoint is still
        outstanding (it may yet roll back through them) and dropped once the
        last checkpoint closes.
        """
        self._pop_checkpoint(token)
        if not self._checkpoints:
            self._journal.clear()

    def _pop_checkpoint(self, token: int) -> None:
        if not self._checkpoints or self._checkpoints[-1] != token:
            raise ValueError(
                "checkpoint tokens must be rolled back / released in LIFO order"
            )
        self._checkpoints.pop()
        self._journaled.pop()

    def touched_since(self, token: int) -> Set[int]:
        """Node ids journaled since the innermost open checkpoint ``token``.

        This is the dirty-set query used by batched candidate evaluation: the
        caller opens a checkpoint, applies a candidate move, asks which nodes
        the move journaled, and rolls back.  The set over-approximates the
        nodes whose content changed (mutators journal before validating), so
        consumers treating every returned node as dirty stay sound.  Nodes
        *created* since the checkpoint are not included -- creation always
        bumps the structure revision, which callers must check separately.
        """
        if not self._checkpoints or self._checkpoints[-1] != token:
            raise ValueError("touched_since requires the innermost open checkpoint token")
        return set(self._journaled[-1])

    def journal_node(self, node_id: int) -> None:
        """Record a pre-image of ``node_id`` for the innermost open checkpoint.

        All :class:`ClockTree` mutators call this automatically before
        touching a node; it is public for code that edits
        :class:`TreeNode` attributes directly (pair it with :meth:`touch`
        *after* the edit).  No-op when no checkpoint is outstanding or the
        node was already journalled since the innermost checkpoint.
        """
        if not self._checkpoints:
            return
        journaled = self._journaled[-1]
        if node_id in journaled:
            return
        journaled.add(node_id)
        self._journal.append(
            ("node", node_id, _copy_node(self._nodes[node_id]), self._node_revision[node_id])
        )

    def add_internal(
        self,
        parent_id: int,
        position: Point,
        route: Optional[Sequence[Point]] = None,
        wire_type: Optional[WireType] = None,
    ) -> int:
        """Add an internal (branch/steiner/buffer-site) node under ``parent_id``."""
        return self._add_child(parent_id, position, NodeKind.INTERNAL, None, route, wire_type)

    def add_sink(
        self,
        parent_id: int,
        position: Point,
        sink: Sink,
        route: Optional[Sequence[Point]] = None,
        wire_type: Optional[WireType] = None,
    ) -> int:
        """Add a sink leaf under ``parent_id``."""
        return self._add_child(parent_id, position, NodeKind.SINK, sink, route, wire_type)

    def _add_child(
        self,
        parent_id: int,
        position: Point,
        kind: NodeKind,
        sink: Optional[Sink],
        route: Optional[Sequence[Point]],
        wire_type: Optional[WireType],
    ) -> int:
        parent = self.node(parent_id)
        if parent.is_sink:
            raise ValueError(f"cannot attach children to sink node {parent_id}")
        self.journal_node(parent_id)
        node_id = self._new_node(position, kind, parent=parent_id)
        node = self._nodes[node_id]
        node.sink = sink
        node.wire_type = wire_type if wire_type is not None else self._default_wire
        node.route = list(route) if route else [parent.position, position]
        self._check_route(node)
        parent.children.append(node_id)
        self.touch_structure()
        return node_id

    def _check_route(self, node: TreeNode) -> None:
        parent = self.node(node.parent) if node.parent is not None else None
        if parent is None:
            return
        if len(node.route) < 2:
            node.replace_route([parent.position, node.position])
        self._validate_route_endpoints(node, parent, node.route)

    @staticmethod
    def _validate_route_endpoints(
        node: TreeNode, parent: TreeNode, points: Sequence[Point]
    ) -> None:
        if not points[0].is_close(parent.position, tol=1e-6):
            raise ValueError(
                f"edge route of node {node.node_id} must start at the parent position"
            )
        if not points[-1].is_close(node.position, tol=1e-6):
            raise ValueError(
                f"edge route of node {node.node_id} must end at the node position"
            )

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    def node(self, node_id: int) -> TreeNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise KeyError(f"no node with id {node_id}") from None

    @property
    def root(self) -> TreeNode:
        return self._nodes[self.root_id]

    @property
    def default_wire(self) -> Optional[WireType]:
        return self._default_wire

    def nodes(self) -> Iterator[TreeNode]:
        return iter(self._nodes.values())

    def node_ids(self) -> List[int]:
        return list(self._nodes.keys())

    def sinks(self) -> List[TreeNode]:
        """All sink nodes, in insertion order."""
        return [n for n in self._nodes.values() if n.is_sink]

    def buffers(self) -> List[TreeNode]:
        """All nodes carrying a buffer/inverter."""
        return [n for n in self._nodes.values() if n.has_buffer]

    def children_of(self, node_id: int) -> List[TreeNode]:
        return [self._nodes[c] for c in self.node(node_id).children]

    def parent_of(self, node_id: int) -> Optional[TreeNode]:
        parent = self.node(node_id).parent
        return None if parent is None else self._nodes[parent]

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def preorder(self, start: Optional[int] = None) -> Iterator[TreeNode]:
        """Yield nodes top-down (parent before children)."""
        stack = [self.root_id if start is None else start]
        while stack:
            node_id = stack.pop()
            node = self._nodes[node_id]
            yield node
            stack.extend(reversed(node.children))

    def postorder(self, start: Optional[int] = None) -> Iterator[TreeNode]:
        """Yield nodes bottom-up (children before parent)."""
        order: List[int] = []
        stack = [self.root_id if start is None else start]
        while stack:
            node_id = stack.pop()
            order.append(node_id)
            stack.extend(self._nodes[node_id].children)
        for node_id in reversed(order):
            yield self._nodes[node_id]

    def path_to_root(self, node_id: int) -> List[TreeNode]:
        """Return the node list from ``node_id`` up to and including the root."""
        path = []
        current: Optional[int] = node_id
        while current is not None:
            node = self.node(current)
            path.append(node)
            current = node.parent
        return path

    def depth_of(self, node_id: int) -> int:
        return len(self.path_to_root(node_id)) - 1

    def subtree_node_ids(self, node_id: int) -> List[int]:
        return [n.node_id for n in self.preorder(node_id)]

    def subtree_sinks(self, node_id: int) -> List[TreeNode]:
        return [n for n in self.preorder(node_id) if n.is_sink]

    def downstream_sinks_map(self) -> Dict[int, List[int]]:
        """Map every node id to the ids of its downstream sinks (O(n) total via postorder)."""
        result: Dict[int, List[int]] = {}
        for node in self.postorder():
            if node.is_sink:
                result[node.node_id] = [node.node_id]
            else:
                collected: List[int] = []
                for child in node.children:
                    collected.extend(result[child])
                result[node.node_id] = collected
        return result

    # ------------------------------------------------------------------
    # Electrical aggregates
    # ------------------------------------------------------------------
    def edge_capacitance(self, node_id: int) -> float:
        """Capacitance (fF) of the wire on the edge from the parent to ``node_id``."""
        node = self.node(node_id)
        if node.parent is None or node.wire_type is None:
            return 0.0
        return node.wire_type.capacitance(node.edge_length())

    def edge_resistance(self, node_id: int) -> float:
        """Resistance (ohm) of the wire on the edge from the parent to ``node_id``."""
        node = self.node(node_id)
        if node.parent is None or node.wire_type is None:
            return 0.0
        return node.wire_type.resistance(node.edge_length())

    def node_load_capacitance(self, node_id: int) -> float:
        """Local load at a node: sink cap plus buffer input cap, if any."""
        node = self.node(node_id)
        cap = 0.0
        if node.sink is not None:
            cap += node.sink.capacitance
        if node.buffer is not None:
            cap += node.buffer.input_cap
        return cap

    def total_wirelength(self) -> float:
        """Total electrical wirelength (including snaking) in micrometres."""
        return sum(n.edge_length() for n in self._nodes.values() if n.parent is not None)

    def total_wire_capacitance(self) -> float:
        return sum(self.edge_capacitance(n.node_id) for n in self._nodes.values())

    def total_buffer_capacitance(self) -> float:
        """Sum of input+output capacitance over all inserted buffers."""
        return sum(n.buffer.total_cap for n in self._nodes.values() if n.buffer is not None)

    def total_sink_capacitance(self) -> float:
        return sum(n.sink.capacitance for n in self.sinks())

    def total_capacitance(self) -> float:
        """Total switched capacitance: wires + buffers + sinks (the power proxy).

        One fused pass over the node table.  The three components accumulate
        separately and in node-table order, so the result is bit-identical to
        summing :meth:`total_wire_capacitance`, :meth:`total_buffer_capacitance`
        and :meth:`total_sink_capacitance` -- this method sits on the hot path
        of every evaluation, where three separate generator sweeps were a
        measurable fraction of a warm (dirty-region) evaluation.
        """
        wire = 0.0
        buffers = 0.0
        sinks = 0.0
        for node in self._nodes.values():
            if node.parent is not None and node.wire_type is not None:
                wire += node.wire_type.capacitance(node.route_length() + node.snake_length)
            if node.buffer is not None:
                buffers += node.buffer.total_cap
            if node.sink is not None and node.is_sink:
                sinks += node.sink.capacitance
        return wire + buffers + sinks

    def buffer_count(self) -> int:
        return sum(1 for n in self._nodes.values() if n.buffer is not None)

    def sink_count(self) -> int:
        return sum(1 for n in self._nodes.values() if n.is_sink)

    # ------------------------------------------------------------------
    # Polarity
    # ------------------------------------------------------------------
    def node_polarity(self, node_id: int) -> int:
        """Signal polarity at a node: number of inverting buffers above it, mod 2.

        A buffer placed *at* a node inverts the signal seen by the node's
        subtree but not by the node's own sink pin, because the buffer drives
        the downstream wire.  We adopt the convention that a buffer at a node
        affects everything strictly below that node.
        """
        inversions = 0
        for ancestor in self.path_to_root(node_id)[1:]:
            if ancestor.buffer is not None and ancestor.buffer.inverting:
                inversions += 1
        node = self.node(node_id)
        # A buffer co-located with the node itself drives the subtree below;
        # the node's own pin (e.g. a sink) sits at the buffer *input*, so it
        # is not inverted by it.
        del node
        return inversions % 2

    def sink_polarities(self) -> Dict[int, int]:
        """Polarity of every sink, computed in a single O(n) preorder pass.

        A node's pin sees the polarity arriving from its parent; a buffer
        placed at the node only inverts the signal leaving toward children.
        """
        result: Dict[int, int] = {}
        post: Dict[int, int] = {}
        for node in self.preorder():
            incoming = 0 if node.parent is None else post[node.parent]
            if node.is_sink:
                result[node.node_id] = incoming
            outgoing = incoming
            if node.buffer is not None and node.buffer.inverting:
                outgoing = (incoming + 1) % 2
            post[node.node_id] = outgoing
        return result

    def wrong_polarity_sinks(self) -> List[TreeNode]:
        """Sinks whose delivered polarity differs from their required polarity."""
        polarities = self.sink_polarities()
        return [
            n
            for n in self.sinks()
            if polarities[n.node_id] != (n.sink.required_polarity if n.sink else 0)
        ]

    # ------------------------------------------------------------------
    # Mutation helpers for optimization passes
    # ------------------------------------------------------------------
    def place_buffer(self, node_id: int, buffer: BufferType) -> None:
        """Place (or replace) a buffer at a node."""
        node = self.node(node_id)
        self.journal_node(node_id)
        adds_site = node.buffer is None
        node.buffer = buffer
        self.touch(node_id)
        if adds_site:
            # A new buffer site splits a stage in two; replacing the buffer at
            # an existing site keeps the decomposition (consumers read the
            # driving buffer live from the tree, not from cached stages).
            self.touch_structure()

    def remove_buffer(self, node_id: int) -> None:
        node = self.node(node_id)
        if node.buffer is None:
            return
        self.journal_node(node_id)
        node.buffer = None
        self.touch(node_id)
        self.touch_structure()

    def set_wire_type(self, node_id: int, wire: WireType) -> None:
        node = self.node(node_id)
        if node.parent is None:
            raise ValueError("the root has no parent edge to re-type")
        self.journal_node(node_id)
        node.wire_type = wire
        self.touch(node_id)

    def add_snake(self, node_id: int, extra_length: float) -> None:
        """Add snaking wirelength to the edge above ``node_id``."""
        if extra_length < 0.0:
            raise ValueError("snake length increment must be non-negative")
        node = self.node(node_id)
        if node.parent is None:
            raise ValueError("the root has no parent edge to snake")
        self.journal_node(node_id)
        node.snake_length += extra_length
        self.touch(node_id)

    def set_route(self, node_id: int, route: Sequence[Point]) -> None:
        """Replace the routed polyline of the edge above ``node_id``.

        The candidate route is validated *before* the node is modified, so a
        rejected route leaves both the tree and its mutation journal
        untouched.
        """
        node = self.node(node_id)
        if node.parent is None:
            raise ValueError("the root has no parent edge to reroute")
        points = self._validated_route(node, self._nodes[node.parent], route)
        self.journal_node(node_id)
        node.replace_route(points)
        self.touch(node_id)

    def _validated_route(
        self, node: TreeNode, parent: TreeNode, route: Optional[Sequence[Point]]
    ) -> List[Point]:
        """Normalize and validate a candidate parent-edge route without mutating."""
        points = list(route) if route else []
        if len(points) < 2:
            points = [parent.position, node.position]
        self._validate_route_endpoints(node, parent, points)
        return points

    def move_node(self, node_id: int, position: Point) -> None:
        """Move a non-root node, restoring direct routes to its neighbours.

        The parent edge and every child edge are reset to two-point routes
        through the new position; callers needing bends should follow up with
        :meth:`set_route`.
        """
        node = self.node(node_id)
        if node.parent is None:
            raise ValueError("the root (clock entry point) cannot be moved")
        self.journal_node(node_id)
        node.position = position
        parent = self._nodes[node.parent]
        node.replace_route([parent.position, position])
        self.touch(node_id)
        for child_id in node.children:
            child = self._nodes[child_id]
            self.journal_node(child_id)
            child.replace_route([position, child.position])
            self.touch(child_id)

    def detach_subtree(self, node_id: int) -> None:
        """Unlink ``node_id`` (and its subtree) from its parent.

        The nodes stay in the tree's node table so they can be re-attached
        with :meth:`attach_subtree`; until then :meth:`validate` reports them
        as orphans.
        """
        node = self.node(node_id)
        if node.parent is None:
            raise ValueError("cannot detach the root")
        self.journal_node(node.parent)
        self.journal_node(node_id)
        self._nodes[node.parent].children.remove(node_id)
        node.parent = None
        self.touch_structure()

    def attach_subtree(
        self,
        node_id: int,
        parent_id: int,
        wire_type: Optional[WireType] = None,
        route: Optional[Sequence[Point]] = None,
    ) -> None:
        """Re-attach a detached subtree under ``parent_id``.

        The new parent edge gets a direct two-point route (or ``route``), the
        given ``wire_type`` (or the node's existing one / the tree default)
        and no snaking.
        """
        node = self.node(node_id)
        if node.parent is not None:
            raise ValueError(f"node {node_id} is still attached; detach it first")
        parent = self.node(parent_id)
        if parent.is_sink:
            raise ValueError(f"cannot attach children to sink node {parent_id}")
        # Validate the candidate route first so a rejected attach leaves the
        # node cleanly detached instead of half-linked.
        points = self._validated_route(node, parent, route)
        self.journal_node(node_id)
        self.journal_node(parent_id)
        node.parent = parent_id
        if wire_type is not None:
            node.wire_type = wire_type
        elif node.wire_type is None:
            node.wire_type = self._default_wire
        node.replace_route(points)
        node.snake_length = 0.0
        parent.children.append(node_id)
        self.touch(node_id)
        self.touch_structure()

    def remove_subtree(self, node_id: int) -> List[int]:
        """Detach and delete ``node_id`` and everything below it.

        Returns the deleted node ids.  Sinks that must survive a structural
        rewrite (e.g. obstacle contour detouring) should be detached with
        :meth:`detach_subtree` first and re-attached with
        :meth:`attach_subtree` afterwards.
        """
        node = self.node(node_id)
        if node_id == self.root_id:
            raise ValueError("cannot remove the root (clock entry point)")
        # Journal every pre-image before the first mutation: the subtree root
        # must be captured while it still points at its parent, or a rollback
        # would resurrect it half-detached.
        removed = [n.node_id for n in self.preorder(node_id)]
        for removed_id in removed:
            self.journal_node(removed_id)
        if node.parent is not None:
            self.journal_node(node.parent)
            self._nodes[node.parent].children.remove(node_id)
            node.parent = None
        for removed_id in removed:
            del self._nodes[removed_id]
            del self._node_revision[removed_id]
        self.touch_structure()
        return removed

    def split_edge(self, node_id: int, fraction: float) -> int:
        """Insert an internal node on the edge above ``node_id``.

        ``fraction`` is measured along the routed wire from the parent
        (0 < fraction < 1).  The new node becomes the parent of ``node_id``;
        route, wire type and snaking are divided proportionally.  Returns the
        new node's id.  This is the primitive used by buffer insertion and by
        buffer sliding.
        """
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be strictly between 0 and 1, got {fraction}")
        node = self.node(node_id)
        if node.parent is None:
            raise ValueError("cannot split above the root")
        parent = self.node(node.parent)
        self.journal_node(node_id)
        self.journal_node(parent.node_id)

        split_point, upper_route, lower_route = _split_route(node.route, fraction)
        new_id = self._new_node(split_point, NodeKind.INTERNAL, parent=parent.node_id)
        new_node = self._nodes[new_id]
        new_node.wire_type = node.wire_type
        new_node.route = upper_route
        new_node.snake_length = node.snake_length * fraction
        new_node.children = [node_id]

        parent.children[parent.children.index(node_id)] = new_id
        node.parent = new_id
        node.replace_route(lower_route)
        node.snake_length = node.snake_length * (1.0 - fraction)
        self.touch(node_id)
        self.touch_structure()
        return new_id

    def clone(self) -> "ClockTree":
        """Copy the tree (used to snapshot solutions before risky edits).

        Node shells and their mutable lists are copied; the immutable payloads
        (:class:`~repro.geometry.point.Point`, :class:`Sink`,
        :class:`~repro.cts.bufferlib.BufferType`,
        :class:`~repro.cts.wirelib.WireType`) are shared, which makes
        snapshotting roughly an order of magnitude cheaper than a generic
        ``copy.deepcopy`` -- snapshots sit on the hot path of every
        Improvement- & Violation-Checking round.  Revisions are copied
        verbatim: the clone has identical content, so it shares cache
        identity until either tree is edited.
        """
        twin = ClockTree.__new__(ClockTree)
        twin._nodes = {node_id: _copy_node(node) for node_id, node in self._nodes.items()}
        twin._next_id = self._next_id
        twin._default_wire = self._default_wire
        twin.source_resistance = self.source_resistance
        twin.root_id = self.root_id
        twin._node_revision = dict(self._node_revision)
        twin._structure_revision = self._structure_revision
        # Checkpoints do not transfer: the clone starts transaction-free.
        twin._journal = []
        twin._checkpoints = []
        twin._journaled = []
        return twin

    def copy_state_from(self, other: "ClockTree") -> None:
        """Restore this tree's state from a snapshot produced by :meth:`clone`.

        Optimization passes mutate the tree in place and call this to roll
        back when an evaluation shows a regression or a slew violation, so
        that callers holding a reference to the tree keep seeing the accepted
        solution.  Revisions are restored along with the content, so caches
        keyed by them recognise the rolled-back state as already analyzed.

        Any outstanding :meth:`checkpoint` transactions are voided: the whole
        state is replaced, so their journals no longer apply.
        """
        self._journal = []
        self._checkpoints = []
        self._journaled = []
        self._nodes = {node_id: _copy_node(node) for node_id, node in other._nodes.items()}
        self._next_id = other._next_id
        self._default_wire = other._default_wire
        self.source_resistance = other.source_resistance
        self.root_id = other.root_id
        self._node_revision = dict(other._node_revision)
        self._structure_revision = other._structure_revision

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`TreeValidationError` on failure."""
        seen = set()
        for node in self.preorder():
            if node.node_id in seen:
                raise TreeValidationError(f"node {node.node_id} reachable twice (cycle)")
            seen.add(node.node_id)
        if seen != set(self._nodes.keys()):
            orphans = set(self._nodes.keys()) - seen
            raise TreeValidationError(f"orphan nodes not reachable from root: {sorted(orphans)}")
        for node in self._nodes.values():
            if node.parent is None:
                if node.node_id != self.root_id:
                    raise TreeValidationError(f"non-root node {node.node_id} has no parent")
                continue
            parent = self._nodes.get(node.parent)
            if parent is None or node.node_id not in parent.children:
                raise TreeValidationError(
                    f"parent/child link broken between {node.parent} and {node.node_id}"
                )
            if node.wire_type is None:
                raise TreeValidationError(f"edge above node {node.node_id} has no wire type")
            if node.snake_length < 0.0:
                raise TreeValidationError(f"negative snake length at node {node.node_id}")
            self._check_route(node)
            if node.is_sink and node.sink is None:
                raise TreeValidationError(f"sink node {node.node_id} has no sink record")
            if node.is_sink and node.children:
                raise TreeValidationError(f"sink node {node.node_id} has children")

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """Small numeric summary used by reports and logs."""
        return {
            "nodes": float(len(self._nodes)),
            "sinks": float(self.sink_count()),
            "buffers": float(self.buffer_count()),
            "wirelength_um": self.total_wirelength(),
            "total_capacitance_fF": self.total_capacitance(),
        }


def _copy_node(node: TreeNode) -> TreeNode:
    """Copy a node shell, sharing its immutable payload objects.

    Bypasses the dataclass constructor (snapshots sit on the hot path of
    every optimization round); only the two mutable lists are copied, all
    frozen payloads (Point, Sink, BufferType, WireType) are shared.
    """
    twin = TreeNode.__new__(TreeNode)
    state = twin.__dict__
    state.update(node.__dict__)
    state["children"] = node.children.copy()
    state["route"] = node.route.copy()
    return twin


def _split_route(
    route: Sequence[Point], fraction: float
) -> Tuple[Point, List[Point], List[Point]]:
    """Split a polyline route at a fractional position along its length."""
    points = list(route)
    total = sum(a.manhattan_to(b) for a, b in zip(points, points[1:]))
    if total <= 0.0:
        # Degenerate (zero-length) edge: split at the shared point.
        return points[0], [points[0], points[0]], [points[0], points[-1]]
    target = total * fraction
    walked = 0.0
    for i, (a, b) in enumerate(zip(points, points[1:])):
        seg_len = a.manhattan_to(b)
        if walked + seg_len >= target - 1e-12 and seg_len > 0.0:
            t = (target - walked) / seg_len
            split = Point(a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t)
            upper = points[: i + 1] + [split]
            lower = [split] + points[i + 1 :]
            return split, upper, lower
        walked += seg_len
    split = points[-1]
    return split, list(points), [split, points[-1]]
