"""Clock-tree topology generation (abstract sink-pairing trees).

DME separates *topology* (which sinks are merged together, bottom-up) from
*embedding* (where the merge points are placed).  This module produces the
binary merge topology.  Two generators are provided:

* :func:`recursive_bisection_topology` -- top-down balanced geometric
  partitioning with alternating cut direction (the method used for the
  initial trees in the paper's flow: it keeps the number of tree levels, and
  therefore the number of buffers on every root-to-sink path, balanced);
* :func:`nearest_neighbor_topology` -- bottom-up greedy pairing of nearest
  clusters in the spirit of Edahiro's clustering, which yields slightly
  shorter trees on strongly clustered sink distributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.geometry.point import Point

__all__ = [
    "SinkInstance",
    "TopologyNode",
    "Topology",
    "recursive_bisection_topology",
    "nearest_neighbor_topology",
    "build_topology",
]


@dataclass(frozen=True)
class SinkInstance:
    """A clock sink as seen by tree construction."""

    name: str
    position: Point
    capacitance: float
    required_polarity: int = 0

    def __post_init__(self) -> None:
        if self.capacitance <= 0.0:
            raise ValueError(f"sink {self.name}: capacitance must be positive")


@dataclass
class TopologyNode:
    """A node of the abstract merge tree."""

    index: int
    left: Optional[int] = None
    right: Optional[int] = None
    sink_index: Optional[int] = None

    @property
    def is_leaf(self) -> bool:
        return self.sink_index is not None

    @property
    def children(self) -> List[int]:
        return [c for c in (self.left, self.right) if c is not None]


@dataclass
class Topology:
    """A binary merge topology over a list of sinks."""

    nodes: List[TopologyNode] = field(default_factory=list)
    root_index: int = -1

    def node(self, index: int) -> TopologyNode:
        return self.nodes[index]

    @property
    def root(self) -> TopologyNode:
        return self.nodes[self.root_index]

    def leaves(self) -> List[TopologyNode]:
        return [n for n in self.nodes if n.is_leaf]

    def postorder(self) -> Iterator[TopologyNode]:
        """Yield nodes children-first."""
        order: List[int] = []
        stack = [self.root_index]
        while stack:
            idx = stack.pop()
            order.append(idx)
            stack.extend(self.nodes[idx].children)
        for idx in reversed(order):
            yield self.nodes[idx]

    def depth(self) -> int:
        """Length (in edges) of the longest root-to-leaf path."""
        depths: Dict[int, int] = {}
        result = 0
        for node in self.postorder():
            if node.is_leaf:
                depths[node.index] = 0
            else:
                depths[node.index] = 1 + max(depths[c] for c in node.children)
            result = max(result, depths[node.index])
        return result

    def validate(self, sink_count: int) -> None:
        """Check that every sink appears exactly once as a leaf."""
        seen = sorted(n.sink_index for n in self.leaves())
        if seen != list(range(sink_count)):
            raise ValueError(
                f"topology leaves {seen} do not cover sinks 0..{sink_count - 1}"
            )

    def _new_leaf(self, sink_index: int) -> int:
        idx = len(self.nodes)
        self.nodes.append(TopologyNode(index=idx, sink_index=sink_index))
        return idx

    def _new_internal(self, left: int, right: int) -> int:
        idx = len(self.nodes)
        self.nodes.append(TopologyNode(index=idx, left=left, right=right))
        return idx


def recursive_bisection_topology(sinks: Sequence[SinkInstance]) -> Topology:
    """Build a balanced topology by alternating-direction geometric bisection.

    The sink set is split into two equal halves by the median of the longer
    bounding-box dimension; recursion alternates naturally because each split
    re-measures its own bounding box.  The result is a near-perfectly balanced
    binary tree, which keeps buffer counts per path equal after van Ginneken
    insertion -- the property Section IV-C of the paper relies on.
    """
    if not sinks:
        raise ValueError("cannot build a topology over zero sinks")
    topo = Topology()
    indices = list(range(len(sinks)))
    topo.root_index = _bisect(topo, sinks, indices)
    topo.validate(len(sinks))
    return topo


def _bisect(topo: Topology, sinks: Sequence[SinkInstance], indices: List[int]) -> int:
    if len(indices) == 1:
        return topo._new_leaf(indices[0])
    xs = [sinks[i].position.x for i in indices]
    ys = [sinks[i].position.y for i in indices]
    span_x = max(xs) - min(xs)
    span_y = max(ys) - min(ys)
    if span_x >= span_y:
        ordered = sorted(indices, key=lambda i: (sinks[i].position.x, sinks[i].position.y))
    else:
        ordered = sorted(indices, key=lambda i: (sinks[i].position.y, sinks[i].position.x))
    half = len(ordered) // 2
    left = _bisect(topo, sinks, ordered[:half])
    right = _bisect(topo, sinks, ordered[half:])
    return topo._new_internal(left, right)


def nearest_neighbor_topology(sinks: Sequence[SinkInstance]) -> Topology:
    """Build a topology by greedy pairing of nearest clusters (Edahiro-style).

    At every round the currently active clusters are paired greedily by
    increasing Manhattan distance between cluster centroids; an odd cluster is
    carried to the next round.  The procedure runs in O(n^2 log n) overall,
    which is perfectly adequate for the contest-scale benchmarks; the
    bisection topology is preferred for the 10K+ sink scalability runs.
    """
    if not sinks:
        raise ValueError("cannot build a topology over zero sinks")
    topo = Topology()
    # Each cluster is (topology node index, centroid, weight).
    clusters: List[tuple] = [
        (topo._new_leaf(i), sinks[i].position, 1) for i in range(len(sinks))
    ]
    while len(clusters) > 1:
        pairs = []
        for i in range(len(clusters)):
            for j in range(i + 1, len(clusters)):
                dist = clusters[i][1].manhattan_to(clusters[j][1])
                pairs.append((dist, i, j))
        pairs.sort(key=lambda item: item[0])
        used = set()
        next_round: List[tuple] = []
        for _, i, j in pairs:
            if i in used or j in used:
                continue
            used.add(i)
            used.add(j)
            node_i, centroid_i, weight_i = clusters[i]
            node_j, centroid_j, weight_j = clusters[j]
            merged = topo._new_internal(node_i, node_j)
            total = weight_i + weight_j
            centroid = Point(
                (centroid_i.x * weight_i + centroid_j.x * weight_j) / total,
                (centroid_i.y * weight_i + centroid_j.y * weight_j) / total,
            )
            next_round.append((merged, centroid, total))
        for k, cluster in enumerate(clusters):
            if k not in used:
                next_round.append(cluster)
        clusters = next_round
    topo.root_index = clusters[0][0]
    topo.validate(len(sinks))
    return topo


def build_topology(sinks: Sequence[SinkInstance], method: str = "bisection") -> Topology:
    """Dispatch on the topology generation method (``"bisection"`` or ``"greedy"``)."""
    if method == "bisection":
        return recursive_bisection_topology(sinks)
    if method == "greedy":
        return nearest_neighbor_topology(sinks)
    raise ValueError(f"unknown topology method {method!r}")
