"""Clock-tree construction substrate: data model, libraries, topology, DME.

This package contains everything needed to go from a list of sinks and
obstacles to an initial routed (but not yet optimized) clock tree:

* :mod:`repro.cts.tree` -- the mutable :class:`ClockTree` data model,
* :mod:`repro.cts.wirelib` / :mod:`repro.cts.bufferlib` -- technology data,
* :mod:`repro.cts.topology` -- sink-pairing topology generation,
* :mod:`repro.cts.dme` -- zero-skew deferred-merge embedding,
* :mod:`repro.cts.bst` -- the bounded-skew generalization,
* :mod:`repro.cts.obstacle_avoid` -- obstacle-violation repair and detouring.
"""

from repro.cts.tree import ClockTree, NodeKind, Sink, TreeNode, TreeValidationError
from repro.cts.wirelib import WireLibrary, WireType, ispd09_wire_library
from repro.cts.bufferlib import (
    BufferLibrary,
    BufferType,
    ISPD09_LARGE_INVERTER,
    ISPD09_SMALL_INVERTER,
    ispd09_buffer_library,
)

__all__ = [
    "ClockTree",
    "NodeKind",
    "Sink",
    "TreeNode",
    "TreeValidationError",
    "WireLibrary",
    "WireType",
    "ispd09_wire_library",
    "BufferLibrary",
    "BufferType",
    "ISPD09_LARGE_INVERTER",
    "ISPD09_SMALL_INVERTER",
    "ispd09_buffer_library",
]
