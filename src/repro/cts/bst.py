"""Bounded-skew tree construction (BST/DME generalization).

The zero-skew builder spends extra wire (detours) whenever the two subtrees
being merged cannot be balanced exactly within their spanning distance.  The
bounded-skew variant implemented here accepts any merge whose resulting
subtree skew -- the spread between its fastest and slowest sink under Elmore
delay -- stays within a user-given bound, and only detours by the amount
needed to bring the spread back to the bound otherwise.  This trades a small,
controlled amount of skew for wirelength (and therefore power), which is the
classic BST/DME trade-off the paper discusses in its background section.

The implementation deliberately reuses the zero-skew machinery: with
``skew_bound=0`` it reduces exactly to :class:`repro.cts.dme.ZeroSkewTreeBuilder`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.cts.dme import MergeRecord, ZeroSkewTreeBuilder
from repro.cts.topology import SinkInstance, Topology
from repro.cts.tree import ClockTree
from repro.cts.wirelib import WireType
from repro.geometry.obstacles import ObstacleSet
from repro.geometry.point import Point
from repro.geometry.trr import ManhattanArc, merging_segment

__all__ = ["BoundedSkewRecord", "BoundedSkewTreeBuilder", "build_bounded_skew_tree"]


@dataclass
class BoundedSkewRecord(MergeRecord):
    """Merge record extended with the subtree's fastest-sink delay."""

    subtree_min_delay: float = 0.0

    @property
    def internal_skew(self) -> float:
        """Spread between the slowest and fastest sink of the subtree (ps)."""
        return self.subtree_delay - self.subtree_min_delay


class BoundedSkewTreeBuilder(ZeroSkewTreeBuilder):
    """Build trees whose Elmore skew is bounded by ``skew_bound`` picoseconds."""

    def __init__(
        self,
        wire: WireType,
        skew_bound: float,
        topology_method: str = "bisection",
        obstacles: Optional[ObstacleSet] = None,
    ) -> None:
        super().__init__(wire, topology_method=topology_method, obstacles=obstacles)
        if skew_bound < 0.0:
            raise ValueError("skew bound must be non-negative")
        self.skew_bound = skew_bound

    # ------------------------------------------------------------------
    def _leaf_record(self, sink: SinkInstance) -> BoundedSkewRecord:
        return BoundedSkewRecord(
            arc=ManhattanArc.from_point(sink.position),
            subtree_capacitance=sink.capacitance,
            subtree_delay=0.0,
            subtree_min_delay=0.0,
        )

    def _merge(self, left: MergeRecord, right: MergeRecord) -> BoundedSkewRecord:
        assert isinstance(left, BoundedSkewRecord) and isinstance(right, BoundedSkewRecord)
        distance = left.arc.distance_to_arc(right.arc)
        # Exact zero-skew split of the *maximum* delays.
        length_left, length_right = self._balanced_lengths(left, right, distance)

        if length_left > distance or length_right > distance:
            # Balancing needs a detour.  Shrink (or drop) the detour as long
            # as the merged subtree's skew stays within the bound.
            length_left, length_right = self._relax_detour(
                left, right, distance, length_left, length_right
            )

        radius_left = max(length_left, 0.0)
        radius_right = max(length_right, 0.0)
        if radius_left + radius_right < distance:
            if radius_left <= radius_right:
                radius_right = distance - radius_left
            else:
                radius_left = distance - radius_right
        arc = merging_segment(left.arc, right.arc, radius_left, radius_right)

        max_left = left.subtree_delay + self._wire_delay(length_left, left.subtree_capacitance)
        max_right = right.subtree_delay + self._wire_delay(length_right, right.subtree_capacitance)
        min_left = left.subtree_min_delay + self._wire_delay(length_left, left.subtree_capacitance)
        min_right = right.subtree_min_delay + self._wire_delay(length_right, right.subtree_capacitance)
        capacitance = (
            left.subtree_capacitance
            + right.subtree_capacitance
            + self.wire.unit_capacitance * (length_left + length_right)
        )
        return BoundedSkewRecord(
            arc=arc,
            subtree_capacitance=capacitance,
            subtree_delay=max(max_left, max_right),
            subtree_min_delay=min(min_left, min_right),
            edge_length_left=length_left,
            edge_length_right=length_right,
        )

    def _relax_detour(
        self,
        left: BoundedSkewRecord,
        right: BoundedSkewRecord,
        distance: float,
        length_left: float,
        length_right: float,
    ) -> tuple:
        """Shrink a detour so the merged skew just meets the bound."""
        if length_left > distance:
            detoured = "left"
            slow, fast = right, left
        else:
            detoured = "right"
            slow, fast = left, right
        # Dropping the detour entirely gives the fast (detoured) child the full
        # spanning distance and the slow child zero wire.
        fast_wire_full = self._wire_delay(distance, fast.subtree_capacitance)
        merged_max = max(slow.subtree_delay, fast.subtree_delay + fast_wire_full)
        merged_min = min(slow.subtree_min_delay, fast.subtree_min_delay + fast_wire_full)
        if merged_max - merged_min <= self.skew_bound:
            # No detour needed at all.
            if detoured == "left":
                return distance, 0.0
            return 0.0, distance
        # Otherwise detour only enough that the skew equals the bound: the
        # fast subtree's *fastest* sink must come within ``bound`` of the slow
        # subtree's slowest sink.
        gap = (slow.subtree_delay - self.skew_bound) - fast.subtree_min_delay
        extra = self._detour_length(
            max(gap - fast_wire_full, 0.0),
            fast.subtree_capacitance + self.wire.unit_capacitance * distance,
        )
        if detoured == "left":
            return distance + extra, 0.0
        return 0.0, distance + extra

    def build(
        self,
        sinks: Sequence[SinkInstance],
        source_position: Point,
        source_resistance: float = 100.0,
        topology: Optional[Topology] = None,
    ) -> ClockTree:
        return super().build(
            sinks,
            source_position,
            source_resistance=source_resistance,
            topology=topology,
        )


def build_bounded_skew_tree(
    sinks: Sequence[SinkInstance],
    source_position: Point,
    wire: WireType,
    skew_bound: float,
    source_resistance: float = 100.0,
    topology_method: str = "bisection",
    obstacles: Optional[ObstacleSet] = None,
) -> ClockTree:
    """Convenience wrapper around :class:`BoundedSkewTreeBuilder`."""
    builder = BoundedSkewTreeBuilder(
        wire=wire,
        skew_bound=skew_bound,
        topology_method=topology_method,
        obstacles=obstacles,
    )
    return builder.build(sinks, source_position, source_resistance=source_resistance)
