"""Problem-instance description consumed by synthesis flows and baselines.

A :class:`ClockNetworkInstance` bundles everything a clock-network synthesis
run needs: the die outline, the clock source, the sinks, the placement
obstacles, the wire/buffer libraries, and the contest-style limits (total
capacitance and maximum slew).  Benchmark generators in
:mod:`repro.workloads` produce these instances; :class:`repro.core.ContangoFlow`
and the baseline flows consume them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cts.bufferlib import BufferLibrary, ispd09_buffer_library
from repro.cts.topology import SinkInstance
from repro.cts.wirelib import WireLibrary, ispd09_wire_library
from repro.geometry.obstacles import ObstacleSet
from repro.geometry.point import Point
from repro.geometry.rect import Rect

__all__ = ["ClockNetworkInstance"]


@dataclass
class ClockNetworkInstance:
    """One clock-network synthesis problem."""

    name: str
    die: Rect
    source: Point
    sinks: List[SinkInstance]
    obstacles: ObstacleSet = field(default_factory=ObstacleSet)
    wire_library: WireLibrary = field(default_factory=ispd09_wire_library)
    buffer_library: BufferLibrary = field(default_factory=ispd09_buffer_library)
    source_resistance: float = 100.0
    capacitance_limit: Optional[float] = None
    slew_limit: float = 100.0

    @property
    def sink_count(self) -> int:
        return len(self.sinks)

    def total_sink_capacitance(self) -> float:
        return sum(s.capacitance for s in self.sinks)

    def validate(self) -> None:
        """Check basic consistency of the instance."""
        if not self.sinks:
            raise ValueError(f"instance {self.name}: no sinks")
        names = [s.name for s in self.sinks]
        if len(set(names)) != len(names):
            raise ValueError(f"instance {self.name}: duplicate sink names")
        if not self.die.contains_point(self.source):
            raise ValueError(f"instance {self.name}: clock source outside the die")
        for sink in self.sinks:
            if not self.die.contains_point(sink.position):
                raise ValueError(
                    f"instance {self.name}: sink {sink.name} outside the die"
                )
        for obstacle in self.obstacles:
            if not self.die.contains_rect(obstacle.rect):
                raise ValueError(
                    f"instance {self.name}: obstacle {obstacle.name} outside the die"
                )
        if self.source_resistance <= 0.0:
            raise ValueError(f"instance {self.name}: source resistance must be positive")
        if self.slew_limit <= 0.0:
            raise ValueError(f"instance {self.name}: slew limit must be positive")
        if self.capacitance_limit is not None and self.capacitance_limit <= 0.0:
            raise ValueError(f"instance {self.name}: capacitance limit must be positive")
