"""Texas Instruments-style scalability benchmarks (Table V of the paper).

The paper's scalability study starts from a 4.2 mm x 3.0 mm TI chip with
135 K identified sink locations and randomly samples families of 200 to
50 000 sinks.  The real placement is proprietary, so this generator builds a
synthetic stand-in with the same structure: flip-flops arranged in dense
placement rows grouped into register clusters across a 4.2 x 3.0 mm die, from
which the requested number of sinks is sampled uniformly at random.  Only the
sink count and spatial distribution matter for the scaling trends reported in
Table V (capacitance linear in sink count, skew staying in single-digit
picoseconds, slowly growing evaluation counts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.seeding import derive_rng

from repro.cts.bufferlib import ispd09_buffer_library
from repro.cts.spec import ClockNetworkInstance
from repro.cts.topology import SinkInstance
from repro.cts.wirelib import ispd09_wire_library
from repro.geometry.obstacles import ObstacleSet
from repro.geometry.point import Point
from repro.geometry.rect import Rect

__all__ = ["TIBenchmarkSpec", "TI_SINK_COUNTS", "generate_ti_benchmark"]


TI_SINK_COUNTS = [200, 500, 1000, 2000, 5000, 10000, 20000, 50000]
"""The sink-count family reported in Table V."""


@dataclass(frozen=True)
class TIBenchmarkSpec:
    """Generation parameters of a TI-style scalability benchmark."""

    sink_count: int
    seed: int = 7
    die_width: float = 4200.0
    die_height: float = 3000.0
    row_pitch: float = 10.0
    cluster_count: int = 60
    sink_cap_range: tuple = (4.0, 15.0)
    slew_limit: float = 100.0
    source_resistance: float = 60.0
    capacitance_limit: Optional[float] = None

    def __post_init__(self) -> None:
        if self.sink_count < 1:
            raise ValueError("sink_count must be positive")


def generate_ti_benchmark(
    sink_count: int, seed: int = 7, spec: Optional[TIBenchmarkSpec] = None
) -> ClockNetworkInstance:
    """Generate a TI-style instance with ``sink_count`` sampled sinks."""
    spec = spec or TIBenchmarkSpec(sink_count=sink_count, seed=seed)
    # The (seed, sink_count) pair *defines* the benchmark instance, so both
    # feed the seed derivation: repro.seeding mixes them through a
    # SeedSequence (no ad-hoc seed arithmetic), and the generated-instance
    # fingerprints are pinned by tests/golden/instance_fingerprints.json.
    # Stochastic *evaluation* (Monte Carlo sampling, gates) derives from
    # different keys, so changing an evaluation seed can never silently
    # change the instance under test.
    rng = derive_rng(spec.seed, "ti", spec.sink_count)
    die = Rect(0.0, 0.0, spec.die_width, spec.die_height)

    # Register clusters: each cluster is a small block of placement rows.
    clusters = []
    for _ in range(spec.cluster_count):
        cx = float(rng.uniform(0.05 * spec.die_width, 0.95 * spec.die_width))
        cy = float(rng.uniform(0.05 * spec.die_height, 0.95 * spec.die_height))
        width = float(rng.uniform(0.03, 0.12)) * spec.die_width
        height = float(rng.uniform(0.03, 0.12)) * spec.die_height
        clusters.append((cx, cy, width, height))

    sinks: List[SinkInstance] = []
    for index in range(spec.sink_count):
        if float(rng.random()) < 0.75:
            cx, cy, width, height = clusters[int(rng.integers(len(clusters)))]
            x = min(max(cx + float(rng.uniform(-width, width)) / 2.0, die.xlo), die.xhi)
            raw_y = cy + float(rng.uniform(-height, height)) / 2.0
        else:
            x = float(rng.uniform(die.xlo, die.xhi))
            raw_y = float(rng.uniform(die.ylo, die.yhi))
        # Snap to the placement-row grid, like standard-cell flip-flops.
        y = min(max(round(raw_y / spec.row_pitch) * spec.row_pitch, die.ylo), die.yhi)
        sinks.append(
            SinkInstance(
                name=f"ff_{index}",
                position=Point(x, y),
                capacitance=float(rng.uniform(*spec.sink_cap_range)),
            )
        )

    instance = ClockNetworkInstance(
        name=f"ti_{spec.sink_count}",
        die=die,
        source=Point(0.0, spec.die_height / 2.0),
        sinks=sinks,
        obstacles=ObstacleSet(),
        wire_library=ispd09_wire_library(),
        buffer_library=ispd09_buffer_library(),
        source_resistance=spec.source_resistance,
        capacitance_limit=spec.capacitance_limit,
        slew_limit=spec.slew_limit,
    )
    instance.validate()
    return instance
