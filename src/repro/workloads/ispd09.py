"""Synthetic ISPD'09 CNS-style benchmarks (the seven chips of the contest).

The real contest files are not available offline, so each benchmark is
regenerated from a compact spec that mirrors the published characteristics:
45 nm chips up to 17 mm x 17 mm, up to 330 selected clock sinks, rectangular
placement blockages over which wires may route but buffers may not be placed,
a two-inverter / two-wire library (Table I), a 100 ps slew limit and a total
capacitance budget.  Sink locations mix uniformly scattered flip-flops with a
few dense clusters (register banks) and a handful of macro clock pins placed
on blockages, which is the sink structure the contest chips exhibit.

All generation is deterministic given the spec's seed: the random stream is a
:mod:`repro.seeding` generator derived from ``(seed, "ispd09")``, the same
derivation the scenario families use, so generated-instance fingerprints are
pinned by ``tests/golden/instance_fingerprints.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

import numpy as np

from repro.cts.bufferlib import ispd09_buffer_library
from repro.cts.spec import ClockNetworkInstance
from repro.cts.topology import SinkInstance
from repro.cts.wirelib import ispd09_wire_library
from repro.geometry.obstacles import Obstacle, ObstacleSet
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.seeding import derive_rng

__all__ = [
    "ISPD09BenchmarkSpec",
    "ISPD09_BENCHMARKS",
    "generate_ispd09_benchmark",
    "generate_all_ispd09_benchmarks",
    "capacitance_budget",
]


@dataclass(frozen=True)
class ISPD09BenchmarkSpec:
    """Generation parameters of one ISPD'09-style benchmark."""

    name: str
    die_width: float
    die_height: float
    sink_count: int
    obstacle_count: int
    seed: int
    cluster_fraction: float = 0.45
    macro_sink_count: int = 4
    sink_cap_range: tuple = (20.0, 80.0)
    macro_cap_range: tuple = (150.0, 300.0)
    cap_limit_factor: float = 2.2
    slew_limit: float = 100.0
    source_resistance: float = 80.0

    def scaled(self, sink_scale: float) -> "ISPD09BenchmarkSpec":
        """Return a spec with proportionally fewer sinks (for quick test runs)."""
        if not 0.0 < sink_scale <= 1.0:
            raise ValueError("sink_scale must be in (0, 1]")
        return replace(
            self,
            sink_count=max(4, int(self.sink_count * sink_scale)),
            macro_sink_count=min(self.macro_sink_count, max(1, int(self.macro_sink_count * sink_scale))),
            obstacle_count=max(2, int(self.obstacle_count * sink_scale)),
        )


ISPD09_BENCHMARKS: Dict[str, ISPD09BenchmarkSpec] = {
    spec.name: spec
    for spec in [
        ISPD09BenchmarkSpec("ispd09f11", 11000.0, 11000.0, 121, 18, seed=911),
        ISPD09BenchmarkSpec("ispd09f12", 11000.0, 11000.0, 117, 16, seed=912),
        ISPD09BenchmarkSpec("ispd09f21", 13000.0, 13000.0, 117, 22, seed=921),
        ISPD09BenchmarkSpec("ispd09f22", 8000.0, 8000.0, 91, 12, seed=922),
        ISPD09BenchmarkSpec("ispd09f31", 17000.0, 17000.0, 273, 28, seed=931),
        ISPD09BenchmarkSpec("ispd09f32", 14000.0, 14000.0, 190, 24, seed=932),
        ISPD09BenchmarkSpec("ispd09fnb1", 4500.0, 2500.0, 330, 8, seed=941),
    ]
}


def generate_ispd09_benchmark(
    name_or_spec, sink_scale: Optional[float] = None
) -> ClockNetworkInstance:
    """Generate the named benchmark (or one from an explicit spec).

    ``sink_scale`` optionally shrinks the instance (fewer sinks/obstacles) for
    fast unit tests while preserving the spatial structure.
    """
    if isinstance(name_or_spec, ISPD09BenchmarkSpec):
        spec = name_or_spec
    else:
        try:
            spec = ISPD09_BENCHMARKS[name_or_spec]
        except KeyError:
            raise KeyError(
                f"unknown ISPD'09 benchmark {name_or_spec!r}; "
                f"available: {sorted(ISPD09_BENCHMARKS)}"
            ) from None
    if sink_scale is not None:
        spec = spec.scaled(sink_scale)

    rng = derive_rng(spec.seed, "ispd09")
    die = Rect(0.0, 0.0, spec.die_width, spec.die_height)
    obstacles = _generate_obstacles(rng, die, spec.obstacle_count)
    sinks = _generate_sinks(rng, die, obstacles, spec)
    source = Point(spec.die_width / 2.0, 0.0)
    cap_limit = capacitance_budget(die, sinks, spec.cap_limit_factor)

    instance = ClockNetworkInstance(
        name=spec.name,
        die=die,
        source=source,
        sinks=sinks,
        obstacles=obstacles,
        wire_library=ispd09_wire_library(),
        buffer_library=ispd09_buffer_library(),
        source_resistance=spec.source_resistance,
        capacitance_limit=cap_limit,
        slew_limit=spec.slew_limit,
    )
    instance.validate()
    return instance


def generate_all_ispd09_benchmarks(
    sink_scale: Optional[float] = None,
) -> List[ClockNetworkInstance]:
    """Generate the full seven-benchmark suite in contest order."""
    return [
        generate_ispd09_benchmark(name, sink_scale=sink_scale)
        for name in ISPD09_BENCHMARKS
    ]


# ----------------------------------------------------------------------
def _generate_obstacles(rng: np.random.Generator, die: Rect, count: int) -> ObstacleSet:
    """Random macro blockages: mostly free-standing, some abutting pairs."""
    obstacles = ObstacleSet()
    attempts = 0
    while len(obstacles) < count and attempts < count * 60:
        attempts += 1
        width = float(rng.uniform(0.04, 0.16)) * die.width
        height = float(rng.uniform(0.04, 0.16)) * die.height
        xlo = float(rng.uniform(die.xlo + 0.02 * die.width, die.xhi - width - 0.02 * die.width))
        ylo = float(rng.uniform(die.ylo + 0.05 * die.height, die.yhi - height - 0.02 * die.height))
        rect = Rect(xlo, ylo, xlo + width, ylo + height)
        if any(rect.intersects(o.rect.expanded(0.01 * die.width)) for o in obstacles):
            # Occasionally keep an abutting macro to exercise compound-obstacle
            # handling; otherwise retry for a free-standing location.
            if float(rng.random()) > 0.15:
                continue
            if not die.contains_rect(rect):
                continue
        obstacles.add(Obstacle(rect=rect, name=f"blk{len(obstacles)}"))
    return obstacles


def _generate_sinks(
    rng: np.random.Generator,
    die: Rect,
    obstacles: ObstacleSet,
    spec: ISPD09BenchmarkSpec,
) -> List[SinkInstance]:
    sinks: List[SinkInstance] = []
    cluster_count = max(2, spec.sink_count // 40)
    clusters = [
        Point(
            float(rng.uniform(die.xlo + 0.1 * die.width, die.xhi - 0.1 * die.width)),
            float(rng.uniform(die.ylo + 0.1 * die.height, die.yhi - 0.1 * die.height)),
        )
        for _ in range(cluster_count)
    ]
    n_macro = min(spec.macro_sink_count, len(obstacles))
    n_regular = spec.sink_count - n_macro

    for index in range(n_regular):
        if float(rng.random()) < spec.cluster_fraction and clusters:
            center = clusters[int(rng.integers(len(clusters)))]
            radius = 0.05 * min(die.width, die.height)
            position = Point(
                min(max(center.x + float(rng.normal(0.0, radius)), die.xlo), die.xhi),
                min(max(center.y + float(rng.normal(0.0, radius)), die.ylo), die.yhi),
            )
        else:
            position = Point(
                float(rng.uniform(die.xlo, die.xhi)),
                float(rng.uniform(die.ylo, die.yhi)),
            )
        # Keep ordinary flip-flop sinks off the blockages; macro pins are
        # added separately below.
        if obstacles.blocks_point(position):
            position = obstacles.nearest_legal_point(position, die, step=0.01 * die.width)
        sinks.append(
            SinkInstance(
                name=f"sink_{index}",
                position=position,
                capacitance=float(rng.uniform(*spec.sink_cap_range)),
            )
        )

    macro_rects = [o.rect for o in list(obstacles)[:n_macro]]
    for index, rect in enumerate(macro_rects):
        # Macro clock pins sit near the block periphery (hard macros expose
        # their clock port at the boundary), so the unbuffered wire stub from
        # the blockage edge to the pin stays short.
        inset = 0.05 * min(rect.width, rect.height)
        position = Point(rect.center.x, rect.ylo + inset)
        sinks.append(
            SinkInstance(
                name=f"macro_sink_{index}",
                position=position,
                capacitance=float(rng.uniform(*spec.macro_cap_range)),
            )
        )
    return sinks


def capacitance_budget(die: Rect, sinks: List[SinkInstance], factor: float) -> float:
    """Synthetic total-capacitance limit (shared with the scenario families).

    The contest published a per-benchmark limit; here it is derived from a
    Steiner-length estimate of the wiring (``~1.2 * sqrt(n * A)`` for n sinks
    on area A), the sink pins, and a buffering allowance, scaled by
    ``factor``.  Contango's flow reserves 10% of whatever budget it is given,
    so only the relative sizing matters for reproducing behaviour.
    """
    wire = ispd09_wire_library().widest
    steiner_estimate = 1.2 * (len(sinks) * die.area) ** 0.5
    wire_cap = wire.capacitance(steiner_estimate)
    sink_cap = sum(s.capacitance for s in sinks)
    buffer_allowance = 60.0 * len(sinks)
    return factor * (wire_cap + sink_cap + buffer_allowance)
