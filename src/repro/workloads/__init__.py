"""Benchmark generators and file I/O.

The original ISPD'09 CNS benchmark files and the Texas Instruments sink
placements used in the paper are not redistributable, so this package
generates synthetic equivalents with the published characteristics (die
sizes, sink counts, obstacle density, the Table I inverter library, slew and
capacitance limits) plus a plain-text reader/writer so instances can be saved
and shared.  See DESIGN.md section 2 for the substitution rationale.
"""

from repro.workloads.ispd09 import (
    ISPD09BenchmarkSpec,
    ISPD09_BENCHMARKS,
    generate_ispd09_benchmark,
    generate_all_ispd09_benchmarks,
)
from repro.workloads.ti import TIBenchmarkSpec, generate_ti_benchmark, TI_SINK_COUNTS
from repro.workloads.format import (
    instance_fingerprint,
    instance_lines,
    read_instance,
    write_instance,
)

__all__ = [
    "ISPD09BenchmarkSpec",
    "ISPD09_BENCHMARKS",
    "generate_ispd09_benchmark",
    "generate_all_ispd09_benchmarks",
    "TIBenchmarkSpec",
    "generate_ti_benchmark",
    "TI_SINK_COUNTS",
    "instance_fingerprint",
    "instance_lines",
    "read_instance",
    "write_instance",
]
