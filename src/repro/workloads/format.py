"""Plain-text reader/writer for clock-network instances.

The format is a line-oriented dialect of the ISPD'09 CNS input decks so that
generated instances can be inspected, stored and reloaded:

.. code-block:: text

    # comment
    name ispd09f11
    die 0 0 11000 11000
    source 5500 0 80
    slew_limit 100
    cap_limit 123456.7
    wire W_NARROW 0.30 0.16
    wire W_WIDE 0.10 0.20
    buffer INV_L 35 80 61.2 12.0 1
    sink sink_0 123.4 567.8 25.0 0
    obstacle blk0 100 200 1100 900

Unknown keywords raise an error rather than being silently skipped, so format
drift is caught early.

Serialization is *canonical*: :func:`instance_lines` always emits the same
text for equal instances, so :func:`instance_fingerprint` (a SHA-256 of that
text) is a stable content address -- the scenario registry, the run store and
the golden fingerprint tests all key on it.  The write -> read round trip is
bit-exact, including buffer names containing spaces (escaped as ``%20``) and
instances without a capacitance limit (the ``cap_limit`` line is omitted).
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import List, Optional, Union

from repro.cts.bufferlib import BufferLibrary, BufferType
from repro.cts.spec import ClockNetworkInstance
from repro.cts.topology import SinkInstance
from repro.cts.wirelib import WireLibrary, WireType
from repro.geometry.obstacles import Obstacle, ObstacleSet
from repro.geometry.point import Point
from repro.geometry.rect import Rect

__all__ = [
    "instance_lines",
    "instance_fingerprint",
    "write_instance",
    "read_instance",
]


def _escape_name(name: str) -> str:
    """Whitespace-free encoding of a token; inverse of :func:`_unescape_name`.

    The format is whitespace-split, so spaces inside names (composite buffer
    types like ``"2X INV_S"``) must be escaped.  Percent-encoding keeps the
    common underscore-bearing names (``INV_L``) byte-identical, unlike the
    historical space<->underscore swap which silently corrupted them.
    """
    return name.replace("%", "%25").replace(" ", "%20")


def _unescape_name(token: str) -> str:
    return token.replace("%20", " ").replace("%25", "%")


def instance_lines(instance: ClockNetworkInstance) -> List[str]:
    """The canonical record lines of ``instance`` (no comments, no newline)."""
    lines: List[str] = [
        f"name {instance.name}",
        f"die {instance.die.xlo} {instance.die.ylo} {instance.die.xhi} {instance.die.yhi}",
        f"source {instance.source.x} {instance.source.y} {instance.source_resistance}",
        f"slew_limit {instance.slew_limit}",
    ]
    if instance.capacitance_limit is not None:
        lines.append(f"cap_limit {instance.capacitance_limit}")
    for wire in instance.wire_library:
        lines.append(
            f"wire {wire.name} {wire.unit_resistance} {wire.unit_capacitance}"
        )
    for buffer in instance.buffer_library:
        lines.append(
            "buffer "
            f"{_escape_name(buffer.name)} {buffer.input_cap} {buffer.output_cap} "
            f"{buffer.output_res} {buffer.intrinsic_delay} {1 if buffer.inverting else 0}"
        )
    for sink in instance.sinks:
        lines.append(
            f"sink {sink.name} {sink.position.x} {sink.position.y} "
            f"{sink.capacitance} {sink.required_polarity}"
        )
    for obstacle in instance.obstacles:
        rect = obstacle.rect
        lines.append(
            f"obstacle {obstacle.name or 'blk'} {rect.xlo} {rect.ylo} {rect.xhi} {rect.yhi}"
        )
    return lines


def instance_fingerprint(instance: ClockNetworkInstance) -> str:
    """Content-addressed SHA-256 hex digest of the canonical serialization.

    Two instances fingerprint equal iff they serialize to the same records,
    which (floats round-tripping exactly through ``repr``) means equal
    geometry, libraries and limits.  Used by the scenario determinism tests
    and as the instance component of the run store's job fingerprints.
    """
    text = "\n".join(instance_lines(instance)) + "\n"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def write_instance(instance: ClockNetworkInstance, path: Union[str, Path]) -> None:
    """Serialize ``instance`` to the text format described in the module docstring."""
    lines = ["# clock-network instance (ISPD'09 CNS-style dialect)"]
    lines.extend(instance_lines(instance))
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def read_instance(path: Union[str, Path]) -> ClockNetworkInstance:
    """Parse an instance previously produced by :func:`write_instance`."""
    name = "unnamed"
    die: Optional[Rect] = None
    source: Optional[Point] = None
    source_resistance = 100.0
    slew_limit = 100.0
    cap_limit: Optional[float] = None
    wires: List[WireType] = []
    buffers: List[BufferType] = []
    sinks: List[SinkInstance] = []
    obstacles = ObstacleSet()

    for line_number, raw in enumerate(Path(path).read_text(encoding="utf-8").splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        keyword, args = fields[0], fields[1:]
        try:
            if keyword == "name":
                name = args[0]
            elif keyword == "die":
                die = Rect(*map(float, args[:4]))
            elif keyword == "source":
                source = Point(float(args[0]), float(args[1]))
                source_resistance = float(args[2])
            elif keyword == "slew_limit":
                slew_limit = float(args[0])
            elif keyword == "cap_limit":
                cap_limit = float(args[0])
            elif keyword == "wire":
                wires.append(
                    WireType(
                        name=args[0],
                        unit_resistance=float(args[1]),
                        unit_capacitance=float(args[2]),
                    )
                )
            elif keyword == "buffer":
                buffers.append(
                    BufferType(
                        name=_unescape_name(args[0]),
                        input_cap=float(args[1]),
                        output_cap=float(args[2]),
                        output_res=float(args[3]),
                        intrinsic_delay=float(args[4]),
                        inverting=bool(int(args[5])),
                    )
                )
            elif keyword == "sink":
                sinks.append(
                    SinkInstance(
                        name=args[0],
                        position=Point(float(args[1]), float(args[2])),
                        capacitance=float(args[3]),
                        required_polarity=int(args[4]) if len(args) > 4 else 0,
                    )
                )
            elif keyword == "obstacle":
                obstacles.add(
                    Obstacle(rect=Rect(*map(float, args[1:5])), name=args[0])
                )
            else:
                raise ValueError(f"unknown keyword {keyword!r}")
        except (IndexError, TypeError, ValueError) as exc:
            raise ValueError(f"{path}:{line_number}: cannot parse {raw!r}: {exc}") from exc

    if die is None or source is None:
        raise ValueError(f"{path}: missing 'die' or 'source' record")
    instance = ClockNetworkInstance(
        name=name,
        die=die,
        source=source,
        sinks=sinks,
        obstacles=obstacles,
        wire_library=WireLibrary(wires) if wires else WireLibrary([WireType("W", 0.1, 0.2)]),
        buffer_library=BufferLibrary(buffers) if buffers else BufferLibrary(
            [BufferType("INV", 10.0, 10.0, 100.0)]
        ),
        source_resistance=source_resistance,
        capacitance_limit=cap_limit,
        slew_limit=slew_limit,
    )
    instance.validate()
    return instance
