"""Bounded priority queue with per-client fairness (the scheduler's intake).

Ordering is three-level and fully deterministic:

1. **Priority** -- higher ``priority`` values pop first (the scheduler's
   submit API defaults everyone to 0).
2. **Client fairness** -- among equal priorities, clients take strict turns
   in round-robin order (first submission order seeds the rotation), so one
   chatty client cannot starve the rest of the band even when it keeps the
   queue saturated.
3. **FIFO** -- within one client and priority, submission order.

The queue is *bounded*: :meth:`FairQueue.push` raises
:class:`QueueFullError` at ``max_depth``, and the scheduler turns that into
its reject-or-wait backpressure policy.  The structure is plain synchronous
code (the asyncio scheduler serializes access on its event loop); keeping it
loop-free makes it directly unit-testable.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Generic, List, Optional, TypeVar

__all__ = ["QueueFullError", "QueuedItem", "FairQueue"]

T = TypeVar("T")


class QueueFullError(RuntimeError):
    """The bounded queue is at ``max_depth``; the submission was not enqueued."""


@dataclass
class QueuedItem(Generic[T]):
    """One queued unit of work: payload plus its scheduling coordinates."""

    client: str
    priority: int
    seq: int
    payload: T = field(repr=False)


class FairQueue(Generic[T]):
    """Priority + per-client round-robin queue bounded at ``max_depth``."""

    def __init__(self, max_depth: int = 64) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        #: priority -> (client -> FIFO of items); the per-priority mapping's
        #: key order *is* the round-robin rotation (served clients re-enter
        #: at the back).
        self._buckets: Dict[int, "OrderedDict[str, Deque[QueuedItem[T]]]"] = {}
        self._size = 0
        self._seq = 0

    def __len__(self) -> int:
        return self._size

    @property
    def full(self) -> bool:
        return self._size >= self.max_depth

    def depth(self, client: Optional[str] = None) -> int:
        """Queued item count, overall or for one client."""
        if client is None:
            return self._size
        return sum(
            len(bucket[client]) for bucket in self._buckets.values() if client in bucket
        )

    def push(self, client: str, payload: T, priority: int = 0) -> QueuedItem[T]:
        """Enqueue one item; raises :class:`QueueFullError` at ``max_depth``."""
        if self.full:
            raise QueueFullError(
                f"queue is full ({self._size}/{self.max_depth} items)"
            )
        self._seq += 1
        item = QueuedItem(client=client, priority=priority, seq=self._seq, payload=payload)
        bucket = self._buckets.setdefault(priority, OrderedDict())
        if client not in bucket:
            bucket[client] = deque()
        bucket[client].append(item)
        self._size += 1
        return item

    def pop(self) -> Optional[QueuedItem[T]]:
        """Dequeue the next item by (priority, client rotation, FIFO); ``None`` if empty."""
        if not self._size:
            return None
        priority = max(self._buckets)
        bucket = self._buckets[priority]
        client, fifo = next(iter(bucket.items()))
        item = fifo.popleft()
        # Rotate: the served client goes to the back of its priority band
        # (or leaves it entirely when drained).
        del bucket[client]
        if fifo:
            bucket[client] = fifo
        if not bucket:
            del self._buckets[priority]
        self._size -= 1
        return item

    def clients(self) -> List[str]:
        """Distinct clients with queued work, in rotation order (highest band first)."""
        seen: List[str] = []
        for priority in sorted(self._buckets, reverse=True):
            for client in self._buckets[priority]:
                if client not in seen:
                    seen.append(client)
        return seen
