"""Content-addressed result cache over the run store's job fingerprints.

The key is :func:`repro.runner.spec_fingerprint` -- for plain synthesis jobs
bit-identical to the ``fingerprint`` field their records carry, so every
record the attached :class:`~repro.store.RunStore` has *ever* persisted
(this process or any earlier one) is a valid cache entry; Monte Carlo jobs
use the serve-side extended key and are cached in memory for the process
lifetime only (their records carry no fingerprint field to find again on
disk).

Invariants (see CONTRIBUTING "Fingerprint-cache invariants"):

* a hit returns the stored record *unchanged* -- bit-identical to a fresh
  run outside the wall-clock fields (:func:`repro.api.records.stable_record`
  is the comparison projection);
* :class:`~repro.api.records.ErrorRecord` results are never cached: a
  transient failure must not shadow the computation forever, so the next
  identical submission misses and re-executes;
* hit/miss/coalesced counts feed both the cache's own :meth:`stats` and the
  process-wide :data:`repro.obs.METRICS` registry (``serve.cache.*``).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.api.records import ErrorRecord, Record, record_from_dict
from repro.obs import METRICS
from repro.store import RunStore

__all__ = ["ResultCache"]


class ResultCache:
    """Fingerprint-keyed completed-result cache, store-backed when attached."""

    def __init__(self, store: Optional[RunStore] = None) -> None:
        self.store = store
        self._memory: Dict[str, Record] = {}
        self.hits = 0
        self.misses = 0
        self.coalesced = 0

    def lookup(self, fingerprint: str) -> Optional[Record]:
        """The cached record for ``fingerprint``, counting the hit or miss.

        Memory first (covers MC jobs and everything this process completed),
        then the attached store's fingerprint index -- which also surfaces
        results persisted by *previous* processes over the same store.
        """
        record = self._memory.get(fingerprint)
        if record is None and self.store is not None:
            stored = self.store.latest_by_fingerprint(fingerprint)
            if stored is not None:
                typed = record_from_dict(stored)
                if not isinstance(typed, ErrorRecord):
                    record = typed
                    self._memory[fingerprint] = typed
        if record is None:
            self.misses += 1
            METRICS.count("serve.cache.misses")
            return None
        self.hits += 1
        METRICS.count("serve.cache.hits")
        return record

    def put(self, fingerprint: str, record: Record) -> bool:
        """Memoize a completed record; refuses error records (returns False).

        The store append itself is the service's job (every dispatched record
        is persisted before its future resolves); the cache only remembers
        the fingerprint -> record association.
        """
        if isinstance(record, ErrorRecord):
            return False
        self._memory[fingerprint] = record
        return True

    def note_coalesced(self) -> None:
        """Count one submission that attached to an identical in-flight job."""
        self.coalesced += 1
        METRICS.count("serve.cache.coalesced")

    def stats(self) -> Dict[str, int]:
        """Deterministic counters (the serve PerfCase's regression surface)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "coalesced": self.coalesced,
            "memory_entries": len(self._memory),
        }
