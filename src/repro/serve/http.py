"""Stdlib-only HTTP/JSON front end over the :class:`JobScheduler`.

Raw ``asyncio.start_server`` plus a minimal HTTP/1.1 parser -- no external
web framework, one request per connection (every response carries
``Connection: close``).  Endpoints:

* ``POST /jobs`` -- submit a job (``202`` with the job summary; ``429`` when
  the reject-policy queue is full, ``400`` for malformed specs);
* ``GET /jobs`` -- every job summary of this scheduler;
* ``GET /jobs/<id>`` -- one job's status summary;
* ``GET /jobs/<id>/events`` -- the ordered event stream as NDJSON, replayed
  from the start and followed live until the ``completed`` event;
* ``GET /jobs/<id>/result`` -- the completed record (``409`` while pending);
* ``GET /metrics`` -- :data:`repro.obs.METRICS` snapshot plus scheduler and
  cache stats;
* ``GET /healthz`` -- liveness.

The submit body is JSON: ``{"instance": "ti:200"}`` at minimum, plus
``kind`` (``"run"``/``"mc"``), ``flow``/``engine``/``pipeline``/``seed``,
the Monte Carlo axes for ``kind="mc"``, and scheduling fields ``client`` /
``priority``.  A client disconnecting mid-stream only increments
``serve.stream.disconnects`` -- the job itself keeps running and its events
stay replayable.

:class:`ServerHandle` hosts the whole stack (scheduler + HTTP server) on a
dedicated thread with its own event loop, which is how the tests and the CI
smoke run a live endpoint in-process; ``repro serve`` drives
:func:`run_app` directly on the main thread instead.
"""

from __future__ import annotations

import asyncio
import json
import threading
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional, Tuple, Union

from repro.api.jobs import Job, JobSpec, McJobSpec
from repro.api.service import JobEvent, SynthesisService
from repro.obs import METRICS
from repro.serve.queue import QueueFullError
from repro.serve.scheduler import JobScheduler
from repro.serve.session import JobState

__all__ = ["HttpError", "ServeApp", "ServerHandle", "job_from_payload", "run_app"]

#: Upper bound on request head/body sizes (a synthesis job spec is tiny).
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class HttpError(Exception):
    """A client-visible HTTP failure (status + JSON error message)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def job_from_payload(payload: Mapping[str, Any]) -> Job:
    """Parse one submit-body JSON object into a typed job spec.

    Raises :class:`ValueError` (surfaced as HTTP 400) for anything the spec
    classes would reject -- validation lives in :mod:`repro.api.jobs`, not
    here.
    """
    if not isinstance(payload, Mapping):
        raise ValueError(f"job payload must be a JSON object, got {type(payload).__name__}")
    instance = payload.get("instance")
    if not isinstance(instance, str) or not instance:
        raise ValueError("job payload needs a non-empty 'instance' spec string")
    kind = payload.get("kind", "run")
    kwargs: Dict[str, Any] = {
        "instance": instance,
        "flow": payload.get("flow", "contango"),
        "engine": payload.get("engine", "arnoldi"),
    }
    pipeline = payload.get("pipeline")
    if pipeline is not None:
        if isinstance(pipeline, str) or not isinstance(pipeline, (list, tuple)):
            raise ValueError("'pipeline' must be a JSON array of pass names")
        kwargs["pipeline"] = tuple(pipeline)
    if payload.get("seed") is not None:
        kwargs["seed"] = payload["seed"]
    if kind == "run":
        return JobSpec(**kwargs)
    if kind == "mc":
        for key in ("samples", "family", "skew_limit_ps", "gated", "gate_samples"):
            if payload.get(key) is not None:
                kwargs[key] = payload[key]
        return McJobSpec(**kwargs)
    raise ValueError(f"unknown job kind {kind!r}; expected 'run' or 'mc'")


def _json_bytes(status: int, payload: Any) -> bytes:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("latin-1") + body


class ServeApp:
    """Route table + request parser over one :class:`JobScheduler`."""

    def __init__(self, scheduler: JobScheduler) -> None:
        self.scheduler = scheduler

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one connection: parse, route, respond, close."""
        try:
            try:
                method, target, body = await self._read_request(reader)
            except (asyncio.IncompleteReadError, ConnectionResetError):
                return
            except HttpError as exc:
                writer.write(_json_bytes(exc.status, {"error": exc.message}))
                await writer.drain()
                return
            try:
                await self._route(method, target, body, writer)
            except HttpError as exc:
                writer.write(_json_bytes(exc.status, {"error": exc.message}))
            except QueueFullError as exc:
                writer.write(_json_bytes(429, {"error": str(exc)}))
            except KeyError as exc:
                writer.write(_json_bytes(404, {"error": f"unknown job id {exc.args[0]!r}"}))
            except (ValueError, TypeError) as exc:
                writer.write(_json_bytes(400, {"error": str(exc)}))
            except Exception:
                METRICS.count("serve.http.errors")
                writer.write(_json_bytes(500, {"error": "internal server error"}))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            METRICS.count("serve.stream.disconnects")
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> Tuple[str, str, bytes]:
        line = await reader.readline()
        if not line:
            raise ConnectionResetError("empty request")
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise HttpError(400, "malformed request line")
        method, target = parts[0].upper(), parts[1]
        length = 0
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError as exc:
                    raise HttpError(400, "bad Content-Length") from exc
        if length > MAX_BODY_BYTES:
            raise HttpError(400, f"body larger than {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        return method, target, body

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(
        self, method: str, target: str, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        path = target.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            writer.write(_json_bytes(200, {"status": "ok"}))
            return
        if path == "/metrics" and method == "GET":
            writer.write(
                _json_bytes(
                    200,
                    {
                        "metrics": METRICS.snapshot(),
                        "scheduler": self.scheduler.stats(),
                    },
                )
            )
            return
        if path == "/jobs":
            if method == "POST":
                await self._submit(body, writer)
                return
            if method == "GET":
                writer.write(
                    _json_bytes(200, {"jobs": self.scheduler.registry.summaries()})
                )
                return
            raise HttpError(405, f"{method} not allowed on {path}")
        if path.startswith("/jobs/") and method == "GET":
            rest = path[len("/jobs/") :]
            job_id, _, action = rest.partition("/")
            state = self.scheduler.registry.get(job_id)
            if action == "":
                writer.write(_json_bytes(200, state.summary()))
                return
            if action == "result":
                self._result(state, writer)
                return
            if action == "events":
                await self._stream_events(state, writer)
                return
        raise HttpError(404, f"no route for {method} {path}")

    async def _submit(self, body: bytes, writer: asyncio.StreamWriter) -> None:
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except json.JSONDecodeError as exc:
            raise HttpError(400, f"body is not valid JSON: {exc}") from exc
        job = job_from_payload(payload)
        client = str(payload.get("client", "anon"))
        priority = int(payload.get("priority", 0))
        state = await self.scheduler.submit(job, client=client, priority=priority)
        writer.write(_json_bytes(202, state.summary()))

    @staticmethod
    def _result(state: JobState, writer: asyncio.StreamWriter) -> None:
        if not state.finished or state.record is None:
            raise HttpError(409, f"job {state.job_id} is {state.status}")
        writer.write(
            _json_bytes(
                200,
                {
                    "job_id": state.job_id,
                    "status": state.status,
                    "cached": state.cached,
                    "record": state.record.to_record(),
                },
            )
        )

    async def _stream_events(
        self, state: JobState, writer: asyncio.StreamWriter
    ) -> None:
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        try:
            await writer.drain()
            async for event in state.stream():
                line = json.dumps(_event_payload(state, event), sort_keys=True)
                writer.write(line.encode("utf-8") + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            # The job is unaffected; its events stay buffered for replay.
            METRICS.count("serve.stream.disconnects")


def _event_payload(state: JobState, event: JobEvent) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "job_id": state.job_id,
        "kind": event.kind,
        "job": event.job.label,
        "cached": event.cached,
        "note": event.note,
    }
    if event.kind == "completed" and event.record is not None:
        payload["failed"] = event.failed
        payload["record"] = event.record.to_record()
    return payload


async def run_app(
    service: SynthesisService,
    host: str = "127.0.0.1",
    port: int = 8765,
    max_queue: int = 64,
    policy: str = "wait",
    workers: Optional[int] = None,
    port_file: Union[str, Path, None] = None,
    ready: Optional[Callable[[int], None]] = None,
) -> None:
    """Run scheduler + HTTP server until cancelled (the ``repro serve`` body).

    ``port=0`` binds an ephemeral port; the bound port is written to
    ``port_file`` (when given) and passed to ``ready`` once the server is
    accepting, so scripted callers need no sleep-and-retry loop.
    """
    scheduler = JobScheduler(service, max_queue=max_queue, policy=policy, workers=workers)
    await scheduler.start()
    app = ServeApp(scheduler)
    server = await asyncio.start_server(app.handle, host=host, port=port)
    bound = int(server.sockets[0].getsockname()[1])
    if port_file is not None:
        Path(port_file).write_text(f"{bound}\n", encoding="utf-8")
    if ready is not None:
        ready(bound)
    try:
        async with server:
            await server.serve_forever()
    finally:
        await scheduler.close(drain=False)


class ServerHandle:
    """A live serve stack on its own thread + event loop (tests, smokes).

    ``start()`` blocks until the socket is bound and returns the handle;
    ``stop()`` drains the scheduler, closes the server and joins the thread.
    The handle exposes ``port`` for clients and ``scheduler`` for
    assertions about executions, queue state and cache counters.
    """

    def __init__(
        self,
        service: SynthesisService,
        host: str = "127.0.0.1",
        max_queue: int = 64,
        policy: str = "wait",
        workers: Optional[int] = None,
    ) -> None:
        self.service = service
        self.host = host
        self.max_queue = max_queue
        self.policy = policy
        self.workers = workers
        self.port = 0
        self.scheduler: Optional[JobScheduler] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self) -> "ServerHandle":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-http", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=60):
            raise RuntimeError("serve thread did not come up within 60s")
        if self._startup_error is not None:
            raise RuntimeError("serve thread failed to start") from self._startup_error
        return self

    def stop(self, timeout: float = 60.0) -> None:
        loop, shutdown = self._loop, self._shutdown
        if loop is not None and shutdown is not None:
            loop.call_soon_threadsafe(shutdown.set)
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerHandle":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surface startup failures to start()
            self._startup_error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        scheduler = JobScheduler(
            self.service,
            max_queue=self.max_queue,
            policy=self.policy,
            workers=self.workers,
        )
        self.scheduler = scheduler
        await scheduler.start()
        server = await asyncio.start_server(
            ServeApp(scheduler).handle, host=self.host, port=0
        )
        self.port = int(server.sockets[0].getsockname()[1])
        self._ready.set()
        try:
            await self._shutdown.wait()
        finally:
            server.close()
            await server.wait_closed()
            await scheduler.close(drain=True)
