"""The asyncio job scheduler: many clients, one warm synthesis pool.

:class:`JobScheduler` accepts :class:`~repro.api.jobs.Job` submissions from
any number of concurrent clients, runs them through a bounded
:class:`~repro.serve.queue.FairQueue` (priority + per-client round-robin,
reject-or-wait backpressure) and dispatches to an existing
:class:`~repro.api.service.SynthesisService` *off-loop*: pooled services are
driven through :meth:`SynthesisService.submit` +
:func:`asyncio.wrap_future`, and in-process services (``max_workers=1``,
where ``submit`` executes inline) are pushed onto the scheduler's thread
bridge so a running job never blocks the event loop.

Deduplication is content-addressed (:func:`repro.runner.spec_fingerprint`):

* a submission whose fingerprint is already **in flight** coalesces onto the
  running leader -- one pool execution, every waiter gets the same record;
* a fingerprint that already **completed** (this process, or any record the
  attached store holds from previous processes) is served from the
  :class:`~repro.serve.cache.ResultCache` without dispatching at all.

Either way the short-circuited submission's ``completed`` event is flagged
``cached=True``; an :class:`~repro.api.records.ErrorRecord` outcome is
propagated to *all* coalesced waiters but never cached, so the next
identical submission re-executes.

Concurrency notes: all mutable scheduler state is touched only from the
owning event loop; the only worker threads are the executor bridge (job
fingerprinting, and inline execution for poolless services), which runs pure
functions and returns results to the loop.  The stack-based
:class:`~repro.obs.Tracer` is not safe for spans held across ``await`` by
concurrent coroutines, so the scheduler confines spans to synchronous
bridge sections and reports everything else through
:data:`repro.obs.METRICS` counters (``serve.*``).
"""

from __future__ import annotations

import asyncio
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional

from repro.api.jobs import Job
from repro.api.records import ErrorRecord, Record
from repro.api.service import JobEvent, SynthesisService
from repro.obs import METRICS, NULL_TRACER, TracerBase
from repro.runner import error_record, spec_fingerprint
from repro.serve.cache import ResultCache
from repro.serve.queue import FairQueue, QueueFullError
from repro.serve.session import (
    COMPLETED,
    FAILED,
    QUEUED,
    REJECTED,
    RUNNING,
    JobState,
    SessionRegistry,
)

__all__ = ["JobScheduler", "QueueFullError"]

#: Backpressure policies of a full queue: ``"wait"`` parks the submitter
#: until space frees up, ``"reject"`` raises :class:`QueueFullError`.
POLICIES = ("wait", "reject")


class JobScheduler:
    """Asyncio front door of one :class:`SynthesisService` warm pool."""

    def __init__(
        self,
        service: SynthesisService,
        max_queue: int = 64,
        policy: str = "wait",
        workers: Optional[int] = None,
        tracer: TracerBase = NULL_TRACER,
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {policy!r}")
        self.service = service
        self.policy = policy
        self.registry = SessionRegistry()
        self.cache = ResultCache(service.store)
        self.tracer = tracer
        self._queue: FairQueue[JobState] = FairQueue(max_queue)
        #: fingerprint -> [leader, *followers] for work not yet completed.
        self._inflight: Dict[str, List[JobState]] = {}
        self._workers = workers if workers is not None else service.max_workers
        if self._workers < 1:
            raise ValueError("workers must be >= 1")
        #: The annotated executor bridge: fingerprinting always runs here, and
        #: so does the whole job when the service executes in-process -- the
        #: one sanctioned way to call blocking code off the event loop (the
        #: ``blocking-in-async`` lint rule polices the rest).
        self._bridge = ThreadPoolExecutor(
            max_workers=self._workers + 1, thread_name_prefix="repro-serve"
        )
        self._tasks: List["asyncio.Task[None]"] = []
        self._closing = False
        self._closed = False
        #: Jobs actually handed to the service (the dedup denominator).
        self.pool_executions = 0
        #: Leader job ids in dispatch order (fairness is observable).
        self.dispatch_order: List[str] = []
        self._completed_jobs = 0
        self.rejected = 0
        # Conditions are created lazily on the running loop (creating them in
        # a loopless constructor binds the wrong loop on Python 3.9).
        self._work: Optional[asyncio.Condition] = None
        self._space: Optional[asyncio.Condition] = None
        self._done: Optional[asyncio.Condition] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _cond(self, name: str) -> asyncio.Condition:
        value: Optional[asyncio.Condition] = getattr(self, name)
        if value is None:
            value = asyncio.Condition()
            setattr(self, name, value)
        return value

    @property
    def started(self) -> bool:
        return bool(self._tasks)

    async def start(self) -> None:
        """Spin up the dispatch loops; submissions made earlier start draining.

        Submitting *before* ``start()`` is supported and deterministic --
        nothing executes until the loops exist, so duplicate submissions
        coalesce without racing the first execution (the serve perf case
        relies on this to measure coalescing exactly).
        """
        if self._closed:
            raise RuntimeError("JobScheduler is closed")
        if self._tasks:
            return
        loop = asyncio.get_running_loop()
        self._tasks = [
            loop.create_task(self._dispatch_loop()) for _ in range(self._workers)
        ]

    async def close(self, drain: bool = True) -> None:
        """Stop the dispatch loops (after :meth:`drain` by default).

        ``drain=False`` abandons queued work: dispatch tasks are cancelled,
        queued states keep their non-terminal status, and the owned bridge is
        shut down without waiting.  The service itself is *not* closed -- the
        caller that built it owns it.
        """
        if self._closed:
            return
        if drain and self._tasks:
            await self.drain()
        self._closing = True
        async with self._cond("_work"):
            self._cond("_work").notify_all()
        async with self._cond("_space"):
            self._cond("_space").notify_all()
        if not drain:
            for task in self._tasks:
                task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []
        self._closed = True
        # Non-blocking teardown of the scheduler's own executor bridge.
        self._bridge.shutdown(wait=False)  # repro: lint-ok[blocking-in-async] bridge teardown, wait=False

    async def drain(self) -> None:
        """Wait until every submitted job reached a terminal status."""
        done = self._cond("_done")
        async with done:
            while self.registry.pending():
                await done.wait()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    async def submit(
        self, job: Job, client: str = "anon", priority: int = 0
    ) -> JobState:
        """Submit one job; returns its :class:`JobState` (streamable at once).

        Raises :class:`QueueFullError` under the ``"reject"`` policy when the
        queue is at capacity, and whatever :func:`spec_fingerprint` raises
        for an invalid spec (callers surface both as client errors).
        """
        if self._closing or self._closed:
            raise RuntimeError("JobScheduler is closing")
        loop = asyncio.get_running_loop()
        fingerprint = await loop.run_in_executor(
            self._bridge, self._fingerprint_sync, job
        )
        state = self.registry.create(
            job=job, client=client, priority=priority, fingerprint=fingerprint
        )
        METRICS.count("serve.jobs.submitted")

        # In-flight coalescing: attach to the leader, never dispatch.
        peers = self._inflight.get(fingerprint)
        if peers is not None:
            peers.append(state)
            state.coalesced = True
            state.cached = True  # completion will be served without a worker
            self.cache.note_coalesced()
            if peers[0].status == RUNNING:
                state.status = RUNNING
                await state.publish(self._event(state, "started"))
            return state

        # Completed-fingerprint short circuit: memory or store, no dispatch.
        cached = self.cache.lookup(fingerprint)
        if cached is not None:
            state.cached = True
            state.status = RUNNING
            await state.publish(self._event(state, "started"))
            await self._complete(state, cached)
            return state

        self._inflight[fingerprint] = [state]
        await self._enqueue(state)
        return state

    def _fingerprint_sync(self, job: Job) -> str:
        with self.tracer.span("serve.fingerprint"):
            return spec_fingerprint(job)

    async def _enqueue(self, state: JobState) -> None:
        while True:
            try:
                self._queue.push(state.client, state, priority=state.priority)
            except QueueFullError:
                if self.policy == "reject":
                    del self._inflight[state.fingerprint]
                    state.status = REJECTED
                    self.rejected += 1
                    METRICS.count("serve.queue.rejected")
                    await self._notify("_done")
                    raise
                space = self._cond("_space")
                async with space:
                    await space.wait()
                if self._closing or self._closed:
                    raise RuntimeError("JobScheduler is closing")
                continue
            METRICS.gauge("serve.queue.depth", float(len(self._queue)))
            await self._notify("_work")
            return

    async def _notify(self, name: str) -> None:
        cond = self._cond(name)
        async with cond:
            cond.notify_all()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            state = await self._next_state()
            if state is None:
                return
            await self._run_state(state, loop)

    async def _next_state(self) -> Optional[JobState]:
        work = self._cond("_work")
        while True:
            if self._closing:
                return None
            item = self._queue.pop()
            if item is not None:
                METRICS.gauge("serve.queue.depth", float(len(self._queue)))
                await self._notify("_space")
                return item.payload
            async with work:
                if self._closing:
                    return None
                if len(self._queue):
                    continue
                await work.wait()

    async def _run_state(self, state: JobState, loop: asyncio.AbstractEventLoop) -> None:
        waiters = self._inflight.get(state.fingerprint, [state])
        for waiter in waiters:
            waiter.status = RUNNING
            await waiter.publish(self._event(waiter, "started"))
        self.pool_executions += 1
        self.dispatch_order.append(state.job_id)
        METRICS.count("serve.pool.executions")
        try:
            if self.service.max_workers == 1:
                # Inline-executing service: the whole job runs on the bridge
                # so the blocking execution never touches the loop.
                future = await loop.run_in_executor(
                    self._bridge, self.service.submit, state.job
                )
            else:
                future = self.service.submit(state.job)
            record: Record = await asyncio.wrap_future(future)
        except Exception:
            record = error_record(state.job, traceback.format_exc())
        # From here to the first await: synchronous, so a new duplicate
        # submission either sees the in-flight entry (coalesces) or, once it
        # is popped, the populated cache (hits) -- never a gap in between.
        waiters = self._inflight.pop(state.fingerprint, [state])
        failed = isinstance(record, ErrorRecord)
        if not failed:
            self.cache.put(state.fingerprint, record)
        for waiter in waiters:
            if failed:
                waiter.cached = False
            await self._complete(waiter, record)
        await self._heartbeat()

    async def _complete(self, state: JobState, record: Record) -> None:
        state.record = record
        state.status = FAILED if isinstance(record, ErrorRecord) else COMPLETED
        self._completed_jobs += 1
        METRICS.count("serve.jobs.completed")
        await state.publish(self._event(state, "completed", record=record))
        await self._notify("_done")

    async def _heartbeat(self) -> None:
        """Forward a ``progress`` heartbeat to every still-queued job's stream."""
        queued = self.registry.queued()
        if not queued:
            return
        note = f"{self._completed_jobs} completed; {len(self._queue)} queued"
        for state in queued:
            await state.publish(self._event(state, "progress", note=note))

    def _event(
        self,
        state: JobState,
        kind: str,
        record: Optional[Record] = None,
        note: str = "",
    ) -> JobEvent:
        return JobEvent(
            index=0,
            total=1,
            job=state.job,
            record=record,
            kind=kind,
            cached=state.cached if kind == "completed" else False,
            note=note,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """The ``/metrics`` JSON block describing this scheduler."""
        return {
            "queue_depth": len(self._queue),
            "queue_policy": self.policy,
            "queue_max_depth": self._queue.max_depth,
            "workers": self._workers,
            "jobs": len(self.registry),
            "pending": len(self.registry.pending()),
            "completed": self._completed_jobs,
            "rejected": self.rejected,
            "pool_executions": self.pool_executions,
            "cache": self.cache.stats(),
        }
