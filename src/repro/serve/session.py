"""Per-job session state: replayable event streams and the job registry.

A :class:`JobState` is one submission's lifecycle -- its spec, fingerprint,
client, status, buffered :class:`~repro.api.service.JobEvent` history and
(eventually) its record.  Events are *buffered and replayable*: a subscriber
that arrives after the job completed still receives the full ordered
``started``/``progress``/``completed`` sequence, so the HTTP stream endpoint
needs no subscribe-before-submit handshake.

The :class:`SessionRegistry` owns every state of one scheduler, hands out
stable ``job-N`` ids, and renders the JSON summaries the status endpoints
serve.  Everything here runs on the scheduler's event loop; no locks beyond
the per-state :class:`asyncio.Condition` used to wake stream readers.
"""

from __future__ import annotations

import asyncio
from typing import Any, AsyncIterator, Dict, List, Optional

from repro.api.jobs import Job
from repro.api.records import ErrorRecord, Record
from repro.api.service import JobEvent

__all__ = [
    "QUEUED",
    "RUNNING",
    "COMPLETED",
    "FAILED",
    "REJECTED",
    "JobState",
    "SessionRegistry",
]

#: Job lifecycle states (terminal: COMPLETED / FAILED / REJECTED).
QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"
REJECTED = "rejected"

_TERMINAL = (COMPLETED, FAILED, REJECTED)


class JobState:
    """One submitted job's lifecycle, event history and result."""

    def __init__(
        self,
        job_id: str,
        job: Job,
        client: str,
        priority: int,
        fingerprint: str,
    ) -> None:
        self.job_id = job_id
        self.job = job
        self.client = client
        self.priority = priority
        self.fingerprint = fingerprint
        self.status = QUEUED
        #: True when this submission's completion was served without running
        #: a worker for it (store/memory hit, or coalesced onto a leader).
        self.cached = False
        #: True when this submission attached to an identical in-flight job.
        self.coalesced = False
        self.record: Optional[Record] = None
        self.events: List[JobEvent] = []
        self._changed = asyncio.Condition()

    @property
    def finished(self) -> bool:
        return self.status in _TERMINAL

    @property
    def failed(self) -> bool:
        return isinstance(self.record, ErrorRecord)

    async def publish(self, event: JobEvent) -> None:
        """Append one event and wake every pending stream reader."""
        self.events.append(event)
        async with self._changed:
            self._changed.notify_all()

    async def stream(self) -> AsyncIterator[JobEvent]:
        """Replay buffered events, then follow live ones until ``completed``.

        Every subscriber sees the same ordered sequence regardless of when it
        attaches; the iterator ends after the ``completed`` event (there is
        exactly one per job).
        """
        index = 0
        while True:
            while index < len(self.events):
                event = self.events[index]
                index += 1
                yield event
                if event.kind == "completed":
                    return
            async with self._changed:
                if index >= len(self.events):
                    if self.finished:
                        # Terminal without a completed event (e.g. rejected):
                        # nothing more will ever arrive.
                        return
                    await self._changed.wait()

    def summary(self) -> Dict[str, Any]:
        """The status-endpoint JSON shape of this job."""
        # Not a job *record* -- a scheduler status row that happens to carry
        # the job axes; records flow through /jobs/<id>/result as typed
        # to_record() payloads.
        return {  # repro: lint-ok[bare-dict-record] status summary, not a record
            "job_id": self.job_id,
            "job": self.job.label,
            "instance": self.job.instance,
            "flow": self.job.flow,
            "engine": self.job.engine,
            "client": self.client,
            "priority": self.priority,
            "fingerprint": self.fingerprint,
            "status": self.status,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "events": len(self.events),
        }


class SessionRegistry:
    """Every job of one scheduler, by stable ``job-N`` id."""

    def __init__(self) -> None:
        self._jobs: "Dict[str, JobState]" = {}
        self._next_id = 0

    def __len__(self) -> int:
        return len(self._jobs)

    def create(
        self, job: Job, client: str, priority: int, fingerprint: str
    ) -> JobState:
        self._next_id += 1
        state = JobState(
            job_id=f"job-{self._next_id}",
            job=job,
            client=client,
            priority=priority,
            fingerprint=fingerprint,
        )
        self._jobs[state.job_id] = state
        return state

    def get(self, job_id: str) -> JobState:
        """The state of ``job_id``; raises :class:`KeyError` for unknown ids."""
        return self._jobs[job_id]

    def states(self) -> List[JobState]:
        """Every state, in submission order."""
        return list(self._jobs.values())

    def queued(self) -> List[JobState]:
        """States still waiting for a worker, in submission order."""
        return [state for state in self._jobs.values() if state.status == QUEUED]

    def pending(self) -> List[JobState]:
        """States that have not reached a terminal status yet."""
        return [state for state in self._jobs.values() if not state.finished]

    def summaries(self) -> List[Dict[str, Any]]:
        return [state.summary() for state in self._jobs.values()]
