"""``repro.serve`` -- the multi-client serving layer over the warm pool.

Where :class:`~repro.api.service.SynthesisService` (PR 5) is one-caller,
call-and-block, this package turns it into a real server:

* :mod:`repro.serve.queue` -- bounded priority intake with per-client
  round-robin fairness and a reject-or-wait backpressure policy;
* :mod:`repro.serve.cache` -- the content-addressed
  :class:`ResultCache`, keyed by :func:`repro.runner.spec_fingerprint` (for
  plain jobs: exactly the store's golden-pinned job fingerprint), serving
  completed fingerprints from memory or the attached
  :class:`~repro.store.RunStore` bit-identically and never caching errors;
* :mod:`repro.serve.session` -- per-job replayable
  ``started``/``progress``/``completed`` event streams and the job registry;
* :mod:`repro.serve.scheduler` -- the asyncio :class:`JobScheduler`
  coalescing identical in-flight submissions onto one pool execution and
  dispatching off-loop via :meth:`SynthesisService.submit`;
* :mod:`repro.serve.http` -- the stdlib HTTP/JSON front end
  (``repro serve``), with :class:`ServerHandle` for in-process hosting.

Nothing outside this package imports it at module scope: ``repro.cli``
loads it lazily inside the ``serve`` handler, so the plain ``repro run``
path never pays for (or even imports) :mod:`asyncio`.
"""

from __future__ import annotations

from repro.serve.cache import ResultCache
from repro.serve.http import HttpError, ServeApp, ServerHandle, job_from_payload, run_app
from repro.serve.queue import FairQueue, QueuedItem, QueueFullError
from repro.serve.scheduler import JobScheduler
from repro.serve.session import JobState, SessionRegistry

__all__ = [
    "FairQueue",
    "QueuedItem",
    "QueueFullError",
    "ResultCache",
    "JobState",
    "SessionRegistry",
    "JobScheduler",
    "ServeApp",
    "ServerHandle",
    "HttpError",
    "job_from_payload",
    "run_app",
]
