"""Per-case trend tables across ledger history.

``repro perf trend`` walks one case's entries in append order and renders
one row per entry: package version, workload fingerprint (shortened),
recording stamp, the wall-clock median/IQR, and any requested counters.
The table is a *reading* aid -- gating stays in ``repro perf compare`` --
so drift is visible at a glance before it grows into a regression.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.perf.ledger import PerfLedger

__all__ = ["trend_rows", "trend_columns", "DEFAULT_TREND_COUNTERS"]

#: Counters shown by default when the caller requests none explicitly --
#: the evaluator trio every optimization PR so far has moved.
DEFAULT_TREND_COUNTERS = ("evaluations", "cache_hits", "cache_misses")


def trend_rows(
    ledger: PerfLedger,
    case: str,
    counters: Optional[Sequence[str]] = None,
) -> Tuple[List[Dict[str, Any]], List[str]]:
    """(rows, counter-names) of one case's ledger history, append order.

    ``counters`` defaults to the :data:`DEFAULT_TREND_COUNTERS` that are
    actually present in at least one entry, so cases without an evaluator
    (e.g. a pure-trace case) don't render dead columns.
    """
    entries = ledger.entries(case=case)
    if counters is None:
        present = {
            name for entry in entries for name in entry.get("counters", {})
        }
        selected = [name for name in DEFAULT_TREND_COUNTERS if name in present]
    else:
        selected = list(counters)

    rows: List[Dict[str, Any]] = []
    for entry in entries:
        timings = entry.get("timings", {})
        wall = timings.get("wall_clock_s", {})
        row: Dict[str, Any] = {
            "version": entry.get("package_version", "?"),
            "fingerprint": str(entry.get("fingerprint", ""))[:12],
            "recorded_at": str(timings.get("recorded_at", ""))[:19],
            "wall_median": wall.get("median"),
            "wall_iqr": wall.get("iqr"),
        }
        for name in selected:
            row[name] = entry.get("counters", {}).get(name)
        rows.append(row)
    return rows, selected


def trend_columns(counter_names: Sequence[str]) -> List[Tuple[str, str, str]]:
    """render_table column spec matching :func:`trend_rows` output."""
    columns: List[Tuple[str, str, str]] = [
        ("version", "version", "s"),
        ("fingerprint", "fingerprint", "s"),
        ("recorded_at", "recorded_at", "s"),
        ("wall_median", "wall_median_s", ".4f"),
        ("wall_iqr", "wall_iqr_s", ".4f"),
    ]
    columns.extend((name, name, "") for name in counter_names)
    return columns
