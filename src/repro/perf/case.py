"""Benchmark-case registry and the run machinery producing ledger entries.

A :class:`PerfCase` is one registered, repeatable performance measurement:
it runs its workload under a live :class:`repro.obs.Tracer` and returns a
:class:`CaseOutcome`.  :func:`run_case` drives the repeats and folds them
into one schema-versioned entry that **strictly quarantines wall-clock from
determinism**:

* ``counters`` / ``span_counters`` -- deterministic integers only, sourced
  from the span tree (:func:`repro.obs.path_counters`), the process-wide
  :data:`repro.obs.METRICS` registry (reset before every repeat) and the
  case's own outcome.  Repeats must agree bit-for-bit; disagreement fails
  the built-in ``counters_deterministic`` check.  ``repro perf compare``
  gates these with an exact match.
* ``timings`` -- everything wall-clock: per-repeat medians/IQRs of the
  span-path self/total times, the traced wall-clock, the case's extra
  timing measurements, and any timing-derived checks (speedup floors).
  :func:`repro.obs.strip_timings` of two entries of the same case at the
  same version is byte-identical.

The registry mirrors :data:`repro.core.pipeline.PASS_REGISTRY` and the
lintkit rules: cases register under their ``name`` via the
:func:`register_case` class decorator, registration raises on a missing or
duplicate name, and the ``perfcase-registered`` lint rule flags concrete
subclasses that never register.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Type

from repro.obs import METRICS, Tracer, TracerBase, path_counters, path_timings

__all__ = [
    "PERF_SCHEMA",
    "CaseCheck",
    "CaseOutcome",
    "PerfCase",
    "CASE_REGISTRY",
    "register_case",
    "available_cases",
    "resolve_cases",
    "timing_stats",
    "run_case",
    "merged_counters",
]

#: Version number of one persisted perf-case entry; readers reject newer
#: schemas instead of misparsing them (the run-store convention).
PERF_SCHEMA = 1


@dataclass(frozen=True)
class CaseCheck:
    """One named pass/fail assertion of a case run.

    ``timing=False`` checks are deterministic (bit-parity, counter
    consistency) and serialize into the entry's structural remainder;
    ``timing=True`` checks (speedup floors, overhead ceilings) depend on
    wall-clock and are quarantined into the ``timings`` block, details and
    all.
    """

    name: str
    ok: bool
    detail: str = ""
    timing: bool = False


@dataclass
class CaseOutcome:
    """What one repeat of a case hands back to :func:`run_case`.

    ``counters`` are deterministic integers merged into the entry's counter
    block; ``timings`` are case-measured wall-clock floats (seconds unless
    the key says otherwise) aggregated across repeats into the
    ``timings.extra`` block; ``checks`` are the case's own assertions.
    """

    counters: Dict[str, int] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    checks: List[CaseCheck] = field(default_factory=list)


class PerfCase:
    """One named, registrable benchmark case.

    Subclasses set ``name`` (the registry key), ``description`` (one line)
    and ``repeats`` (wall-clock sampling; counters must not depend on it),
    and implement :meth:`run_once` -- run the workload under ``tracer``
    (pass it to ``run_job``/the flow so spans nest) and return a
    :class:`CaseOutcome` -- plus :meth:`fingerprint`, the content identity
    of the measured workload (instance fingerprints where applicable), so
    ledger entries are only ever compared like-for-like.
    """

    name: str = ""
    description: str = ""
    repeats: int = 3

    def fingerprint(self) -> str:
        """Content identity of the measured workload."""
        raise NotImplementedError

    def run_once(self, tracer: TracerBase) -> CaseOutcome:
        """Execute one repeat of the workload under ``tracer``."""
        raise NotImplementedError


#: Registered case classes, keyed by case name.
CASE_REGISTRY: Dict[str, Type[PerfCase]] = {}


def register_case(case_cls: Type[PerfCase]) -> Type[PerfCase]:
    """Register a case class under its ``name`` (class-decorator style).

    Raises on a missing or duplicate name so a typo cannot silently shadow
    an existing case -- the same contract as ``register_pass`` and
    ``register_rule``.
    """
    name = case_cls.name
    if not name:
        raise ValueError("a perf case needs a non-empty 'name' to register")
    if name in CASE_REGISTRY:
        raise ValueError(f"a perf case named {name!r} is already registered")
    CASE_REGISTRY[name] = case_cls
    return case_cls


def available_cases() -> List[str]:
    """Sorted names currently in the registry."""
    return sorted(CASE_REGISTRY)


def resolve_cases(names: Optional[Sequence[str]] = None) -> List[PerfCase]:
    """Instantiate cases by name (default: every registered case, sorted).

    Unknown names raise with the valid set, mirroring ``resolve_rules``.
    """
    if names is None:
        names = available_cases()
    cases: List[PerfCase] = []
    for name in names:
        case_cls = CASE_REGISTRY.get(name)
        if case_cls is None:
            raise KeyError(
                f"unknown perf case {name!r}; registered: {available_cases()}"
            )
        cases.append(case_cls())
    return cases


def _quantile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of an already-sorted sample."""
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return float(ordered[0])
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return float(ordered[low] * (1.0 - fraction) + ordered[high] * fraction)


def timing_stats(samples: Sequence[float]) -> Dict[str, Any]:
    """median/IQR/min/max summary of one wall-clock sample series.

    The IQR (q75 - q25) is the noise band ``repro perf compare`` widens its
    soft timing gate by; a single-sample series has an IQR of zero and
    relies on the comparison's relative/absolute noise floors instead.
    """
    ordered = sorted(float(sample) for sample in samples)
    return {
        "n": len(ordered),
        "median": round(_quantile(ordered, 0.5), 9),
        "iqr": round(_quantile(ordered, 0.75) - _quantile(ordered, 0.25), 9),
        "min": round(ordered[0], 9) if ordered else 0.0,
        "max": round(ordered[-1], 9) if ordered else 0.0,
    }


def merged_counters(per_path: Dict[str, Dict[str, int]]) -> Dict[str, int]:
    """Collapse per-span-path counters into one sorted counter dict."""
    merged: Dict[str, int] = {}
    for counters in per_path.values():
        for key, amount in counters.items():
            merged[key] = merged.get(key, 0) + amount
    return {key: merged[key] for key in sorted(merged)}


def _check_record(check: CaseCheck) -> Dict[str, Any]:
    return {"name": check.name, "ok": check.ok, "detail": check.detail}


def run_case(
    case: PerfCase,
    repeats: Optional[int] = None,
    package_version: Optional[str] = None,
) -> Dict[str, Any]:
    """Run ``case`` ``repeats`` times and fold the repeats into one entry.

    Every repeat starts from a clean slate (fresh :class:`Tracer`,
    :meth:`METRICS.reset`), so counters cannot leak between repeats; the
    counter blocks are taken from the first repeat and every later repeat
    must reproduce them exactly (the ``counters_deterministic`` check).
    Deterministic checks must agree across repeats too; timing checks are
    merged with AND semantics (a floor missed in any repeat fails).
    """
    if package_version is None:
        from repro import __version__ as package_version
    count = case.repeats if repeats is None else max(1, int(repeats))

    counter_runs: List[Dict[str, int]] = []
    span_counter_runs: List[Dict[str, Dict[str, int]]] = []
    wall_samples: List[float] = []
    span_total_samples: Dict[str, List[float]] = {}
    span_self_samples: Dict[str, List[float]] = {}
    extra_samples: Dict[str, List[float]] = {}
    deterministic_checks: Dict[str, CaseCheck] = {}
    timing_checks: Dict[str, CaseCheck] = {}

    for _ in range(count):
        METRICS.reset()
        tracer = Tracer()
        outcome = case.run_once(tracer)
        metrics_counters: Dict[str, int] = METRICS.snapshot()["counters"]

        span_counters = path_counters(tracer)
        counters = merged_counters(span_counters)
        counters.update(metrics_counters)
        counters.update(outcome.counters)
        counter_runs.append({key: counters[key] for key in sorted(counters)})
        span_counter_runs.append(span_counters)

        wall_samples.append(tracer.total_s())
        for path, timing in path_timings(tracer).items():
            span_total_samples.setdefault(path, []).append(timing["total_s"])
            span_self_samples.setdefault(path, []).append(timing["self_s"])
        for label, value in outcome.timings.items():
            extra_samples.setdefault(label, []).append(float(value))

        for check in outcome.checks:
            bucket = timing_checks if check.timing else deterministic_checks
            previous = bucket.get(check.name)
            if previous is None or (previous.ok and not check.ok):
                bucket[check.name] = check

    deterministic = all(run == counter_runs[0] for run in counter_runs) and all(
        run == span_counter_runs[0] for run in span_counter_runs
    )
    deterministic_checks.setdefault(
        "counters_deterministic",
        CaseCheck(
            name="counters_deterministic",
            ok=True,
            detail="counter blocks agree across repeats",
        ),
    )
    if not deterministic:
        deterministic_checks["counters_deterministic"] = CaseCheck(
            name="counters_deterministic",
            ok=False,
            detail="counter blocks differ between repeats of the same case",
        )

    METRICS.reset()
    return {
        "schema": PERF_SCHEMA,
        "kind": "perf-case",
        "case": case.name,
        "description": case.description,
        "package_version": package_version,
        "fingerprint": case.fingerprint(),
        "counters": counter_runs[0],
        "span_counters": span_counter_runs[0],
        "checks": [
            _check_record(deterministic_checks[name])
            for name in sorted(deterministic_checks)
        ],
        "timings": {
            "repeats": count,
            "wall_clock_s": timing_stats(wall_samples),
            "spans": {
                path: {
                    "total_s": timing_stats(span_total_samples[path]),
                    "self_s": timing_stats(span_self_samples[path]),
                }
                for path in sorted(span_total_samples)
            },
            "extra": {
                label: timing_stats(extra_samples[label])
                for label in sorted(extra_samples)
            },
            "checks": [
                _check_record(timing_checks[name]) for name in sorted(timing_checks)
            ],
        },
    }
