"""Append-only JSONL performance ledger (the :class:`RunStore` idioms).

One line per perf-case entry, exactly as :func:`repro.perf.case.run_case`
produced it, plus a ``recorded_at`` stamp tucked *inside the entry's
``timings`` block* -- the stamp is wall-clock metadata, so it lives with
the wall-clock and :func:`repro.obs.strip_timings` keeps ledger lines
byte-comparable across runs.  Appending never rewrites existing lines;
the schema version rides on every line and readers reject lines from a
newer schema rather than misinterpreting them.

Entries are keyed by ``(case, fingerprint, package_version)`` -- the
trajectory of one case on one workload across package versions is the
slice ``repro perf trend`` renders, and ``repro perf compare`` only diffs
entries whose case and fingerprint agree.
"""

from __future__ import annotations

import json
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.perf.case import PERF_SCHEMA

__all__ = ["PerfLedger", "entry_key"]


def entry_key(entry: Dict[str, Any]) -> Tuple[str, str, str]:
    """The identity a ledger entry is keyed (and compared) by."""
    return (
        str(entry.get("case", "")),
        str(entry.get("fingerprint", "")),
        str(entry.get("package_version", "")),
    )


class PerfLedger:
    """An append-only JSONL ledger of perf-case entries under one directory."""

    FILENAME = "perf.jsonl"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    @property
    def path(self) -> Path:
        return self.root / self.FILENAME

    def __len__(self) -> int:
        return len(self.entries())

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, entry: Dict[str, Any]) -> Dict[str, Any]:
        """Append one perf-case entry; returns the stored line's payload.

        The entry must already carry its identity (``case``,
        ``fingerprint``, ``package_version``) and schema; the ledger only
        adds the ``recorded_at`` stamp -- inside ``timings`` so the
        deterministic remainder stays byte-stable.
        """
        if entry.get("kind") != "perf-case" or not entry.get("case"):
            raise ValueError("only perf-case entries with a case name are ledgerable")
        stored = dict(entry)
        stored["timings"] = dict(stored.get("timings", {}))
        stored["timings"]["recorded_at"] = datetime.now(timezone.utc).isoformat()
        self.root.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(stored, sort_keys=True) + "\n")
        return stored

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def entries(
        self,
        case: Optional[str] = None,
        fingerprint: Optional[str] = None,
        package_version: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Stored entries, in append order, filtered by the key axes."""
        if not self.path.exists():
            return []
        selected: List[Dict[str, Any]] = []
        for line_number, line in enumerate(
            self.path.read_text(encoding="utf-8").splitlines(), 1
        ):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{self.path}:{line_number}: corrupt ledger line: {exc}"
                ) from exc
            schema = entry.get("schema")
            if not isinstance(schema, int) or schema > PERF_SCHEMA:
                raise ValueError(
                    f"{self.path}:{line_number}: schema {schema!r} is newer than "
                    f"supported version {PERF_SCHEMA}"
                )
            if case is not None and entry.get("case") != case:
                continue
            if fingerprint is not None and entry.get("fingerprint") != fingerprint:
                continue
            if (
                package_version is not None
                and entry.get("package_version") != package_version
            ):
                continue
            selected.append(entry)
        return selected

    def cases(self) -> List[str]:
        """Distinct case names in first-appended order."""
        seen: List[str] = []
        for entry in self.entries():
            name = str(entry.get("case", ""))
            if name not in seen:
                seen.append(name)
        return seen

    def latest(
        self,
        case: str,
        fingerprint: Optional[str] = None,
        package_version: Optional[str] = None,
    ) -> Optional[Dict[str, Any]]:
        """The most recent entry of ``case`` (``None`` if absent)."""
        matching = self.entries(
            case=case, fingerprint=fingerprint, package_version=package_version
        )
        return matching[-1] if matching else None
