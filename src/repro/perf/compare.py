"""Ledger-entry comparison: exact counter gates, banded timing gates.

The comparison core treats the two halves of an entry by their nature:

* **Counters are gated hard.**  :func:`diff_counter_maps` demands an exact
  match -- any added, removed or changed counter is a regression, the same
  zero-tolerance the store regression gate applies to solver results.  The
  per-span-path variant powers both ``repro perf compare`` and
  ``repro trace --diff``.
* **Timings are gated soft.**  A candidate median only flags when it
  clears *every* noise allowance at once: ``base_median + k * base_IQR``
  (measured run-to-run noise), ``base_median * (1 + rel_floor)`` and
  ``base_median + abs_floor`` (guards for near-zero or single-sample
  baselines whose IQR is degenerate).  Flagged span paths are then
  **localized**: a path is reported as a regression *source* only when no
  descendant path is itself flagged, so a slowdown inside ``propagate``
  blames ``.../evaluate/propagate``, not every ancestor it inflated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.trace import PATH_SEPARATOR

__all__ = [
    "TimingBands",
    "CounterDiff",
    "TimingFlag",
    "PerfComparison",
    "diff_counter_maps",
    "diff_path_counters",
    "timing_regression",
    "compare_entries",
    "COUNTER_COLUMNS",
    "TIMING_COLUMNS",
]


@dataclass(frozen=True)
class TimingBands:
    """Noise allowances of the soft timing gate (all must be exceeded)."""

    k_iqr: float = 3.0
    rel_floor: float = 0.25
    abs_floor_s: float = 0.005


@dataclass(frozen=True)
class CounterDiff:
    """One counter whose value differs between baseline and candidate."""

    path: str  # span path, or "" for the merged counter block
    counter: str
    base: Optional[int]
    cand: Optional[int]

    @property
    def status(self) -> str:
        if self.base is None:
            return "added"
        if self.cand is None:
            return "removed"
        return "changed"

    def to_row(self) -> Dict[str, Any]:
        return {
            "path": self.path or "*",
            "counter": self.counter,
            "base": self.base,
            "cand": self.cand,
            "status": self.status,
        }


@dataclass(frozen=True)
class TimingFlag:
    """One span path whose median timing escaped every noise band."""

    path: str
    metric: str  # "self_s" | "total_s" | "wall_clock_s" | extra label
    base_median: float
    base_iqr: float
    cand_median: float
    source: bool = False  # no flagged descendant -> the localized culprit

    def to_row(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "metric": self.metric,
            "base_median": self.base_median,
            "base_iqr": self.base_iqr,
            "cand_median": self.cand_median,
            "source": "<-- source" if self.source else "",
        }


COUNTER_COLUMNS: List[Tuple[str, str, str]] = [
    ("path", "path", "s"),
    ("counter", "counter", "s"),
    ("base", "base", ""),
    ("cand", "cand", ""),
    ("status", "status", "s"),
]

TIMING_COLUMNS: List[Tuple[str, str, str]] = [
    ("path", "path", "s"),
    ("metric", "metric", "s"),
    ("base_median", "base_median_s", ".6f"),
    ("base_iqr", "base_iqr_s", ".6f"),
    ("cand_median", "cand_median_s", ".6f"),
    ("source", "", "s"),
]


def diff_counter_maps(
    base: Dict[str, int], cand: Dict[str, int], path: str = ""
) -> List[CounterDiff]:
    """Exact-match diff of two counter dicts (sorted by counter name)."""
    diffs: List[CounterDiff] = []
    for counter in sorted(set(base) | set(cand)):
        base_value = base.get(counter)
        cand_value = cand.get(counter)
        if base_value != cand_value:
            diffs.append(
                CounterDiff(path=path, counter=counter, base=base_value, cand=cand_value)
            )
    return diffs


def diff_path_counters(
    base: Dict[str, Dict[str, int]], cand: Dict[str, Dict[str, int]]
) -> List[CounterDiff]:
    """Exact-match diff of per-span-path counter maps, sorted by path."""
    diffs: List[CounterDiff] = []
    for path in sorted(set(base) | set(cand)):
        diffs.extend(diff_counter_maps(base.get(path, {}), cand.get(path, {}), path))
    return diffs


def timing_regression(
    base_median: float,
    base_iqr: float,
    cand_median: float,
    bands: TimingBands,
) -> bool:
    """True when the candidate median escapes *every* noise allowance."""
    allowance = max(
        base_median + bands.k_iqr * base_iqr,
        base_median * (1.0 + bands.rel_floor),
        base_median + bands.abs_floor_s,
    )
    return cand_median > allowance


def _stats(block: Dict[str, Any], *keys: str) -> Tuple[float, float]:
    """(median, iqr) of a nested timing-stats block, 0.0 when absent."""
    node: Any = block
    for key in keys:
        if not isinstance(node, dict):
            return 0.0, 0.0
        node = node.get(key, {})
    if not isinstance(node, dict):
        return 0.0, 0.0
    return float(node.get("median", 0.0)), float(node.get("iqr", 0.0))


def _localize(flags: List[TimingFlag]) -> List[TimingFlag]:
    """Mark the flagged paths with no flagged descendant as the sources."""
    flagged_paths = {flag.path for flag in flags}
    localized: List[TimingFlag] = []
    for flag in flags:
        prefix = flag.path + PATH_SEPARATOR
        has_flagged_descendant = any(
            other != flag.path and other.startswith(prefix) for other in flagged_paths
        )
        localized.append(
            TimingFlag(
                path=flag.path,
                metric=flag.metric,
                base_median=flag.base_median,
                base_iqr=flag.base_iqr,
                cand_median=flag.cand_median,
                source=not has_flagged_descendant,
            )
        )
    return localized


@dataclass
class PerfComparison:
    """The verdict of comparing one candidate entry against its baseline."""

    case: str
    counter_diffs: List[CounterDiff] = field(default_factory=list)
    timing_flags: List[TimingFlag] = field(default_factory=list)
    failed_checks: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def counter_regression(self) -> bool:
        return bool(self.counter_diffs) or bool(self.failed_checks)

    @property
    def timing_regression(self) -> bool:
        return bool(self.timing_flags)

    @property
    def timing_sources(self) -> List[TimingFlag]:
        return [flag for flag in self.timing_flags if flag.source]

    def to_record(self) -> Dict[str, Any]:
        return {
            "case": self.case,
            "counter_regression": self.counter_regression,
            "timing_regression": self.timing_regression,
            "counter_diffs": [diff.to_row() for diff in self.counter_diffs],
            "timing_flags": [flag.to_row() for flag in self.timing_flags],
            "timing_sources": [flag.path for flag in self.timing_sources],
            "failed_checks": list(self.failed_checks),
            "notes": list(self.notes),
        }


def compare_entries(
    base: Dict[str, Any],
    cand: Dict[str, Any],
    bands: Optional[TimingBands] = None,
) -> PerfComparison:
    """Compare one candidate ledger entry against its baseline entry.

    Counters (merged and per span path) plus deterministic checks gate
    hard; span self-times, the traced wall-clock and the case's extra
    timing series gate soft through ``bands``, with flagged span paths
    localized to the deepest moved subtree.
    """
    if bands is None:
        bands = TimingBands()
    comparison = PerfComparison(case=str(cand.get("case", "")))

    if base.get("case") != cand.get("case"):
        raise ValueError(
            f"cannot compare entries of different cases: "
            f"{base.get('case')!r} vs {cand.get('case')!r}"
        )
    if base.get("fingerprint") != cand.get("fingerprint"):
        comparison.notes.append(
            "fingerprint changed ({} -> {}): the workload itself differs, "
            "counter diffs reflect that".format(
                base.get("fingerprint"), cand.get("fingerprint")
            )
        )

    comparison.counter_diffs.extend(
        diff_counter_maps(
            dict(base.get("counters", {})), dict(cand.get("counters", {}))
        )
    )
    comparison.counter_diffs.extend(
        diff_path_counters(
            dict(base.get("span_counters", {})), dict(cand.get("span_counters", {}))
        )
    )

    for check in cand.get("checks", []):
        if not check.get("ok", False):
            comparison.failed_checks.append(str(check.get("name", "?")))

    flags: List[TimingFlag] = []
    base_timings = dict(base.get("timings", {}))
    cand_timings = dict(cand.get("timings", {}))

    base_spans = dict(base_timings.get("spans", {}))
    cand_spans = dict(cand_timings.get("spans", {}))
    for path in sorted(set(base_spans) & set(cand_spans)):
        base_median, base_iqr = _stats(base_spans, path, "self_s")
        cand_median, _ = _stats(cand_spans, path, "self_s")
        if timing_regression(base_median, base_iqr, cand_median, bands):
            flags.append(
                TimingFlag(
                    path=path,
                    metric="self_s",
                    base_median=base_median,
                    base_iqr=base_iqr,
                    cand_median=cand_median,
                )
            )
    comparison.timing_flags.extend(_localize(flags))

    base_median, base_iqr = _stats(base_timings, "wall_clock_s")
    cand_median, _ = _stats(cand_timings, "wall_clock_s")
    if timing_regression(base_median, base_iqr, cand_median, bands):
        comparison.timing_flags.append(
            TimingFlag(
                path="(wall clock)",
                metric="wall_clock_s",
                base_median=base_median,
                base_iqr=base_iqr,
                cand_median=cand_median,
                source=not comparison.timing_sources,
            )
        )

    base_extra = dict(base_timings.get("extra", {}))
    cand_extra = dict(cand_timings.get("extra", {}))
    for label in sorted(set(base_extra) & set(cand_extra)):
        base_median, base_iqr = _stats(base_extra, label)
        cand_median, _ = _stats(cand_extra, label)
        if timing_regression(base_median, base_iqr, cand_median, bands):
            comparison.timing_flags.append(
                TimingFlag(
                    path=f"(extra) {label}",
                    metric=label,
                    base_median=base_median,
                    base_iqr=base_iqr,
                    cand_median=cand_median,
                    source=True,
                )
            )

    return comparison
