"""The registered perf cases -- the five bench smokes, absorbed, plus serve.

Each case reproduces one ``benchmarks/*_smoke.py`` measurement as a
registered :class:`~repro.perf.case.PerfCase`: the workload runs under the
supplied tracer (so span paths and span counters land in the ledger entry),
every timed region is a span (``span.total_s`` after the ``with`` block --
no raw ``time.perf_counter`` calls, per the ``untimed-wallclock`` rule),
deterministic facts become counters or deterministic checks, and the old
hard acceptance floors (variation 20x, dirty-region 5x, candidate batch 3x,
disabled-trace overhead <2%) become ``timing=True`` checks so they gate in
``repro perf compare`` without contaminating the byte-stable remainder.

The smoke scripts remain as thin CLI wrappers over these cases.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.analysis import ClockNetworkEvaluator, EvaluatorConfig
from repro.analysis.variation import VariationModel, default_variation_model
from repro.api.jobs import JobSpec
from repro.api.records import stable_record
from repro.api.service import SynthesisService
from repro.core import ContangoFlow, FlowConfig
from repro.obs import NULL_TRACER, Span, Tracer, TracerBase, summarize
from repro.perf.case import CaseCheck, CaseOutcome, PerfCase, register_case
from repro.runner import run_job
from repro.seeding import derive_rng
from repro.workloads import generate_ti_benchmark, instance_fingerprint

__all__ = [
    "EvaluatorCase",
    "VariationCase",
    "ServiceCase",
    "PropagationCase",
    "TraceCase",
    "ServeCase",
]

SINKS = 200
ENGINE = "arnoldi"


def _span_s(span: Optional[Span]) -> float:
    """Elapsed seconds of a closed span (0.0 under a disabled tracer)."""
    return span.total_s if span is not None else 0.0


def _prefixed(prefix: str, stats: Dict[str, int]) -> Dict[str, int]:
    return {f"{prefix}{key}": int(value) for key, value in stats.items()}


@register_case
class EvaluatorCase(PerfCase):
    """The 200-sink TI Contango flow as one traced runner job.

    Absorbs ``benchmarks/perf_smoke.py``: the flow's evaluator counters
    (evaluations, cache hits/misses, propagation splits) arrive through the
    span tree, quality metrics stay with the store regression gate, and the
    old best-of-3 wall-clock becomes the entry's median over repeats.
    """

    name = "evaluator"
    description = f"ti:{SINKS} contango flow ({ENGINE}): evaluator + cache counters"
    repeats = 3

    def __init__(self) -> None:
        self._fingerprint = ""

    def fingerprint(self) -> str:
        if not self._fingerprint:
            self._fingerprint = instance_fingerprint(generate_ti_benchmark(SINKS))
        return self._fingerprint

    def run_once(self, tracer: TracerBase) -> CaseOutcome:
        record = run_job(
            JobSpec(instance=f"ti:{SINKS}", flow="contango", engine=ENGINE),
            tracer=tracer,
        )
        outcome = CaseOutcome()
        outcome.counters["slew_violations"] = int(record.summary.slew_violations)
        outcome.counters.update(_prefixed("cache_", record.evaluator_cache))
        return outcome


@register_case
class VariationCase(PerfCase):
    """Batched vs per-sample Monte Carlo skew-yield evaluation.

    Absorbs ``benchmarks/variation_smoke.py``: the zero-variance bit-parity
    check stays deterministic, the 20x-over-serial floor becomes a timing
    check, and both wall-clocks land in the ``timings.extra`` series.
    """

    name = "variation"
    description = f"ti:{SINKS} {ENGINE} Monte Carlo: batched vs serial reference"
    repeats = 2

    SAMPLES = 1000
    SERIAL_SAMPLES = 30
    SEED = 7
    SPEEDUP_FLOOR = 20.0

    def __init__(self) -> None:
        self._fingerprint = ""

    def fingerprint(self) -> str:
        if not self._fingerprint:
            self._fingerprint = instance_fingerprint(generate_ti_benchmark(SINKS))
        return self._fingerprint

    def _make_evaluator(self, instance: Any, corners: Any = None) -> ClockNetworkEvaluator:
        return ClockNetworkEvaluator(
            config=EvaluatorConfig(engine=ENGINE, slew_limit=instance.slew_limit),
            corners=corners,
            capacitance_limit=instance.capacitance_limit,
        )

    def run_once(self, tracer: TracerBase) -> CaseOutcome:
        instance = generate_ti_benchmark(SINKS)
        with tracer.span("synthesize"):
            result = ContangoFlow(FlowConfig(engine=ENGINE)).run(instance)
        tree = result.require_tree()
        model = default_variation_model()

        evaluator = self._make_evaluator(instance)
        with tracer.span("warmup"):
            evaluator.evaluate_yield(
                tree, model, samples=8, rng=derive_rng(self.SEED, "warmup")
            )
        with tracer.span("batched_mc") as batched_span:
            report = evaluator.evaluate_yield(
                tree,
                model,
                samples=self.SAMPLES,
                rng=derive_rng(self.SEED, "variation-bench"),
            )
        batched_s = _span_s(batched_span)

        rng = derive_rng(self.SEED, "variation-bench-serial")
        base_corners = FlowConfig().corners
        with tracer.span("serial_reference") as serial_span:
            for _ in range(self.SERIAL_SAMPLES):
                draw = model.sample(1, rng, n_stages=1)
                corners = [
                    corner.scaled(
                        driver=float(draw.driver[0, 0]),
                        wire=float(draw.wire_res[0, 0]),
                    )
                    for corner in base_corners
                ]
                self._make_evaluator(instance, corners).evaluate(tree)
        serial_per_sample = _span_s(serial_span) / self.SERIAL_SAMPLES

        nominal = evaluator.evaluate(tree)
        zero = evaluator.evaluate_yield(
            tree, VariationModel(), samples=4, rng=derive_rng(self.SEED, "parity")
        )
        parity = bool(
            np.all(zero.skew_samples == nominal.skew)
            and np.all(zero.clr_samples == nominal.clr)
            and np.all(zero.worst_slew_samples == nominal.worst_slew)
        )
        speedup = (
            serial_per_sample / (batched_s / self.SAMPLES) if batched_s > 0 else 0.0
        )

        outcome = CaseOutcome()
        outcome.counters["mc_samples"] = self.SAMPLES
        outcome.counters["serial_reference_samples"] = self.SERIAL_SAMPLES
        outcome.counters["skew_yield_millis"] = int(round(report.skew_yield * 1000))
        outcome.counters.update(_prefixed("cache_", evaluator.cache_stats()))
        outcome.timings["batched_mc_s"] = batched_s
        outcome.timings["serial_per_sample_s"] = serial_per_sample
        outcome.checks.append(
            CaseCheck(
                name="zero_variance_bit_parity",
                ok=parity,
                detail="zero-variance Monte Carlo equals nominal evaluation bit "
                "for bit",
            )
        )
        outcome.checks.append(
            CaseCheck(
                name="batched_speedup_floor",
                ok=speedup >= self.SPEEDUP_FLOOR,
                detail=f"batched path {speedup:.1f}x over the serial reference "
                f"(floor {self.SPEEDUP_FLOOR:.0f}x)",
                timing=True,
            )
        )
        return outcome


@register_case
class ServiceCase(PerfCase):
    """Warm-pool vs per-call-pool dispatch of many tiny jobs.

    Absorbs ``benchmarks/service_smoke.py``: the reuse invariant (one pool
    for the whole warm run, identical fingerprints either way) gates
    deterministically; the speedup stays an untracked trajectory because a
    1-core host serializes both variants onto the same CPU.
    """

    name = "service"
    description = "warm-pool vs per-call-pool dispatch overhead (ti:24 initial)"
    repeats = 2

    CALLS = 4
    WORKERS = 2
    JOB = JobSpec(instance="ti:24", engine="elmore", pipeline=("initial",))

    def __init__(self) -> None:
        self._fingerprint = ""

    def fingerprint(self) -> str:
        if not self._fingerprint:
            self._fingerprint = instance_fingerprint(generate_ti_benchmark(24))
        return self._fingerprint

    def run_once(self, tracer: TracerBase) -> CaseOutcome:
        cold_records: List[Any] = []
        with tracer.span("cold_pools") as cold_span:
            for _ in range(self.CALLS):
                with SynthesisService(max_workers=self.WORKERS) as service:
                    cold_records.extend(service.run([self.JOB]).records)

        warm_records: List[Any] = []
        with tracer.span("warm_pool") as warm_span:
            with SynthesisService(max_workers=self.WORKERS) as service:
                for _ in range(self.CALLS):
                    warm_records.extend(service.run([self.JOB]).records)

        cold_fps = [record.fingerprint for record in cold_records]
        warm_fps = [record.fingerprint for record in warm_records]

        outcome = CaseOutcome()
        outcome.counters["calls"] = self.CALLS
        outcome.counters["pools_created_warm"] = int(service.pools_created)
        outcome.counters["jobs_dispatched_warm"] = int(service.jobs_dispatched)
        outcome.timings["cold_pools_s"] = _span_s(cold_span)
        outcome.timings["warm_pool_s"] = _span_s(warm_span)
        outcome.checks.append(
            CaseCheck(
                name="single_warm_pool",
                ok=service.pools_created == 1,
                detail="the warm service creates exactly one pool for all calls",
            )
        )
        outcome.checks.append(
            CaseCheck(
                name="cold_warm_fingerprints_equal",
                ok=bool(cold_fps) and cold_fps == warm_fps,
                detail="pool reuse does not change job results",
            )
        )
        return outcome


@register_case
class PropagationCase(PerfCase):
    """Dirty-region re-evaluation and batched candidate scoring.

    Absorbs ``benchmarks/propagation_smoke.py``: bit-parity against the
    cold/serial references gates deterministically, the 5x (dirty) and 3x
    (batch) floors become timing checks, and the float-keyed timing-cache
    finding's hit/miss deltas become counters so the finding itself is
    regression-gated.
    """

    name = "propagation"
    description = f"ti:{SINKS} {ENGINE} dirty-region + candidate-batch speedups"
    repeats = 2

    TOUCH_REPEATS = 20
    BATCH_REPEATS = 10
    CANDIDATES = 12
    COLD_FLOOR = 5.0
    BATCH_FLOOR = 3.0

    def __init__(self) -> None:
        self._fingerprint = ""

    def fingerprint(self) -> str:
        if not self._fingerprint:
            self._fingerprint = instance_fingerprint(generate_ti_benchmark(SINKS))
        return self._fingerprint

    def _make_evaluator(self, instance: Any, **overrides: Any) -> ClockNetworkEvaluator:
        config: Dict[str, Any] = dict(engine=ENGINE, slew_limit=instance.slew_limit)
        config.update(overrides)
        return ClockNetworkEvaluator(
            config=EvaluatorConfig(**config),
            capacitance_limit=instance.capacitance_limit,
        )

    @staticmethod
    def _reports_bit_identical(a: Any, b: Any) -> bool:
        if set(a.corners) != set(b.corners):
            return False
        for name in a.corners:
            got, want = a.corners[name], b.corners[name]
            if got.latency != want.latency or got.tap_slew != want.tap_slew:
                return False
            if got.slew != want.slew:
                return False
        return bool(a.summary() == b.summary())

    def _candidate_moves(self, tree: Any) -> List[Any]:
        sinks = sorted(s.node_id for s in tree.sinks())

        def make(index: int) -> Any:
            first = sinks[(2 * index) % len(sinks)]
            second = sinks[(2 * index + 1) % len(sinks)]

            def move() -> int:
                tree.add_snake(first, 5.0 + index)
                tree.add_snake(second, 2.5 + index)
                return 2

            return move

        return [make(index) for index in range(self.CANDIDATES)]

    @staticmethod
    def _deepest_buffer_edge(tree: Any) -> Any:
        best, best_depth = None, -1
        for node in tree.buffers():
            depth = 0
            up = node.parent
            while up is not None:
                ancestor = tree.node(up)
                if ancestor.buffer is not None:
                    depth += 1
                up = ancestor.parent
            if depth > best_depth:
                best, best_depth = node.node_id, depth
        return best

    def run_once(self, tracer: TracerBase) -> CaseOutcome:
        outcome = CaseOutcome()
        instance = generate_ti_benchmark(SINKS)
        with tracer.span("synthesize"):
            tree = ContangoFlow(FlowConfig(engine=ENGINE)).run(instance).require_tree()

        # Dirty-region re-evaluation: parity first, then the timed loops.
        evaluator = self._make_evaluator(instance)
        evaluator.evaluate(tree)
        sinks = sorted(s.node_id for s in tree.sinks())
        tree.add_snake(sinks[0], 1.0)
        incremental = evaluator.evaluate(tree)
        cold_reference = self._make_evaluator(instance).evaluate(tree, incremental=False)
        dirty_parity = self._reports_bit_identical(incremental, cold_reference)

        with tracer.span("dirty_touch_loop") as touch_span:
            for index in range(self.TOUCH_REPEATS):
                tree.add_snake(sinks[index % len(sinks)], 0.5)
                evaluator.evaluate(tree)
        touch_s = _span_s(touch_span) / self.TOUCH_REPEATS
        with tracer.span("cold_eval_loop") as cold_span:
            for _ in range(self.TOUCH_REPEATS):
                evaluator.evaluate(tree, incremental=False)
        cold_s = _span_s(cold_span) / self.TOUCH_REPEATS
        dirty_speedup = cold_s / touch_s if touch_s > 0 else 0.0
        outcome.counters.update(_prefixed("dirty_", evaluator.cache_stats()))

        # Batched candidate scoring vs the serial reference.
        moves = self._candidate_moves(tree)
        batched_eval = self._make_evaluator(instance)
        batched_eval.evaluate(tree)
        serial_eval = self._make_evaluator(instance, candidate_batching=False)
        serial_eval.evaluate(tree)
        batched = batched_eval.evaluate_candidates(tree, moves)
        serial = serial_eval.evaluate_candidates(tree, moves)
        batch_parity = all(
            fast.skew == slow.skew
            and fast.clr == slow.clr
            and fast.max_latency == slow.max_latency
            and fast.worst_slew == slow.worst_slew
            for fast, slow in zip(batched, serial)
        )
        with tracer.span("batched_candidates") as batched_span:
            for _ in range(self.BATCH_REPEATS):
                batched_eval.evaluate_candidates(tree, moves)
        with tracer.span("serial_candidates") as serial_span:
            for _ in range(self.BATCH_REPEATS):
                serial_eval.evaluate_candidates(tree, moves)
        batched_s = _span_s(batched_span) / self.BATCH_REPEATS
        serial_s = _span_s(serial_span) / self.BATCH_REPEATS
        batch_speedup = serial_s / batched_s if batched_s > 0 else 0.0
        outcome.counters["candidates"] = len(moves)
        outcome.counters["candidates_batched"] = int(batched.batched)
        outcome.counters["candidate_fallbacks"] = int(batched.fallbacks)

        # Float-keyed timing-cache finding (spice engine, small instance).
        small = generate_ti_benchmark(40)
        with tracer.span("timing_cache_finding"):
            small_tree = (
                ContangoFlow(FlowConfig(engine=ENGINE, pipeline=["initial"]))
                .run(small)
                .require_tree()
            )
            edge = self._deepest_buffer_edge(small_tree)
            for label, dirty_region in (("nodirty", False), ("dirty", True)):
                spice = self._make_evaluator(
                    small, engine="spice", dirty_region=dirty_region
                )
                spice.evaluate(small_tree)
                warm = spice.cache_stats()
                small_tree.add_snake(edge, 0.25)
                spice.evaluate(small_tree)
                stats = spice.cache_stats()
                outcome.counters[f"timing_cache_{label}_hits_delta"] = (
                    stats["hits"] - warm["hits"]
                )
                outcome.counters[f"timing_cache_{label}_misses_delta"] = (
                    stats["misses"] - warm["misses"]
                )

        outcome.timings["dirty_touch_s"] = touch_s
        outcome.timings["cold_eval_s"] = cold_s
        outcome.timings["batched_candidates_s"] = batched_s
        outcome.timings["serial_candidates_s"] = serial_s
        outcome.checks.extend(
            [
                CaseCheck(
                    name="dirty_region_bit_parity",
                    ok=dirty_parity,
                    detail="incremental re-evaluation equals a cold evaluation "
                    "bit for bit",
                ),
                CaseCheck(
                    name="candidate_batch_bit_parity",
                    ok=batch_parity,
                    detail="batched candidate scores equal serial scoring",
                ),
                CaseCheck(
                    name="dirty_region_speedup_floor",
                    ok=dirty_speedup >= self.COLD_FLOOR,
                    detail=f"single-touch re-evaluation {dirty_speedup:.1f}x over "
                    f"cold (floor {self.COLD_FLOOR:.0f}x)",
                    timing=True,
                ),
                CaseCheck(
                    name="candidate_batch_speedup_floor",
                    ok=batch_speedup >= self.BATCH_FLOOR,
                    detail=f"batched candidate scoring {batch_speedup:.1f}x over "
                    f"serial (floor {self.BATCH_FLOOR:.0f}x)",
                    timing=True,
                ),
            ]
        )
        return outcome


@register_case
class TraceCase(PerfCase):
    """Tracing parity and the disabled-instrumentation overhead ceiling.

    Absorbs ``benchmarks/trace_smoke.py``: traced/untraced record parity
    and fingerprint equality gate deterministically; the <2% disabled
    overhead ceiling (per-event null-span cost scaled by the traced run's
    span count, against the untraced flow runtime) is a timing check.
    """

    name = "trace"
    description = f"ti:{SINKS} {ENGINE} tracing parity + disabled overhead"
    repeats = 2

    NULL_SPAN_ITERATIONS = 200_000
    OVERHEAD_CEILING_PCT = 2.0
    SEED = 11

    def __init__(self) -> None:
        self._fingerprint = ""

    def fingerprint(self) -> str:
        if not self._fingerprint:
            self._fingerprint = instance_fingerprint(generate_ti_benchmark(SINKS))
        return self._fingerprint

    def _spec(self) -> JobSpec:
        return JobSpec(instance=f"ti:{SINKS}", engine=ENGINE, seed=self.SEED)

    def run_once(self, tracer: TracerBase) -> CaseOutcome:
        inner = Tracer()
        with tracer.span("traced_job"):
            traced = run_job(self._spec(), tracer=inner)
        with tracer.span("untraced_job") as untraced_span:
            plain = run_job(self._spec())
        untraced_s = _span_s(untraced_span)
        summary = summarize(inner)

        null = NULL_TRACER
        with tracer.span("null_span_loop") as null_span:
            for _ in range(self.NULL_SPAN_ITERATIONS):
                if null.enabled:  # the wrapper-guard branch
                    raise AssertionError("NULL_TRACER must be disabled")
                with null.span("x"):  # the unconditional-span path
                    pass
        per_event_s = _span_s(null_span) / self.NULL_SPAN_ITERATIONS
        overhead_pct = (
            100.0 * per_event_s * summary.spans / untraced_s if untraced_s > 0 else 0.0
        )

        outcome = CaseOutcome()
        outcome.counters["span_events"] = int(summary.spans)
        outcome.timings["untraced_job_s"] = untraced_s
        outcome.timings["null_span_cost_ns"] = per_event_s * 1e9
        outcome.checks.extend(
            [
                CaseCheck(
                    name="traced_untraced_parity",
                    ok=stable_record(traced) == stable_record(plain),
                    detail="traced and untraced records of the same job agree "
                    "outside wall-clock fields",
                ),
                CaseCheck(
                    name="fingerprints_equal",
                    ok=traced.fingerprint == plain.fingerprint,
                    detail="tracing does not change the job's content fingerprint",
                ),
                CaseCheck(
                    name="disabled_overhead_ceiling",
                    ok=overhead_pct < self.OVERHEAD_CEILING_PCT,
                    detail=f"disabled-tracing overhead {overhead_pct:.3f}% of the "
                    f"untraced flow (ceiling {self.OVERHEAD_CEILING_PCT:.0f}%)",
                    timing=True,
                ),
            ]
        )
        return outcome


@register_case
class ServeCase(PerfCase):
    """Scheduler dedup latency: cold executions vs coalesced vs cache hit.

    The serve subsystem's acceptance case.  Three submissions over two
    distinct fingerprints (one cold job, one duplicate pair) plus a
    post-completion resubmit must produce *exactly two* pool executions:
    the duplicate coalesces onto its in-flight leader and the resubmit is
    served from the :class:`~repro.serve.cache.ResultCache`, both flagged
    ``cached``.  The cache-hit record must equal a fresh :func:`run_job`
    of the same spec outside wall-clock fields
    (:func:`~repro.api.records.stable_record` parity).  The scheduler's
    ``serve.cache.hits/misses/coalesced`` and ``serve.pool.executions``
    counters land in the entry through :data:`~repro.obs.METRICS`
    absorption, so ``repro perf compare`` gates them exactly.
    """

    name = "serve"
    description = "ti:24 scheduler dedup: cold vs coalesced vs cache-hit latency"
    repeats = 2

    COLD_JOB = JobSpec(instance="ti:24", engine="elmore", pipeline=("initial",))
    PAIR_JOB = JobSpec(instance="ti:24", engine="elmore", pipeline=("initial",), seed=3)
    HIT_SPEEDUP_FLOOR = 3.0

    def __init__(self) -> None:
        self._fingerprint = ""

    def fingerprint(self) -> str:
        if not self._fingerprint:
            self._fingerprint = instance_fingerprint(generate_ti_benchmark(24))
        return self._fingerprint

    async def _drive(self, tracer: TracerBase) -> Dict[str, Any]:
        # Imported here (with asyncio below) so the serving stack never loads
        # on the plain ``repro run`` path that imports this module's siblings.
        from repro.serve import JobScheduler

        with SynthesisService(max_workers=1) as service:
            scheduler = JobScheduler(service, max_queue=8)
            try:
                # Submitting before start() is the deterministic-coalescing
                # window: nothing executes until the dispatch loops exist, so
                # the duplicate always attaches to its in-flight leader
                # instead of racing the leader's completion.
                cold = await scheduler.submit(self.COLD_JOB, client="cold")
                leader = await scheduler.submit(self.PAIR_JOB, client="pair")
                with tracer.span("coalesced_submit") as coalesced_span:
                    follower = await scheduler.submit(
                        self.PAIR_JOB, client="pair-dup"
                    )
                with tracer.span("cold_executions") as cold_span:
                    await scheduler.start()
                    await scheduler.drain()
                with tracer.span("cache_hit_submit") as hit_span:
                    hit = await scheduler.submit(self.COLD_JOB, client="hit")
            finally:
                await scheduler.close()
        return {
            "cold": cold,
            "leader": leader,
            "follower": follower,
            "hit": hit,
            "pool_executions": scheduler.pool_executions,
            "dispatched": list(scheduler.dispatch_order),
            "cache": scheduler.cache.stats(),
            "jobs": len(scheduler.registry),
            "cold_s": _span_s(cold_span),
            "hit_s": _span_s(hit_span),
            "coalesced_s": _span_s(coalesced_span),
        }

    def run_once(self, tracer: TracerBase) -> CaseOutcome:
        import asyncio

        with tracer.span("fresh_reference"):
            fresh = run_job(self.COLD_JOB)
        driven = asyncio.run(self._drive(tracer))

        cold, leader = driven["cold"], driven["leader"]
        follower, hit = driven["follower"], driven["hit"]
        cache: Dict[str, int] = driven["cache"]
        distinct = len({cold.fingerprint, leader.fingerprint})
        hit_s, cold_s = driven["hit_s"], driven["cold_s"]
        hit_speedup = cold_s / hit_s if hit_s > 0 else 0.0

        outcome = CaseOutcome()
        outcome.counters["serve_jobs"] = int(driven["jobs"])
        outcome.counters["serve_distinct_fingerprints"] = distinct
        outcome.counters["serve_cache_memory_entries"] = cache["memory_entries"]
        outcome.timings["cold_executions_s"] = cold_s
        outcome.timings["cache_hit_submit_s"] = hit_s
        outcome.timings["coalesced_submit_s"] = driven["coalesced_s"]
        outcome.checks.extend(
            [
                CaseCheck(
                    name="one_execution_per_fingerprint",
                    ok=driven["pool_executions"] == distinct == 2
                    and len(driven["dispatched"]) == 2,
                    detail="four submissions over two fingerprints dispatch "
                    "exactly two pool executions",
                ),
                CaseCheck(
                    name="duplicates_served_without_dispatch",
                    ok=follower.coalesced
                    and follower.cached
                    and follower.record is leader.record
                    and hit.cached
                    and not hit.coalesced
                    and cache["hits"] == 1
                    and cache["misses"] == 2
                    and cache["coalesced"] == 1,
                    detail="the coalesced duplicate shares its leader's record "
                    "and the resubmit completes from cache, both flagged cached",
                ),
                CaseCheck(
                    name="cached_record_bit_identical",
                    ok=hit.record is not None
                    and stable_record(hit.record) == stable_record(fresh),
                    detail="the cache-hit record equals a fresh run_job of the "
                    "same spec outside wall-clock fields",
                ),
                CaseCheck(
                    name="cache_hit_speedup_floor",
                    ok=hit_speedup >= self.HIT_SPEEDUP_FLOOR,
                    detail=f"cache-hit completion {hit_speedup:.1f}x faster than "
                    f"the cold executions (floor {self.HIT_SPEEDUP_FLOOR:.0f}x)",
                    timing=True,
                ),
            ]
        )
        return outcome
