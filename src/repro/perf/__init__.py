"""``repro.perf`` -- benchmark-case registry, performance ledger, regression gates.

The performance counterpart of the lint and mypy ratchets:

* :mod:`repro.perf.case` -- :class:`PerfCase` + the register-or-fail
  :data:`CASE_REGISTRY`; :func:`run_case` folds repeats into one
  schema-versioned entry whose deterministic counters are strictly
  quarantined from its wall-clock ``timings`` block.
* :mod:`repro.perf.cases` -- the five registered cases absorbing the old
  bench smokes (evaluator, variation, service, propagation, trace).
* :mod:`repro.perf.ledger` -- :class:`PerfLedger`, the append-only JSONL
  trajectory keyed by case + workload fingerprint + package version.
* :mod:`repro.perf.compare` -- :func:`compare_entries`: hard exact-match
  counter gates, soft IQR-banded timing gates, and span-subtree
  localization of timing regressions.
* :mod:`repro.perf.trend` -- per-case history tables.

``repro perf run|compare|trend`` is the CLI surface; CI's single ``perf``
job gates ``repro perf compare --fail-on-counter-regression`` against the
committed baseline ledger under ``benchmarks/``.
"""

from __future__ import annotations

import repro.perf.cases  # noqa: F401  -- importing registers the built-in cases
from repro.perf.case import (
    CASE_REGISTRY,
    PERF_SCHEMA,
    CaseCheck,
    CaseOutcome,
    PerfCase,
    available_cases,
    register_case,
    resolve_cases,
    run_case,
    timing_stats,
)
from repro.perf.compare import (
    PerfComparison,
    TimingBands,
    compare_entries,
    diff_counter_maps,
    diff_path_counters,
)
from repro.perf.ledger import PerfLedger, entry_key
from repro.perf.trend import trend_columns, trend_rows

__all__ = [
    "PERF_SCHEMA",
    "PerfCase",
    "CaseCheck",
    "CaseOutcome",
    "CASE_REGISTRY",
    "register_case",
    "available_cases",
    "resolve_cases",
    "run_case",
    "timing_stats",
    "PerfLedger",
    "entry_key",
    "TimingBands",
    "PerfComparison",
    "compare_entries",
    "diff_counter_maps",
    "diff_path_counters",
    "trend_rows",
    "trend_columns",
]
