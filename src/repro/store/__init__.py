"""Persistent result store: append-only JSONL runs plus query/diff helpers.

``repro sweep`` streams every completed job into a :class:`RunStore`;
``repro compare`` diffs two store selections into a per-scenario delta table.
Runs are keyed by content-addressed fingerprints (see
:mod:`repro.store.fingerprint`), so "did anything about this computation
change?" is one hash comparison.
"""

from repro.store.compare import (
    COMPARE_COLUMNS,
    COUNTER_COLUMNS,
    CompareTolerances,
    ComparisonResult,
    ComparisonRow,
    compare_rows,
    diff_records,
    record_key,
)
from repro.store.fingerprint import canonical_json, config_digest, job_fingerprint
from repro.store.store import STORE_SCHEMA_VERSION, RunStore

__all__ = [
    "COMPARE_COLUMNS",
    "COUNTER_COLUMNS",
    "CompareTolerances",
    "ComparisonResult",
    "ComparisonRow",
    "RunStore",
    "STORE_SCHEMA_VERSION",
    "canonical_json",
    "compare_rows",
    "config_digest",
    "diff_records",
    "job_fingerprint",
    "record_key",
]
