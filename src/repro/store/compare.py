"""Diff two run-store selections: per-scenario metric deltas and regressions.

Records are matched by their *job key* -- (instance spec, flow, engine,
pipeline, seed) -- so a baseline store captured last week lines up with a
fresh sweep of the same matrix even though fingerprints and timestamps
differ.  A matched pair regresses when the candidate's skew or CLR exceeds
the baseline by more than the tolerance (evaluation count optionally gated
too); fingerprint changes are reported separately, because "same metrics,
different computation" is exactly what a silent generator or config drift
looks like.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "CompareTolerances",
    "ComparisonRow",
    "ComparisonResult",
    "record_key",
    "diff_records",
    "COMPARE_COLUMNS",
    "compare_rows",
]


def record_key(record: Dict) -> Tuple:
    """The identity of a job across stores (content fingerprints excluded)."""
    pipeline = record.get("pipeline")
    return (
        record.get("instance"),
        record.get("flow"),
        record.get("engine"),
        tuple(pipeline) if pipeline else None,
        record.get("seed"),
    )


@dataclass(frozen=True)
class CompareTolerances:
    """Regression thresholds: candidate-minus-baseline increases above these flag."""

    skew_ps: float = 0.05
    clr_ps: float = 0.05
    #: ``None`` disables the evaluation-count gate (wall-clock never gates).
    evaluations: Optional[int] = None


@dataclass
class ComparisonRow:
    """One matched (baseline, candidate) record pair with its deltas."""

    instance: str
    flow: str
    engine: str
    baseline: Dict
    candidate: Dict
    d_skew_ps: float
    d_clr_ps: float
    d_evaluations: int
    d_wall_clock_s: float
    regressed: bool
    fingerprint_changed: bool


@dataclass
class ComparisonResult:
    """The full diff: matched rows plus the jobs present on only one side."""

    rows: List[ComparisonRow] = field(default_factory=list)
    only_baseline: List[Dict] = field(default_factory=list)
    only_candidate: List[Dict] = field(default_factory=list)

    @property
    def regressions(self) -> List[ComparisonRow]:
        return [row for row in self.rows if row.regressed]


def _metric(record: Dict, key: str) -> float:
    return float(record.get("summary", {}).get(key) or 0.0)


def diff_records(
    baseline: Sequence[Dict],
    candidate: Sequence[Dict],
    tolerances: CompareTolerances = CompareTolerances(),
) -> ComparisonResult:
    """Match ``candidate`` records against ``baseline`` by job key and diff.

    Error records (no ``summary``) are never matched; duplicate keys keep the
    *last* record of each side, i.e. the most recent append wins.
    """
    def index(records: Sequence[Dict]) -> Dict[Tuple, Dict]:
        return {
            record_key(record): record
            for record in records
            if "summary" in record
        }

    base_index = index(baseline)
    cand_index = index(candidate)
    result = ComparisonResult()
    for key, base in base_index.items():
        cand = cand_index.get(key)
        if cand is None:
            result.only_baseline.append(base)
            continue
        d_skew = _metric(cand, "skew_ps") - _metric(base, "skew_ps")
        d_clr = _metric(cand, "clr_ps") - _metric(base, "clr_ps")
        d_evals = int(_metric(cand, "evaluations") - _metric(base, "evaluations"))
        d_wall = float(cand.get("wall_clock_s") or 0.0) - float(
            base.get("wall_clock_s") or 0.0
        )
        regressed = d_skew > tolerances.skew_ps or d_clr > tolerances.clr_ps
        if tolerances.evaluations is not None:
            regressed = regressed or d_evals > tolerances.evaluations
        result.rows.append(
            ComparisonRow(
                instance=str(base.get("instance")),
                flow=str(base.get("flow")),
                engine=str(base.get("engine")),
                baseline=base,
                candidate=cand,
                d_skew_ps=d_skew,
                d_clr_ps=d_clr,
                d_evaluations=d_evals,
                d_wall_clock_s=d_wall,
                regressed=regressed,
                fingerprint_changed=(
                    base.get("fingerprint") != cand.get("fingerprint")
                    or base.get("fingerprint") is None
                ),
            )
        )
    for key, cand in cand_index.items():
        if key not in base_index:
            result.only_candidate.append(cand)
    return result


#: Delta-table columns, consumable by :func:`repro.runner.render_table`.
COMPARE_COLUMNS = (
    ("instance", "instance", "s"),
    ("flow", "flow", "s"),
    ("engine", "engine", "s"),
    ("base_skew_ps", "base skew", ".2f"),
    ("cand_skew_ps", "cand skew", ".2f"),
    ("d_skew_ps", "d skew[ps]", "+.2f"),
    ("base_clr_ps", "base CLR", ".2f"),
    ("cand_clr_ps", "cand CLR", ".2f"),
    ("d_clr_ps", "d CLR[ps]", "+.2f"),
    ("d_evaluations", "d evals", "+d"),
    ("d_wall_clock_s", "d t[s]", "+.2f"),
    ("flag", "flag", "s"),
)


def compare_rows(result: ComparisonResult) -> List[Dict]:
    """Flatten a :class:`ComparisonResult` into :data:`COMPARE_COLUMNS` rows.

    The ``flag`` column highlights regressions (``REG``) and, separately,
    matched jobs whose content fingerprints differ (``fp!``) -- the metrics
    may agree while the computation changed.
    """
    rows: List[Dict] = []
    for row in result.rows:
        flags = []
        if row.regressed:
            flags.append("REG")
        if row.fingerprint_changed:
            flags.append("fp!")
        rows.append(
            {
                "instance": row.instance,
                "flow": row.flow,
                "engine": row.engine,
                "base_skew_ps": _metric(row.baseline, "skew_ps"),
                "cand_skew_ps": _metric(row.candidate, "skew_ps"),
                "d_skew_ps": row.d_skew_ps,
                "base_clr_ps": _metric(row.baseline, "clr_ps"),
                "cand_clr_ps": _metric(row.candidate, "clr_ps"),
                "d_clr_ps": row.d_clr_ps,
                "d_evaluations": row.d_evaluations,
                "d_wall_clock_s": row.d_wall_clock_s,
                "flag": " ".join(flags),
            }
        )
    return rows
