"""Diff two run-store selections: per-scenario metric deltas and regressions.

Records are matched by their *job key* -- (instance spec, flow, engine,
pipeline, seed) -- so a baseline store captured last week lines up with a
fresh sweep of the same matrix even though fingerprints and timestamps
differ.  A matched pair regresses when the candidate's skew or CLR exceeds
the baseline by more than the tolerance (evaluation count optionally gated
too); fingerprint changes are reported separately, because "same metrics,
different computation" is exactly what a silent generator or config drift
looks like.

Inputs may be legacy record dicts (as read back from a store) or typed
:mod:`repro.api.records` records; everything is normalized through
:func:`repro.api.records.record_from_dict` up front.  Failed jobs
(:class:`~repro.api.records.ErrorRecord`) never match -- but because error
records carry the same spec envelope as successful ones, the diff can say
*which* side a job failed on (:attr:`ComparisonResult.baseline_failures` /
:attr:`ComparisonResult.candidate_failures`) instead of lumping failures in
with never-attempted jobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.api.records import ErrorRecord, Record, RunRecord, record_from_dict

__all__ = [
    "CompareTolerances",
    "ComparisonRow",
    "ComparisonResult",
    "record_key",
    "diff_records",
    "COMPARE_COLUMNS",
    "COUNTER_COLUMNS",
    "compare_rows",
]

RecordLike = Union[Mapping[str, Any], Record]


def record_key(record: RecordLike) -> Tuple[Any, ...]:
    """The identity of a job across stores (content fingerprints excluded)."""
    parsed = record_from_dict(record)
    if isinstance(parsed, ErrorRecord):
        pipeline = parsed.envelope("pipeline")
        seed = parsed.envelope("seed")
    else:
        pipeline = getattr(parsed, "pipeline", None)
        seed = parsed.seed
    return (
        parsed.instance,
        parsed.flow,
        parsed.engine,
        tuple(pipeline) if pipeline else None,
        seed,
    )


@dataclass(frozen=True)
class CompareTolerances:
    """Regression thresholds: candidate-minus-baseline increases above these flag."""

    skew_ps: float = 0.05
    clr_ps: float = 0.05
    #: ``None`` disables the evaluation-count gate (wall-clock never gates).
    evaluations: Optional[int] = None


@dataclass
class ComparisonRow:
    """One matched (baseline, candidate) record pair with its deltas."""

    instance: str
    flow: str
    engine: str
    baseline: RunRecord
    candidate: RunRecord
    d_skew_ps: float
    d_clr_ps: float
    d_evaluations: int
    d_wall_clock_s: float
    regressed: bool
    fingerprint_changed: bool


@dataclass
class ComparisonResult:
    """The full diff: matched rows plus the jobs present on only one side."""

    rows: List[ComparisonRow] = field(default_factory=list)
    only_baseline: List[RunRecord] = field(default_factory=list)
    only_candidate: List[RunRecord] = field(default_factory=list)
    #: Failed jobs per side (never matched; reported for accounting).
    baseline_failures: List[ErrorRecord] = field(default_factory=list)
    candidate_failures: List[ErrorRecord] = field(default_factory=list)

    @property
    def regressions(self) -> List[ComparisonRow]:
        return [row for row in self.rows if row.regressed]


def _metric(record: RunRecord, key: str) -> float:
    value = getattr(record.summary, key, None) if record.summary is not None else None
    return float(value or 0.0)


def diff_records(
    baseline: Sequence[RecordLike],
    candidate: Sequence[RecordLike],
    tolerances: CompareTolerances = CompareTolerances(),
) -> ComparisonResult:
    """Match ``candidate`` records against ``baseline`` by job key and diff.

    Error records (and Monte Carlo records, which carry no Table IV summary)
    are never matched; duplicate keys keep the *last* record of each side,
    i.e. the most recent append wins.
    """
    result = ComparisonResult()

    def index(
        records: Sequence[RecordLike], failures: List[ErrorRecord]
    ) -> Dict[Tuple[Any, ...], RunRecord]:
        indexed: Dict[Tuple[Any, ...], RunRecord] = {}
        for item in records:
            record = record_from_dict(item)
            if isinstance(record, ErrorRecord):
                failures.append(record)
            elif isinstance(record, RunRecord) and record.summary is not None:
                indexed[record_key(record)] = record
        return indexed

    base_index = index(baseline, result.baseline_failures)
    cand_index = index(candidate, result.candidate_failures)
    for key, base in base_index.items():
        cand = cand_index.get(key)
        if cand is None:
            result.only_baseline.append(base)
            continue
        d_skew = _metric(cand, "skew_ps") - _metric(base, "skew_ps")
        d_clr = _metric(cand, "clr_ps") - _metric(base, "clr_ps")
        d_evals = int(_metric(cand, "evaluations") - _metric(base, "evaluations"))
        d_wall = float(cand.wall_clock_s or 0.0) - float(base.wall_clock_s or 0.0)
        regressed = d_skew > tolerances.skew_ps or d_clr > tolerances.clr_ps
        if tolerances.evaluations is not None:
            regressed = regressed or d_evals > tolerances.evaluations
        result.rows.append(
            ComparisonRow(
                instance=str(base.instance),
                flow=str(base.flow),
                engine=str(base.engine),
                baseline=base,
                candidate=cand,
                d_skew_ps=d_skew,
                d_clr_ps=d_clr,
                d_evaluations=d_evals,
                d_wall_clock_s=d_wall,
                regressed=regressed,
                fingerprint_changed=(
                    base.fingerprint != cand.fingerprint or base.fingerprint is None
                ),
            )
        )
    for key, cand in cand_index.items():
        if key not in base_index:
            result.only_candidate.append(cand)
    return result


#: Delta-table columns, consumable by :func:`repro.runner.render_table`.
COMPARE_COLUMNS = (
    ("instance", "instance", "s"),
    ("flow", "flow", "s"),
    ("engine", "engine", "s"),
    ("base_skew_ps", "base skew", ".2f"),
    ("cand_skew_ps", "cand skew", ".2f"),
    ("d_skew_ps", "d skew[ps]", "+.2f"),
    ("base_clr_ps", "base CLR", ".2f"),
    ("cand_clr_ps", "cand CLR", ".2f"),
    ("d_clr_ps", "d CLR[ps]", "+.2f"),
    ("d_evaluations", "d evals", "+d"),
    ("d_wall_clock_s", "d t[s]", "+.2f"),
    ("flag", "flag", "s"),
)

#: Extra per-row counter deltas (``repro compare --counters``): the stage
#: cache and variation gate counters that explain *why* a metric moved.
COUNTER_COLUMNS = (
    ("d_cache_hits", "d hits", "+d"),
    ("d_cache_misses", "d misses", "+d"),
    ("d_gate_checks", "d gate", "+d"),
    ("d_gate_rejections", "d gate rej", "+d"),
)


def _cache_counter(record: RunRecord, key: str) -> int:
    return int((record.evaluator_cache or {}).get(key, 0))


def _gate_counter(record: RunRecord, key: str) -> int:
    return int((record.variation_gate or {}).get(key, 0))


def compare_rows(
    result: ComparisonResult, counters: bool = False
) -> List[Dict[str, Any]]:
    """Flatten a :class:`ComparisonResult` into :data:`COMPARE_COLUMNS` rows.

    The ``flag`` column highlights regressions (``REG``) and, separately,
    matched jobs whose content fingerprints differ (``fp!``) -- the metrics
    may agree while the computation changed.  With ``counters`` set, each row
    additionally carries the :data:`COUNTER_COLUMNS` deltas (evaluator cache
    hits/misses, variation-gate checks/rejections).
    """
    rows: List[Dict[str, Any]] = []
    for row in result.rows:
        flags = []
        if row.regressed:
            flags.append("REG")
        if row.fingerprint_changed:
            flags.append("fp!")
        flat: Dict[str, Any] = {
            "instance": row.instance,
            "flow": row.flow,
            "engine": row.engine,
            "base_skew_ps": _metric(row.baseline, "skew_ps"),
            "cand_skew_ps": _metric(row.candidate, "skew_ps"),
            "d_skew_ps": row.d_skew_ps,
            "base_clr_ps": _metric(row.baseline, "clr_ps"),
            "cand_clr_ps": _metric(row.candidate, "clr_ps"),
            "d_clr_ps": row.d_clr_ps,
            "d_evaluations": row.d_evaluations,
            "d_wall_clock_s": row.d_wall_clock_s,
            "flag": " ".join(flags),
        }
        if counters:
            base, cand = row.baseline, row.candidate
            flat["d_cache_hits"] = _cache_counter(cand, "hits") - _cache_counter(
                base, "hits"
            )
            flat["d_cache_misses"] = _cache_counter(cand, "misses") - _cache_counter(
                base, "misses"
            )
            flat["d_gate_checks"] = _gate_counter(cand, "checks") - _gate_counter(
                base, "checks"
            )
            flat["d_gate_rejections"] = _gate_counter(
                cand, "rejections"
            ) - _gate_counter(base, "rejections")
        rows.append(flat)
    return rows
