"""Append-only persistent run store (one JSONL line per completed job).

Layout: a store is a directory holding ``runs.jsonl``; every line is one
envelope::

    {"schema": 1, "run_id": "...", "recorded_at": "...Z",
     "fingerprint": "<sha256>", "record": {<runner job record>}}

Appending never rewrites existing lines, so concurrent sweeps from one
process are safe and the file is a faithful experiment log -- ``repro
compare`` and the query helpers select slices of it by run id and job axes.
The schema version is per line; readers reject lines from a *newer* schema
rather than misinterpreting them.
"""

from __future__ import annotations

import json
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.api.records import Record, record_from_dict

__all__ = ["STORE_SCHEMA_VERSION", "RunStore"]

STORE_SCHEMA_VERSION = 1


class RunStore:
    """An append-only JSONL store of runner job records under one directory."""

    FILENAME = "runs.jsonl"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        # Fingerprint -> latest record, built lazily on the first
        # latest_by_fingerprint() call and maintained on append.  The file
        # size at indexing time detects out-of-band appends (another store
        # handle on the same directory): a mismatch invalidates the index
        # and the next lookup rebuilds it from the file.
        self._fingerprint_index: Optional[Dict[str, Dict]] = None
        self._indexed_bytes = -1

    @property
    def path(self) -> Path:
        return self.root / self.FILENAME

    def __len__(self) -> int:
        return len(self.entries())

    @staticmethod
    def check_run_id(run_id: str) -> str:
        """Validate a run id (callers use this up front, before long batches).

        ``@`` is the compare-selection separator and ``all`` its select-
        everything keyword, so neither can name a run -- it would be stored
        fine but unaddressable (or mis-addressed) by ``repro compare``.
        """
        if not run_id or any(c.isspace() for c in run_id):
            raise ValueError(
                f"run_id must be non-empty and whitespace-free, got {run_id!r}"
            )
        if "@" in run_id or run_id == "all":
            raise ValueError(
                f"run_id {run_id!r} is not addressable by STORE[@RUN_ID] "
                "selections ('@' and the literal 'all' are reserved)"
            )
        return run_id

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, record: Union[Dict, Record], run_id: str) -> Dict:
        """Append one job record under ``run_id``; returns the stored envelope.

        Accepts a legacy record dict or any typed :mod:`repro.api.records`
        record (serialized via its ``to_record()``).  The record is expected
        to carry its own ``fingerprint`` (the runner computes it from the
        resolved instance content and config); records without one -- e.g.
        error records -- are stored with ``null``.
        """
        if not isinstance(record, dict):
            record = record.to_record()
        self.check_run_id(run_id)
        envelope = {
            "schema": STORE_SCHEMA_VERSION,
            "run_id": run_id,
            "recorded_at": datetime.now(timezone.utc).isoformat(),
            "fingerprint": record.get("fingerprint"),
            "record": record,
        }
        self.root.mkdir(parents=True, exist_ok=True)
        size_before = self._file_size()
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(envelope, sort_keys=True) + "\n")
        if self._fingerprint_index is not None:
            if size_before == self._indexed_bytes:
                # Nothing was appended behind our back: extend in place.
                if envelope["fingerprint"] is not None:
                    self._fingerprint_index[str(envelope["fingerprint"])] = record
                self._indexed_bytes = self._file_size()
            else:
                # Out-of-band growth; drop the index and rebuild on demand.
                self._fingerprint_index = None
                self._indexed_bytes = -1
        return envelope

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def entries(
        self,
        run_id: Optional[str] = None,
        instance: Optional[str] = None,
        flow: Optional[str] = None,
        engine: Optional[str] = None,
    ) -> List[Dict]:
        """Stored envelopes, in append order, filtered by the given axes."""
        if not self.path.exists():
            return []
        selected: List[Dict] = []
        for line_number, line in enumerate(
            self.path.read_text(encoding="utf-8").splitlines(), 1
        ):
            if not line.strip():
                continue
            try:
                envelope = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{self.path}:{line_number}: corrupt store line: {exc}") from exc
            schema = envelope.get("schema")
            if not isinstance(schema, int) or schema > STORE_SCHEMA_VERSION:
                raise ValueError(
                    f"{self.path}:{line_number}: schema {schema!r} is newer than "
                    f"supported version {STORE_SCHEMA_VERSION}"
                )
            record = envelope.get("record", {})
            if run_id is not None and envelope.get("run_id") != run_id:
                continue
            if instance is not None and record.get("instance") != instance:
                continue
            if flow is not None and record.get("flow") != flow:
                continue
            if engine is not None and record.get("engine") != engine:
                continue
            selected.append(envelope)
        return selected

    def _file_size(self) -> int:
        return self.path.stat().st_size if self.path.exists() else 0

    def latest_by_fingerprint(self, fingerprint: str) -> Optional[Dict]:
        """The most recently appended record with this content fingerprint.

        Equivalent to scanning :meth:`records` backwards for a matching
        ``fingerprint`` field, but O(1) after the first call: the lookup is
        backed by an in-memory index built from the file once and maintained
        on every :meth:`append`.  Appends from *other* handles on the same
        directory are detected by file growth and trigger a rebuild, so the
        index never serves a stale miss for a record that is already on
        disk.  Error records store ``fingerprint: null`` and are therefore
        never returned -- a failure must not shadow (or impersonate) a
        completed computation.
        """
        if (
            self._fingerprint_index is None
            or self._file_size() != self._indexed_bytes
        ):
            index: Dict[str, Dict] = {}
            for envelope in self.entries():
                stored = envelope.get("fingerprint")
                if stored is not None:
                    index[str(stored)] = envelope["record"]
            self._fingerprint_index = index
            self._indexed_bytes = self._file_size()
        return self._fingerprint_index.get(fingerprint)

    def records(self, **filters: Optional[str]) -> List[Dict]:
        """The job-record payloads of :meth:`entries` (same filters)."""
        return [envelope["record"] for envelope in self.entries(**filters)]

    def typed_records(self, **filters: Optional[str]) -> List[Record]:
        """:meth:`records` parsed into typed :mod:`repro.api.records` classes."""
        return [record_from_dict(record) for record in self.records(**filters)]

    def run_ids(self) -> List[str]:
        """Distinct run ids in first-appended order."""
        seen: List[str] = []
        for envelope in self.entries():
            run_id = envelope["run_id"]
            if run_id not in seen:
                seen.append(run_id)
        return seen

    def latest_run_id(self) -> Optional[str]:
        """The most recently started run id (``None`` for an empty store)."""
        ids = self.run_ids()
        return ids[-1] if ids else None
