"""Content-addressed fingerprints of runs: what exactly did this job compute?

A stored run is keyed by a SHA-256 over everything that determines its
result: the *content* of the instance (the canonical serialization hash from
:func:`repro.workloads.format.instance_fingerprint`, not the spec string --
``ti:200`` fingerprints differently if the generator changes), the flow,
engine and pipeline, the seed, and a digest of the code-relevant
:class:`~repro.core.config.FlowConfig` knobs.  Equal fingerprints therefore
mean "same computation"; a config or generator change shows up as a
fingerprint change even when the spec strings match, which is exactly the
signal ``repro compare`` surfaces.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, Optional, Sequence

import numpy as np

__all__ = ["canonical_json", "config_digest", "job_fingerprint"]


def _jsonable(value: Any) -> Any:
    """Best-effort canonical JSON value; falls back to ``repr`` for opaques."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        # Non-compare fields are derived state (caches), not identity: two
        # configs that compare equal must digest equally.
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
            if f.compare
        }
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def canonical_json(payload: Any) -> str:
    """Deterministic JSON text: sorted keys, compact separators, no NaN drift."""
    return json.dumps(_jsonable(payload), sort_keys=True, separators=(",", ":"))


def config_digest(config: Any) -> str:
    """SHA-256 over a :class:`FlowConfig`'s canonical JSON form."""
    return hashlib.sha256(canonical_json(config).encode("utf-8")).hexdigest()


def job_fingerprint(
    *,
    instance_fingerprint: str,
    flow: str,
    engine: str,
    pipeline: Optional[Sequence[str]],
    seed: Optional[int],
    config_digest: str,
) -> str:
    """The run store's content address for one synthesis job."""
    payload = {
        "instance_fingerprint": instance_fingerprint,
        "flow": flow,
        "engine": engine,
        "pipeline": list(pipeline) if pipeline is not None else None,
        "seed": seed,
        "config_digest": config_digest,
    }
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()
