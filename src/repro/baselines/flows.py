"""Baseline clock-tree synthesis flows (the comparison points of Table IV).

The paper compares Contango against the top three teams of the ISPD'09
contest (NTU, NCTU, University of Michigan).  Those binaries are not
available, so this module provides three simpler flows with deliberately
different trade-offs that play the same role: they exercise exactly the same
evaluation machinery and capacitance/slew limits, but stop after initial
construction and buffering instead of running Contango's integrated
optimization sequence.

* :class:`GreedyBufferedBaseline` -- greedy nearest-neighbour topology,
  zero-skew DME embedding, fixed-pitch insertion of large inverters (no
  composite analysis, no sizing sweep), per-sink polarity patch.
* :class:`UnoptimizedDmeBaseline` -- the same initial tree Contango starts
  from (balanced bisection ZST + van Ginneken insertion of a single composite)
  but with *none* of the post-insertion optimizations.
* :class:`BoundedSkewBaseline` -- a bounded-skew tree that trades skew for
  wirelength up front, buffered with the large inverter.

What Table IV measures is the gap between these and the integrated flow on
CLR at comparable capacitance, which is precisely the paper's point.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.analysis.evaluator import ClockNetworkEvaluator, EvaluatorConfig
from repro.buffering.vanginneken import VanGinnekenInserter
from repro.core.config import FlowConfig
from repro.core.polarity import correct_sink_polarity, count_inverted_sinks
from repro.core.report import FlowResult, StageRecord
from repro.cts.bst import build_bounded_skew_tree
from repro.cts.dme import build_zero_skew_tree
from repro.cts.obstacle_avoid import repair_obstacle_violations
from repro.cts.spec import ClockNetworkInstance
from repro.cts.tree import ClockTree

__all__ = [
    "BaselineFlow",
    "GreedyBufferedBaseline",
    "UnoptimizedDmeBaseline",
    "BoundedSkewBaseline",
    "all_baselines",
]


class BaselineFlow:
    """Common scaffolding for the baseline flows."""

    name = "baseline"

    def __init__(self, config: Optional[FlowConfig] = None) -> None:
        self.config = config or FlowConfig()

    # ------------------------------------------------------------------
    def run(self, instance: ClockNetworkInstance) -> FlowResult:
        """Synthesize a buffered clock tree for ``instance`` and evaluate it."""
        instance.validate()
        start = time.perf_counter()
        evaluator = ClockNetworkEvaluator(
            config=EvaluatorConfig(
                engine=self.config.engine,
                max_segment_length=self.config.max_segment_length,
                slew_limit=instance.slew_limit,
                solver=self.config.solver,
            ),
            corners=self.config.corners,
            capacitance_limit=instance.capacitance_limit,
        )
        tree = self._synthesize(instance)
        inverted = count_inverted_sinks(tree)
        correction = correct_sink_polarity(
            tree,
            instance.buffer_library.smallest,
            strategy=self._polarity_strategy(),
            slew_limit=instance.slew_limit,
            stronger_inverters=[instance.buffer_library.smallest.parallel(k) for k in (2, 4, 8)],
        )
        report = evaluator.evaluate(tree)
        result = FlowResult(
            instance_name=instance.name,
            flow_name=self.name,
            tree=tree,
            final_report=report,
            chosen_buffer=self._buffer_name(),
            inverted_sinks=inverted,
            polarity_inverters_added=correction.inverters_added,
            total_evaluations=evaluator.run_count,
            runtime_s=time.perf_counter() - start,
        )
        result.stages.append(
            StageRecord.from_report("FINAL", tree, report, elapsed_s=result.runtime_s)
        )
        return result

    # Subclass hooks -----------------------------------------------------
    def _synthesize(self, instance: ClockNetworkInstance) -> ClockTree:
        raise NotImplementedError

    def _polarity_strategy(self) -> str:
        return "per-sink"

    def _buffer_name(self) -> Optional[str]:
        return None

    # Shared helpers -----------------------------------------------------
    def _buffer_tree(
        self, instance: ClockNetworkInstance, tree: ClockTree, buffer, spacing: float
    ) -> ClockTree:
        inserter = VanGinnekenInserter(
            buffer=buffer,
            slew_limit=instance.slew_limit,
            slew_margin=0.85,
            station_spacing=spacing,
            obstacles=instance.obstacles if len(instance.obstacles) else None,
            die=instance.die,
            max_options=16,
        )
        inserter.insert(tree, apply=True)
        return tree

    def _repair(self, instance: ClockNetworkInstance, tree: ClockTree, driver) -> None:
        if len(instance.obstacles) == 0:
            return
        repair_obstacle_violations(
            tree,
            instance.obstacles,
            die=instance.die,
            driver=driver,
            slew_limit=instance.slew_limit,
        )


class GreedyBufferedBaseline(BaselineFlow):
    """Greedy-merge topology + fixed large-inverter buffering, no optimization."""

    name = "greedy_buffered"

    def _synthesize(self, instance: ClockNetworkInstance) -> ClockTree:
        large = instance.buffer_library.strongest
        tree = build_zero_skew_tree(
            instance.sinks,
            instance.source,
            instance.wire_library.default,
            source_resistance=instance.source_resistance,
            topology_method="greedy",
            obstacles=instance.obstacles,
        )
        self._repair(instance, tree, large)
        return self._buffer_tree(instance, tree, large, spacing=400.0)

    def _buffer_name(self) -> Optional[str]:
        return "INV_L"


class UnoptimizedDmeBaseline(BaselineFlow):
    """Contango's initial tree and buffering, without any of its optimizations."""

    name = "unoptimized_dme"

    def _synthesize(self, instance: ClockNetworkInstance) -> ClockTree:
        composite = instance.buffer_library.by_name("INV_S").parallel(8)
        tree = build_zero_skew_tree(
            instance.sinks,
            instance.source,
            instance.wire_library.default,
            source_resistance=instance.source_resistance,
            topology_method="bisection",
            obstacles=instance.obstacles,
        )
        self._repair(instance, tree, composite)
        return self._buffer_tree(instance, tree, composite, spacing=self.config.station_spacing)

    def _polarity_strategy(self) -> str:
        return "subtree"

    def _buffer_name(self) -> Optional[str]:
        return "8X INV_S"


class BoundedSkewBaseline(BaselineFlow):
    """Bounded-skew tree (wirelength-lean, skew-heavy) with large-inverter buffering."""

    name = "bounded_skew"

    def __init__(self, config: Optional[FlowConfig] = None, skew_bound: float = 50.0) -> None:
        super().__init__(config)
        if skew_bound < 0.0:
            raise ValueError("skew bound must be non-negative")
        self.skew_bound = skew_bound

    def _synthesize(self, instance: ClockNetworkInstance) -> ClockTree:
        large = instance.buffer_library.strongest
        tree = build_bounded_skew_tree(
            instance.sinks,
            instance.source,
            instance.wire_library.default,
            skew_bound=self.skew_bound,
            source_resistance=instance.source_resistance,
            topology_method="bisection",
            obstacles=instance.obstacles,
        )
        self._repair(instance, tree, large)
        return self._buffer_tree(instance, tree, large, spacing=350.0)

    def _buffer_name(self) -> Optional[str]:
        return "INV_L"


def all_baselines(config: Optional[FlowConfig] = None) -> List[BaselineFlow]:
    """The three baseline flows compared against Contango in the Table IV bench."""
    return [
        GreedyBufferedBaseline(config),
        UnoptimizedDmeBaseline(config),
        BoundedSkewBaseline(config),
    ]
