"""Baseline clock-tree synthesis flows (the comparison points of Table IV).

The paper compares Contango against the top three teams of the ISPD'09
contest (NTU, NCTU, University of Michigan).  Those binaries are not
available, so this module provides three simpler flows with deliberately
different trade-offs that play the same role: they exercise exactly the same
evaluation machinery and capacitance/slew limits, but stop after initial
construction and buffering instead of running Contango's integrated
optimization sequence.

Each baseline is a single registered
:class:`~repro.core.pipeline.OptimizationPass` (synthesis + polarity patch,
recorded as the ``FINAL`` stage) run through the same
:class:`~repro.core.pipeline.PipelineDriver` as the integrated flow -- so a
baseline is just the one-element pipeline ``[<its pass name>]``, and the
passes can even be mixed into custom pipelines
(``FlowConfig(pipeline=["unoptimized_dme", "twsz"])`` wiresizes a baseline
tree).

* ``greedy_buffered`` -- greedy nearest-neighbour topology, zero-skew DME
  embedding, fixed-pitch insertion of large inverters (no composite
  analysis, no sizing sweep), per-sink polarity patch.
* ``unoptimized_dme`` -- the same initial tree Contango starts from
  (balanced bisection ZST + van Ginneken insertion of a single composite)
  but with *none* of the post-insertion optimizations.
* ``bounded_skew`` -- a bounded-skew tree that trades skew for wirelength up
  front, buffered with the large inverter.

What Table IV measures is the gap between these and the integrated flow on
CLR at comparable capacitance, which is precisely the paper's point.
"""

from __future__ import annotations

from typing import List, Optional

from repro.buffering.vanginneken import VanGinnekenInserter
from repro.core.config import FlowConfig
from repro.core.pipeline import OptimizationPass, PassContext, PipelineDriver, register_pass
from repro.core.polarity import correct_sink_polarity, count_inverted_sinks
from repro.core.report import FlowResult
from repro.cts.bst import build_bounded_skew_tree
from repro.cts.dme import build_zero_skew_tree
from repro.cts.obstacle_avoid import repair_obstacle_violations
from repro.cts.spec import ClockNetworkInstance
from repro.cts.tree import ClockTree
from repro.obs import TracerBase

__all__ = [
    "BaselineSynthesisPass",
    "BaselineFlow",
    "GreedyBufferedBaseline",
    "UnoptimizedDmeBaseline",
    "BoundedSkewBaseline",
    "all_baselines",
]


class BaselineSynthesisPass(OptimizationPass):
    """One-shot baseline synthesis + polarity patch, recorded as ``FINAL``."""

    stage = "FINAL"
    polarity_strategy = "per-sink"
    buffer_name: Optional[str] = None

    def run(self, ctx: PassContext) -> None:
        tree = self._synthesize(ctx)
        inverted = count_inverted_sinks(tree)
        smallest = ctx.instance.buffer_library.smallest
        correction = correct_sink_polarity(
            tree,
            smallest,
            strategy=self.polarity_strategy,
            slew_limit=ctx.instance.slew_limit,
            stronger_inverters=[smallest.parallel(k) for k in (2, 4, 8)],
        )
        ctx.tree = tree
        ctx.report = None  # the driver evaluates the fresh network for FINAL
        ctx.result.chosen_buffer = self.buffer_name
        ctx.result.inverted_sinks = inverted
        ctx.result.polarity_inverters_added = correction.inverters_added

    # Subclass hooks -----------------------------------------------------
    def _synthesize(self, ctx: PassContext) -> ClockTree:
        raise NotImplementedError

    # Shared helpers -----------------------------------------------------
    @staticmethod
    def _buffer_tree(
        ctx: PassContext, tree: ClockTree, buffer, spacing: float
    ) -> ClockTree:
        instance = ctx.instance
        inserter = VanGinnekenInserter(
            buffer=buffer,
            slew_limit=instance.slew_limit,
            slew_margin=0.85,
            station_spacing=spacing,
            obstacles=instance.obstacles if len(instance.obstacles) else None,
            die=instance.die,
            max_options=16,
        )
        inserter.insert(tree, apply=True)
        return tree

    @staticmethod
    def _repair(ctx: PassContext, tree: ClockTree, driver) -> None:
        instance = ctx.instance
        if len(instance.obstacles) == 0:
            return
        repair_obstacle_violations(
            tree,
            instance.obstacles,
            die=instance.die,
            driver=driver,
            slew_limit=instance.slew_limit,
        )


@register_pass
class GreedyBufferedSynthesisPass(BaselineSynthesisPass):
    """Greedy-merge topology + fixed large-inverter buffering, no optimization."""

    name = "greedy_buffered"
    buffer_name = "INV_L"

    def _synthesize(self, ctx: PassContext) -> ClockTree:
        instance = ctx.instance
        large = instance.buffer_library.strongest
        tree = build_zero_skew_tree(
            instance.sinks,
            instance.source,
            instance.wire_library.default,
            source_resistance=instance.source_resistance,
            topology_method="greedy",
            obstacles=instance.obstacles,
        )
        self._repair(ctx, tree, large)
        return self._buffer_tree(ctx, tree, large, spacing=400.0)


@register_pass
class UnoptimizedDmeSynthesisPass(BaselineSynthesisPass):
    """Contango's initial tree and buffering, without any of its optimizations."""

    name = "unoptimized_dme"
    polarity_strategy = "subtree"
    buffer_name = "8X INV_S"

    def _synthesize(self, ctx: PassContext) -> ClockTree:
        instance = ctx.instance
        composite = instance.buffer_library.by_name("INV_S").parallel(8)
        tree = build_zero_skew_tree(
            instance.sinks,
            instance.source,
            instance.wire_library.default,
            source_resistance=instance.source_resistance,
            topology_method="bisection",
            obstacles=instance.obstacles,
        )
        self._repair(ctx, tree, composite)
        return self._buffer_tree(
            ctx, tree, composite, spacing=ctx.config.station_spacing
        )


@register_pass
class BoundedSkewSynthesisPass(BaselineSynthesisPass):
    """Bounded-skew tree (wirelength-lean, skew-heavy) with large-inverter buffering."""

    name = "bounded_skew"
    buffer_name = "INV_L"

    def __init__(self, skew_bound: float = 50.0) -> None:
        if skew_bound < 0.0:
            raise ValueError("skew bound must be non-negative")
        self.skew_bound = skew_bound

    def _synthesize(self, ctx: PassContext) -> ClockTree:
        instance = ctx.instance
        large = instance.buffer_library.strongest
        tree = build_bounded_skew_tree(
            instance.sinks,
            instance.source,
            instance.wire_library.default,
            skew_bound=self.skew_bound,
            source_resistance=instance.source_resistance,
            topology_method="bisection",
            obstacles=instance.obstacles,
        )
        self._repair(ctx, tree, large)
        return self._buffer_tree(ctx, tree, large, spacing=350.0)


# ----------------------------------------------------------------------
# Flow-level wrappers: a baseline is a one-pass pipeline with its own name
# ----------------------------------------------------------------------
class BaselineFlow:
    """Common scaffolding: run the flow's declarative pass list."""

    name = "baseline"

    def __init__(self, config: Optional[FlowConfig] = None) -> None:
        self.config = config or FlowConfig()

    def _pipeline(self) -> List:
        """The pass list this baseline runs (registry names or instances)."""
        return [self.name]

    def run(
        self,
        instance: ClockNetworkInstance,
        tracer: Optional[TracerBase] = None,
    ) -> FlowResult:
        """Synthesize a buffered clock tree for ``instance`` and evaluate it."""
        driver = PipelineDriver(self._pipeline(), flow_name=self.name)
        return driver.run(instance, self.config, tracer=tracer)


class GreedyBufferedBaseline(BaselineFlow):
    """Greedy-merge topology + fixed large-inverter buffering, no optimization."""

    name = "greedy_buffered"


class UnoptimizedDmeBaseline(BaselineFlow):
    """Contango's initial tree and buffering, without any of its optimizations."""

    name = "unoptimized_dme"


class BoundedSkewBaseline(BaselineFlow):
    """Bounded-skew tree (wirelength-lean, skew-heavy) with large-inverter buffering."""

    name = "bounded_skew"

    def __init__(
        self, config: Optional[FlowConfig] = None, skew_bound: float = 50.0
    ) -> None:
        super().__init__(config)
        if skew_bound < 0.0:
            raise ValueError("skew bound must be non-negative")
        self.skew_bound = skew_bound

    def _pipeline(self) -> List:
        return [BoundedSkewSynthesisPass(skew_bound=self.skew_bound)]


def all_baselines(config: Optional[FlowConfig] = None) -> List[BaselineFlow]:
    """The three baseline flows compared against Contango in the Table IV bench."""
    return [
        GreedyBufferedBaseline(config),
        UnoptimizedDmeBaseline(config),
        BoundedSkewBaseline(config),
    ]
