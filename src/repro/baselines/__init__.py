"""Baseline (non-integrated) clock-tree synthesis flows for Table IV comparisons."""

from repro.baselines.flows import (
    BaselineFlow,
    BoundedSkewBaseline,
    GreedyBufferedBaseline,
    UnoptimizedDmeBaseline,
    all_baselines,
)

__all__ = [
    "BaselineFlow",
    "BoundedSkewBaseline",
    "GreedyBufferedBaseline",
    "UnoptimizedDmeBaseline",
    "all_baselines",
]
