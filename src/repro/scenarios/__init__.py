"""Scenario lab: declarative synthetic instance families and sweeps.

See :mod:`repro.scenarios.base` for the family/registry machinery and
:mod:`repro.scenarios.families` for the built-in families (importing this
package registers them).  Spec strings look like ``scenario:maze:sinks=64``
and resolve anywhere an instance spec is accepted.
"""

from repro.scenarios.base import (
    SCENARIO_REGISTRY,
    ScenarioFamily,
    ScenarioParam,
    canonical_scenario_spec,
    expand_families,
    expand_sweep,
    generate_scenario,
    get_family,
    parse_scenario_overrides,
    parse_scenario_spec,
    register_family,
    scenario_names,
)
from repro.scenarios import families as _families  # noqa: F401 -- registers built-ins

__all__ = [
    "SCENARIO_REGISTRY",
    "ScenarioFamily",
    "ScenarioParam",
    "canonical_scenario_spec",
    "expand_families",
    "expand_sweep",
    "generate_scenario",
    "get_family",
    "parse_scenario_overrides",
    "parse_scenario_spec",
    "register_family",
    "scenario_names",
]
