"""The built-in scenario families.

Four stress directions the ISPD'09/TI workloads do not cover:

* ``maze`` -- serpentine walls of routing blockage forcing long detours
  through :mod:`repro.cts.obstacle_avoid`;
* ``macros`` -- ISPD'10-style large placement blockages with a share of the
  sinks sitting on macro edges (hard-macro clock pins);
* ``strip`` -- a high-aspect-ratio die, where latency balance must be bought
  with wire snaking instead of topology symmetry;
* ``banks`` -- dense register banks with tunable cluster count and tightness,
  the degenerate-capacitance case for bottom-level merging.

Every family is registered in :data:`repro.scenarios.SCENARIO_REGISTRY` at
import time and resolves through ``scenario:<family>[:k=v,...]`` specs; die
coordinates are micrometres, matching the ISPD'09-style generators.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.cts.bufferlib import ispd09_buffer_library
from repro.cts.spec import ClockNetworkInstance
from repro.cts.topology import SinkInstance
from repro.cts.wirelib import ispd09_wire_library
from repro.geometry.obstacles import Obstacle, ObstacleSet
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.scenarios.base import ParamValue, ScenarioFamily, ScenarioParam, register_family
from repro.workloads.ispd09 import capacitance_budget

__all__ = ["MAZE", "MACROS", "STRIP", "BANKS"]


def _finish(
    name: str,
    die: Rect,
    source: Point,
    sinks: List[SinkInstance],
    obstacles: ObstacleSet,
    cap_limit_factor: float = 2.2,
    source_resistance: float = 80.0,
) -> ClockNetworkInstance:
    """Assemble an instance with the shared ISPD'09 libraries and cap budget."""
    return ClockNetworkInstance(
        name=name,
        die=die,
        source=source,
        sinks=sinks,
        obstacles=obstacles,
        wire_library=ispd09_wire_library(),
        buffer_library=ispd09_buffer_library(),
        source_resistance=source_resistance,
        capacitance_limit=capacitance_budget(die, sinks, cap_limit_factor),
        slew_limit=100.0,
    )


def _uniform_point(rng: np.random.Generator, die: Rect) -> Point:
    return Point(
        float(rng.uniform(die.xlo, die.xhi)), float(rng.uniform(die.ylo, die.yhi))
    )


def _free_sinks(
    rng: np.random.Generator,
    die: Rect,
    obstacles: ObstacleSet,
    count: int,
    cap_lo: float,
    cap_hi: float,
    prefix: str = "sink",
) -> List[SinkInstance]:
    """Uniformly scattered sinks kept off the blockages (rejection + push-out)."""
    sinks: List[SinkInstance] = []
    for index in range(count):
        position = _uniform_point(rng, die)
        attempts = 0
        while obstacles.blocks_point(position) and attempts < 40:
            position = _uniform_point(rng, die)
            attempts += 1
        if obstacles.blocks_point(position):  # heavily blocked die: walk out
            position = obstacles.push_out_of_obstacles(position, die)
        sinks.append(
            SinkInstance(
                name=f"{prefix}_{index}",
                position=position,
                capacitance=float(rng.uniform(cap_lo, cap_hi)),
            )
        )
    return sinks


# ----------------------------------------------------------------------
# maze: serpentine routing-blocked corridors
# ----------------------------------------------------------------------
def _build_maze(rng: np.random.Generator, p: Dict[str, ParamValue]) -> ClockNetworkInstance:
    size = float(p["die_um"])
    die = Rect(0.0, 0.0, size, size)
    walls = int(p["walls"])
    thickness = float(p["wall_thickness"]) * size
    opening = float(p["opening"]) * size
    # Walls sit at pitch size/(walls+1); thicker-than-pitch walls would
    # overlap each other (and eventually the die edge), so reject the
    # combination with a parameter-level error instead of letting
    # instance.validate() fail with a confusing geometry message mid-sweep.
    pitch_fraction = 1.0 / (walls + 1)
    if float(p["wall_thickness"]) >= pitch_fraction:
        raise ValueError(
            f"scenario maze: wall_thickness={p['wall_thickness']} with "
            f"walls={walls} leaves no corridor between walls; need "
            f"wall_thickness < 1/(walls+1) = {pitch_fraction:.4f}"
        )
    obstacles = ObstacleSet()
    # Vertical walls with alternating top/bottom openings: any source-to-far-
    # corridor route must serpentine, and no buffer may sit on a wall.
    for index in range(walls):
        x_center = size * (index + 1) / (walls + 1)
        xlo, xhi = x_center - thickness / 2.0, x_center + thickness / 2.0
        if index % 2 == 0:
            rect = Rect(xlo, die.ylo, xhi, die.yhi - opening)
        else:
            rect = Rect(xlo, die.ylo + opening, xhi, die.yhi)
        obstacles.add(Obstacle(rect=rect, name=f"wall{index}"))
    sinks = _free_sinks(rng, die, obstacles, int(p["sinks"]), 20.0, 80.0)
    family = MAZE  # registered below; name resolution only
    return _finish(
        family.instance_name(p), die, Point(0.0, size / 2.0), sinks, obstacles
    )


MAZE = register_family(
    ScenarioFamily(
        name="maze",
        description="serpentine blockage walls forcing long obstacle detours",
        params=(
            ScenarioParam("sinks", 48, "sink count", minimum=4),
            ScenarioParam("walls", 5, "number of blockage walls", minimum=1, maximum=64),
            ScenarioParam("die_um", 8000.0, "square die edge length [um]", minimum=500.0),
            ScenarioParam(
                "wall_thickness", 0.06, "wall thickness as a die fraction",
                minimum=0.005, maximum=0.2,
            ),
            ScenarioParam(
                "opening", 0.18, "corridor opening as a die fraction",
                minimum=0.05, maximum=0.6,
            ),
        ),
        builder=_build_maze,
    )
)


# ----------------------------------------------------------------------
# macros: blockage-heavy die with macro-edge clock pins (ISPD'10-style)
# ----------------------------------------------------------------------
def _build_macros(rng: np.random.Generator, p: Dict[str, ParamValue]) -> ClockNetworkInstance:
    size = float(p["die_um"])
    die = Rect(0.0, 0.0, size, size)
    macro_side = float(p["macro_size"]) * size
    obstacles = ObstacleSet()
    attempts = 0
    target = int(p["macros"])
    # Non-overlapping large macros via rejection sampling; a margin keeps a
    # buffer-legal channel between any two macros.
    margin = 0.02 * size
    while len(obstacles) < target and attempts < target * 200:
        attempts += 1
        width = macro_side * float(rng.uniform(0.7, 1.3))
        height = macro_side * float(rng.uniform(0.7, 1.3))
        width = min(width, 0.45 * size)
        height = min(height, 0.45 * size)
        xlo = float(rng.uniform(margin, size - width - margin))
        ylo = float(rng.uniform(margin + 0.04 * size, size - height - margin))
        rect = Rect(xlo, ylo, xlo + width, ylo + height)
        if any(rect.intersects(o.rect.expanded(margin)) for o in obstacles):
            continue
        obstacles.add(Obstacle(rect=rect, name=f"macro{len(obstacles)}"))

    total = int(p["sinks"])
    n_edge = min(int(round(total * float(p["edge_sinks"]))), total)
    sinks = _free_sinks(rng, die, obstacles, total - n_edge, 20.0, 80.0)
    macros = list(obstacles)
    for index in range(n_edge):
        rect = macros[int(rng.integers(len(macros)))].rect
        inset = 0.04 * min(rect.width, rect.height)
        side = int(rng.integers(4))
        t = float(rng.uniform(0.1, 0.9))
        # A clock pin just inside the chosen macro edge: buffers cannot reach
        # it, so the final wire stub must cross the blockage boundary.
        if side == 0:
            position = Point(rect.xlo + t * rect.width, rect.ylo + inset)
        elif side == 1:
            position = Point(rect.xlo + t * rect.width, rect.yhi - inset)
        elif side == 2:
            position = Point(rect.xlo + inset, rect.ylo + t * rect.height)
        else:
            position = Point(rect.xhi - inset, rect.ylo + t * rect.height)
        sinks.append(
            SinkInstance(
                name=f"pin_{index}",
                position=position,
                capacitance=float(rng.uniform(150.0, 300.0)),
            )
        )
    return _finish(
        MACROS.instance_name(p), die, Point(size / 2.0, 0.0), sinks, obstacles,
        cap_limit_factor=2.4,
    )


MACROS = register_family(
    ScenarioFamily(
        name="macros",
        description="large placement blockages with clock pins on macro edges",
        params=(
            ScenarioParam("sinks", 60, "total sink count", minimum=4),
            ScenarioParam("macros", 6, "number of macro blockages", minimum=1, maximum=64),
            ScenarioParam("die_um", 10000.0, "square die edge length [um]", minimum=500.0),
            ScenarioParam(
                "macro_size", 0.22, "nominal macro side as a die fraction",
                minimum=0.02, maximum=0.45,
            ),
            ScenarioParam(
                "edge_sinks", 0.35, "fraction of sinks placed on macro edges",
                minimum=0.0, maximum=1.0,
            ),
        ),
        builder=_build_macros,
    )
)


# ----------------------------------------------------------------------
# strip: high-aspect-ratio die
# ----------------------------------------------------------------------
def _build_strip(rng: np.random.Generator, p: Dict[str, ParamValue]) -> ClockNetworkInstance:
    area_um2 = float(p["area_mm2"]) * 1.0e6
    aspect = float(p["aspect"])
    width = (area_um2 * aspect) ** 0.5
    height = width / aspect
    die = Rect(0.0, 0.0, width, height)
    sinks = _free_sinks(rng, die, ObstacleSet(), int(p["sinks"]), 10.0, 40.0, prefix="ff")
    # Source at the left edge: the far end of the strip is ~aspect times
    # farther than the near end, maximally stressing latency balancing.
    return _finish(
        STRIP.instance_name(p), die, Point(0.0, height / 2.0), sinks, ObstacleSet(),
        source_resistance=60.0,
    )


STRIP = register_family(
    ScenarioFamily(
        name="strip",
        description="high-aspect-ratio die with a source at the short edge",
        params=(
            ScenarioParam("sinks", 64, "sink count", minimum=4),
            ScenarioParam("aspect", 8.0, "die width / height ratio", minimum=1.0, maximum=64.0),
            ScenarioParam("area_mm2", 9.0, "die area [mm^2]", minimum=0.01),
        ),
        builder=_build_strip,
    )
)


# ----------------------------------------------------------------------
# banks: clustered register banks
# ----------------------------------------------------------------------
def _build_banks(rng: np.random.Generator, p: Dict[str, ParamValue]) -> ClockNetworkInstance:
    size = float(p["die_um"])
    die = Rect(0.0, 0.0, size, size)
    n_clusters = int(p["clusters"])
    sigma = float(p["tightness"]) * size
    centers = [
        Point(
            float(rng.uniform(0.1 * size, 0.9 * size)),
            float(rng.uniform(0.1 * size, 0.9 * size)),
        )
        for _ in range(n_clusters)
    ]
    total = int(p["sinks"])
    n_outliers = int(round(total * float(p["outliers"])))
    sinks: List[SinkInstance] = []
    for index in range(total):
        if index < total - n_outliers:
            center = centers[index % n_clusters]  # balanced bank occupancy
            position = Point(
                min(max(center.x + float(rng.normal(0.0, sigma)), die.xlo), die.xhi),
                min(max(center.y + float(rng.normal(0.0, sigma)), die.ylo), die.yhi),
            )
        else:
            position = _uniform_point(rng, die)
        sinks.append(
            SinkInstance(
                name=f"reg_{index}",
                position=position,
                capacitance=float(rng.uniform(5.0, 20.0)),
            )
        )
    return _finish(
        BANKS.instance_name(p), die, Point(size / 2.0, 0.0), sinks, ObstacleSet(),
        source_resistance=60.0,
    )


BANKS = register_family(
    ScenarioFamily(
        name="banks",
        description="dense register banks with tunable cluster count/tightness",
        params=(
            ScenarioParam("sinks", 80, "sink count", minimum=4),
            ScenarioParam("clusters", 8, "register-bank count", minimum=1, maximum=256),
            ScenarioParam(
                "tightness", 0.02, "bank spread (sigma) as a die fraction",
                minimum=0.001, maximum=0.3,
            ),
            ScenarioParam(
                "outliers", 0.1, "fraction of sinks scattered outside the banks",
                minimum=0.0, maximum=1.0,
            ),
            ScenarioParam("die_um", 6000.0, "square die edge length [um]", minimum=500.0),
        ),
        builder=_build_banks,
    )
)
