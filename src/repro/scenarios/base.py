"""Declarative scenario families: parameterized synthetic instance generators.

A :class:`ScenarioFamily` is a named, documented recipe that turns a small
parameter dictionary into a :class:`~repro.cts.spec.ClockNetworkInstance`,
deterministically: the random stream is derived via :mod:`repro.seeding` from
the family name plus the *resolved* parameters, so equal specs always produce
bit-identical instances (pinned by ``tests/golden/instance_fingerprints.json``)
and any parameter change yields a statistically independent instance.

Families register themselves in :data:`SCENARIO_REGISTRY` and are addressable
everywhere an instance spec is accepted (``repro run``, ``repro sweep``, the
:class:`~repro.runner.BatchRunner`) as::

    scenario:<family>                      # all defaults
    scenario:<family>:k1=v1,k2=v2          # overrides, any order

:func:`expand_sweep` turns one family plus per-parameter value lists into the
cross product of canonical spec strings -- the substrate of ``repro sweep``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cts.spec import ClockNetworkInstance
from repro.seeding import DEFAULT_SEED, derive_rng

__all__ = [
    "ScenarioParam",
    "ScenarioFamily",
    "SCENARIO_REGISTRY",
    "register_family",
    "get_family",
    "scenario_names",
    "parse_scenario_overrides",
    "parse_scenario_spec",
    "generate_scenario",
    "canonical_scenario_spec",
    "expand_sweep",
    "expand_families",
]

ParamValue = Union[int, float, str]


@dataclass(frozen=True)
class ScenarioParam:
    """One tunable knob of a scenario family.

    The default's type (int / float / str) doubles as the parameter's type:
    spec-string values are coerced to it, so ``sinks=64`` parses to an int
    and ``tightness=0.05`` to a float.
    """

    name: str
    default: ParamValue
    doc: str = ""
    minimum: Optional[float] = None
    maximum: Optional[float] = None

    def coerce(self, raw: Any) -> ParamValue:
        """Convert ``raw`` (possibly a spec-string token) to this parameter's type."""
        kind = type(self.default)
        try:
            if kind is bool:  # future-proofing; no current param is bool
                value: ParamValue = raw in (True, 1, "1", "true", "True")
            elif kind is int:
                value = int(raw)
            elif kind is float:
                value = float(raw)
            else:
                value = str(raw)
        except (TypeError, ValueError):
            raise ValueError(
                f"parameter {self.name}={raw!r} is not a valid {kind.__name__}"
            ) from None
        if self.minimum is not None and value < self.minimum:
            raise ValueError(f"parameter {self.name}={value} below minimum {self.minimum}")
        if self.maximum is not None and value > self.maximum:
            raise ValueError(f"parameter {self.name}={value} above maximum {self.maximum}")
        return value


#: Implicit parameter present on every family: the instance seed.
SEED_PARAM = ScenarioParam(
    "seed", int(DEFAULT_SEED), "instance seed (independent stream per value)"
)


@dataclass(frozen=True)
class ScenarioFamily:
    """A named synthetic-instance recipe with typed, documented parameters.

    ``builder(rng, params)`` receives a :mod:`repro.seeding`-derived generator
    and the fully resolved parameter dict, and returns the instance; it never
    seeds anything itself, so determinism is owned entirely by this class.
    """

    name: str
    description: str
    params: Tuple[ScenarioParam, ...]
    builder: Callable[[np.random.Generator, Dict[str, ParamValue]], ClockNetworkInstance] = field(
        repr=False
    )

    def __post_init__(self) -> None:
        names = [p.name for p in self.params]
        if len(set(names)) != len(names):
            raise ValueError(f"family {self.name}: duplicate parameter names {names}")
        if "seed" in names:
            raise ValueError(f"family {self.name}: 'seed' is implicit, do not declare it")
        object.__setattr__(self, "params", (*self.params, SEED_PARAM))

    def param(self, name: str) -> ScenarioParam:
        for param in self.params:
            if param.name == name:
                return param
        raise KeyError(
            f"scenario family {self.name!r} has no parameter {name!r}; "
            f"available: {[p.name for p in self.params]}"
        )

    def defaults(self) -> Dict[str, ParamValue]:
        return {p.name: p.default for p in self.params}

    def resolve(self, overrides: Mapping[str, Any]) -> Dict[str, ParamValue]:
        """Defaults merged with coerced ``overrides``; unknown names raise."""
        resolved = self.defaults()
        for name, raw in overrides.items():
            resolved[name] = self.param(name).coerce(raw)
        return resolved

    def generate(self, **overrides: Any) -> ClockNetworkInstance:
        """Build the instance for ``overrides`` (validated before returning)."""
        params = self.resolve(overrides)
        # Every resolved parameter is a derivation key: two specs differing in
        # any parameter draw independent streams, while the same spec -- no
        # matter how the overrides were spelled -- replays the same one.
        keys = [f"{k}={params[k]}" for k in sorted(params) if k != "seed"]
        rng = derive_rng(int(params["seed"]), "scenario", self.name, *keys)
        instance = self.builder(rng, params)
        instance.validate()
        return instance

    def instance_name(self, params: Mapping[str, ParamValue]) -> str:
        """Deterministic instance name: family plus the non-default overrides."""
        tags = [
            f"{k}{params[k]}"
            for k in sorted(params)
            if params[k] != self.param(k).default
        ]
        return "_".join([f"scn_{self.name}"] + tags)


# ----------------------------------------------------------------------
# Registry and spec strings
# ----------------------------------------------------------------------
SCENARIO_REGISTRY: Dict[str, ScenarioFamily] = {}


def register_family(family: ScenarioFamily) -> ScenarioFamily:
    """Add ``family`` to :data:`SCENARIO_REGISTRY` (duplicate names raise)."""
    if family.name in SCENARIO_REGISTRY:
        raise ValueError(f"scenario family {family.name!r} already registered")
    SCENARIO_REGISTRY[family.name] = family
    return family


def get_family(name: str) -> ScenarioFamily:
    try:
        return SCENARIO_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario family {name!r}; available: {scenario_names()}"
        ) from None


def scenario_names() -> List[str]:
    """Registered family names, sorted."""
    return sorted(SCENARIO_REGISTRY)


def parse_scenario_overrides(spec: str) -> Tuple[ScenarioFamily, Dict[str, str]]:
    """Parse ``[scenario:]<family>[:k=v,...]`` into (family, raw overrides).

    The overrides dict holds only the parameters the spec *explicitly* names
    (unvalidated beyond syntax) -- callers that need to know whether e.g.
    ``seed`` was given use this; :func:`parse_scenario_spec` resolves to the
    full parameter set.
    """
    body = spec[len("scenario:"):] if spec.startswith("scenario:") else spec
    family_name, _, param_text = body.partition(":")
    family = get_family(family_name)
    overrides: Dict[str, str] = {}
    if param_text:
        for item in param_text.split(","):
            key, eq, value = item.partition("=")
            if not eq or not key or not value:
                raise ValueError(
                    f"bad scenario parameter {item!r} in {spec!r}; expected k=v"
                )
            if key in overrides:
                raise ValueError(f"duplicate scenario parameter {key!r} in {spec!r}")
            overrides[key] = value
    return family, overrides


def parse_scenario_spec(spec: str) -> Tuple[ScenarioFamily, Dict[str, ParamValue]]:
    """Parse ``[scenario:]<family>[:k=v,...]`` into (family, resolved params)."""
    family, overrides = parse_scenario_overrides(spec)
    return family, family.resolve(overrides)


def canonical_scenario_spec(
    family: ScenarioFamily,
    params: Mapping[str, ParamValue],
    keep: Sequence[str] = (),
) -> str:
    """The normalized spec string: sorted non-default parameters only.

    Parameters named in ``keep`` are emitted even at their default value --
    sweeps use this for ``seed``, because an elided default seed would fall
    through to the job-level ``--seed`` override in
    :func:`repro.runner.resolve_instance` and silently change the instance.
    """
    resolved = family.resolve(params)
    tags = [
        f"{k}={resolved[k]}"
        for k in sorted(resolved)
        if k in keep or resolved[k] != family.param(k).default
    ]
    if not tags:
        return f"scenario:{family.name}"
    return f"scenario:{family.name}:" + ",".join(tags)


def generate_scenario(spec: str) -> ClockNetworkInstance:
    """Materialize the instance a ``scenario:`` spec string names."""
    family, params = parse_scenario_spec(spec)
    return family.generate(**params)


def expand_sweep(
    family_name: str,
    base: Optional[Mapping[str, Any]] = None,
    sweeps: Optional[Mapping[str, Sequence[Any]]] = None,
) -> List[str]:
    """Cross-product parameter sweep over one family, as canonical specs.

    ``base`` fixes parameters for every point; ``sweeps`` maps parameter
    names to value lists.  Sweep axes are ordered by parameter name so the
    expansion is independent of dict ordering; values keep their given order.
    """
    family = get_family(family_name)
    base = dict(base or {})
    base_params = family.resolve(base)
    sweeps = dict(sweeps or {})
    for name in sweeps:
        family.param(name)  # unknown-parameter check up front
        if name in base:
            raise ValueError(
                f"parameter {name!r} is both fixed and swept; drop one of the two"
            )
        if not sweeps[name]:
            raise ValueError(f"sweep over {name!r} has no values")
    axes = sorted(sweeps)
    # An explicitly requested seed must survive into the spec string even at
    # its default value, or the job-level --seed override would replace it.
    keep = ("seed",) if "seed" in sweeps or "seed" in base else ()
    specs: List[str] = []
    for values in product(*(sweeps[axis] for axis in axes)):
        point = dict(base_params)
        point.update(dict(zip(axes, values)))
        specs.append(canonical_scenario_spec(family, point, keep=keep))
    return specs


def expand_families(
    families: Sequence[str],
    base: Optional[Mapping[str, Any]] = None,
    sweeps: Optional[Mapping[str, Sequence[Any]]] = None,
) -> List[str]:
    """:func:`expand_sweep` over several families, concatenated in order.

    The shared ``base``/``sweeps`` apply to every family (each validates them
    against its own parameter set); every family is looked up *before* any
    expansion so an unknown name fails fast, ahead of long synthesis batches.
    This is the scenario half of :meth:`repro.api.jobs.JobMatrix.expand`.
    """
    for name in families:
        get_family(name)
    specs: List[str] = []
    for name in families:
        specs.extend(expand_sweep(name, base, sweeps))
    return specs
