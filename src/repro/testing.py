"""Deterministic instance/tree builders shared by tests and benchmarks.

These helpers used to live in ``tests/conftest.py``, but importing them as
``from conftest import ...`` breaks when pytest collects from the repository
root: both ``tests/`` and ``benchmarks/`` ship a ``conftest.py``, both
directories land on ``sys.path``, and the module name ``conftest`` resolves to
whichever was imported first.  Hosting the builders inside the installed
``repro`` package gives them a collision-free import path
(``from repro.testing import make_small_instance``) that works from any
rootdir, in any embedding project, and without ``sys.path`` hacks.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.cts import ClockTree, Sink, ispd09_buffer_library, ispd09_wire_library
from repro.cts.dme import build_zero_skew_tree
from repro.cts.spec import ClockNetworkInstance
from repro.cts.topology import SinkInstance
from repro.geometry import Obstacle, ObstacleSet, Point, Rect

__all__ = [
    "make_sinks",
    "tree_fingerprint",
    "make_small_instance",
    "make_manual_tree",
    "make_zst_tree",
]


def make_sinks(
    count: int, die: Rect, seed: int = 7, cap_range: Tuple[float, float] = (15.0, 45.0)
) -> List[SinkInstance]:
    """Deterministic random sinks inside ``die``."""
    # repro: lint-ok[unseeded-rng] pinned legacy fixture stream; goldens depend on it
    rng = random.Random(seed)
    return [
        SinkInstance(
            name=f"s{i}",
            position=Point(rng.uniform(die.xlo, die.xhi), rng.uniform(die.ylo, die.yhi)),
            capacitance=rng.uniform(*cap_range),
        )
        for i in range(count)
    ]


def make_small_instance(
    sink_count: int = 24,
    with_obstacles: bool = True,
    seed: int = 7,
    die_size: float = 3000.0,
) -> ClockNetworkInstance:
    """A small, fast-to-evaluate clock-network instance."""
    die = Rect(0.0, 0.0, die_size, die_size)
    obstacles = ObstacleSet()
    if with_obstacles:
        obstacles.add(Obstacle(Rect(0.3 * die_size, 0.4 * die_size, 0.5 * die_size, 0.6 * die_size), name="blk0"))
        obstacles.add(Obstacle(Rect(0.65 * die_size, 0.15 * die_size, 0.8 * die_size, 0.35 * die_size), name="blk1"))
    # repro: lint-ok[unseeded-rng] pinned legacy fixture stream; goldens depend on it
    rng = random.Random(seed)
    sinks = []
    while len(sinks) < sink_count:
        p = Point(rng.uniform(0.0, die_size), rng.uniform(0.0, die_size))
        if obstacles.blocks_point(p):
            continue
        sinks.append(SinkInstance(f"s{len(sinks)}", p, rng.uniform(15.0, 45.0)))
    instance = ClockNetworkInstance(
        name="unit_test_block",
        die=die,
        source=Point(die_size / 2.0, 0.0),
        sinks=sinks,
        obstacles=obstacles,
        capacitance_limit=45000.0,
    )
    instance.validate()
    return instance


def make_manual_tree() -> ClockTree:
    """A tiny hand-built buffered tree: source -> buffer -> two sinks + one near sink."""
    wires = ispd09_wire_library()
    buffers = ispd09_buffer_library()
    tree = ClockTree(Point(0.0, 0.0), source_resistance=80.0, default_wire=wires.widest)
    hub = tree.add_internal(tree.root_id, Point(400.0, 0.0))
    tree.place_buffer(hub, buffers.by_name("INV_S").parallel(8))
    tree.add_sink(hub, Point(800.0, 250.0), Sink("a", 20.0))
    tree.add_sink(hub, Point(800.0, -250.0), Sink("b", 25.0))
    tree.add_sink(tree.root_id, Point(120.0, 100.0), Sink("c", 30.0))
    tree.validate()
    return tree


def make_zst_tree(sink_count: int = 24, seed: int = 7, die_size: float = 3000.0) -> ClockTree:
    """A zero-skew DME tree over random sinks (unbuffered)."""
    die = Rect(0.0, 0.0, die_size, die_size)
    sinks = make_sinks(sink_count, die, seed=seed)
    return build_zero_skew_tree(
        sinks, Point(die_size / 2.0, 0.0), ispd09_wire_library().widest, source_resistance=80.0
    )


def tree_fingerprint(tree: ClockTree) -> tuple:
    """Hashable digest of a tree's complete state, journal revisions included.

    Two equal fingerprints mean identical topology, geometry, electrical
    content *and* cache identity (node/structure revisions), which is exactly
    what an IVC rollback must restore.  Used by the transaction property
    tests; cheap enough for unit-test-sized trees only.
    """
    nodes = []
    for node in sorted(tree.nodes(), key=lambda n: n.node_id):
        nodes.append(
            (
                node.node_id,
                node.parent,
                tuple(node.children),
                node.kind.value,
                (node.position.x, node.position.y),
                None
                if node.sink is None
                else (node.sink.name, node.sink.capacitance, node.sink.required_polarity),
                None
                if node.buffer is None
                else (node.buffer.name, node.buffer.input_cap, node.buffer.output_res),
                None if node.wire_type is None else node.wire_type.name,
                node.snake_length,
                tuple((p.x, p.y) for p in node.route),
                tree.node_revision(node.node_id),
            )
        )
    return (tree.root_id, tree.structure_revision, tuple(nodes))
