"""Parallel batch runner: fan a job matrix across worker processes.

One *job* is one synthesis run -- an instance spec ("ti:200",
"ispd09:ispd09f22", "scenario:maze:sinks=64", optionally scaled), a flow (the
integrated Contango pipeline or one of the Table IV baselines), an evaluation
engine, and an optional custom pass pipeline.  Job identity lives in the
unified :mod:`repro.api.jobs` model (:class:`JobSpec`, :class:`McJobSpec`,
expanded from a :class:`~repro.api.jobs.JobMatrix`); this module owns the
*execution* side: materializing instances, running flows, and fanning jobs
across a :class:`~concurrent.futures.ProcessPoolExecutor` while streaming one
typed :mod:`repro.api.records` record per job as it completes.

Monte Carlo variation jobs (:class:`McJobSpec`) synthesize the network and
then evaluate it under thousands of sampled supply/process scenarios
(:meth:`~repro.analysis.evaluator.ClockNetworkEvaluator.evaluate_yield`),
with a per-job :class:`numpy.random.Generator` derived deterministically
from the base seed plus the job's identity (see :mod:`repro.seeding`), so a
whole instance x flow x sample-count matrix is bit-reproducible from one
``--seed`` no matter how it is scheduled across workers.

Workers regenerate their instance from the spec (the generators are seeded
and deterministic), so nothing heavier than a tiny dataclass crosses the
process boundary in either direction.

The module is the substrate of :class:`repro.api.service.SynthesisService`
(whose warm pool streams through the shared :func:`dispatch_jobs` loop), of
the ``python -m repro`` command line (see :mod:`repro.cli`), and of
``benchmarks/perf_smoke.py`` / ``benchmarks/variation_smoke.py``.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import Executor, ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.analysis import ClockNetworkEvaluator, EvaluatorConfig
from repro.analysis.variation import VariationModel, default_variation_model
from repro.api.jobs import Job, JobSpec, McJobSpec, sanitize_spec
from repro.api.records import (
    MC_TABLE_COLUMNS,
    RUN_SUMMARY_COLUMNS,
    STAGE_TABLE_COLUMNS,
    ErrorRecord,
    McRecord,
    Record,
    RunRecord,
    RunSummary,
    YieldSummary,
    mc_table_row,
    record_from_dict,
)
from repro.baselines import all_baselines
from repro.core import ContangoFlow, FlowConfig
from repro.core.report import FlowResult
from repro.cts.spec import ClockNetworkInstance
from repro.obs import NULL_TRACER, Tracer, TracerBase, summarize
from repro.scenarios import parse_scenario_overrides
from repro.seeding import derive_rng
from repro.store.fingerprint import config_digest, job_fingerprint
from repro.workloads import (
    generate_ispd09_benchmark,
    generate_ti_benchmark,
    instance_fingerprint,
    read_instance,
)

__all__ = [
    "JobSpec",
    "McJobSpec",
    "sanitize_spec",
    "JobError",
    "BatchResult",
    "BatchRunner",
    "available_flows",
    "resolve_instance",
    "job_flow_config",
    "mc_flow_config",
    "spec_fingerprint",
    "run_job",
    "run_mc_job",
    "execute_job",
    "execute_job_guarded",
    "execute_job_traced",
    "run_mc_job_guarded",
    "dispatch_jobs",
    "error_record",
    "variation_model_for",
    "render_table",
    "table_iii",
    "table_iv",
    "table_mc",
]


class JobError(RuntimeError):
    """A job failed inside a worker; carries the worker-side traceback."""


def available_flows() -> List[str]:
    """Runnable flow names: the integrated flow plus the Table IV baselines."""
    return ["contango"] + [flow.name for flow in all_baselines()]


def resolve_instance(spec: Job) -> ClockNetworkInstance:
    """Materialize the instance a job spec names."""
    kind, _, rest = spec.instance.partition(":")
    if kind == "ti":
        if not rest.isdigit():
            raise ValueError(f"ti instance spec needs a sink count, got {spec.instance!r}")
        if spec.seed is not None:
            return generate_ti_benchmark(int(rest), seed=spec.seed)
        return generate_ti_benchmark(int(rest))
    if kind == "ispd09":
        name, _, scale = rest.partition(":")
        return generate_ispd09_benchmark(name, sink_scale=float(scale) if scale else None)
    if kind == "scenario":
        family, overrides = parse_scenario_overrides(spec.instance)
        params = family.resolve(overrides)
        # An explicit seed= inside the spec pins the instance; otherwise the
        # job seed selects the scenario variant, mirroring the ti: behavior.
        if spec.seed is not None and "seed" not in overrides:
            params["seed"] = spec.seed
        return family.generate(**params)
    if kind == "file":
        return read_instance(rest)
    raise ValueError(
        f"unknown instance spec {spec.instance!r}; use ti:<sinks>, "
        f"ispd09:<name>[:<scale>], scenario:<family>[:k=v,...] or file:<path>"
    )


def _make_flow(flow_name: str, config: FlowConfig) -> object:
    if flow_name == "contango":
        return ContangoFlow(config)
    for baseline in all_baselines(config):
        if baseline.name == flow_name:
            return baseline
    raise ValueError(f"unknown flow {flow_name!r}; available: {available_flows()}")


def job_flow_config(spec: JobSpec) -> FlowConfig:
    """The exact :class:`FlowConfig` :func:`run_job` executes ``spec`` under.

    Factored out so the serving layer can digest the same config a worker
    will use -- :func:`spec_fingerprint` must agree bit-for-bit with the
    ``fingerprint`` field of the record the job eventually produces, and the
    only way to guarantee that is to build the config in exactly one place.
    """
    config = FlowConfig(engine=spec.engine, seed=spec.seed)
    if spec.pipeline is not None:
        config.pipeline = list(spec.pipeline)
    return config


def run_job(spec: JobSpec, tracer: Optional[Tracer] = None) -> RunRecord:
    """Execute one synthesis job and return its typed result record.

    Module-level (not a method) so the process pool can pickle it by
    reference; the instance is regenerated in the worker from the spec.
    Passing a live ``tracer`` records the job as one ``job`` span tree and
    attaches its :class:`~repro.obs.TraceSummary` to the record.
    """
    active: TracerBase = NULL_TRACER if tracer is None else tracer
    # wall_clock_s record field; span attribution flows through the tracer.
    start = time.perf_counter()  # repro: lint-ok[untimed-wallclock]
    with active.span("job"):
        with active.span("resolve_instance"):
            instance = resolve_instance(spec)
        # The job seed doubles as the flow's base seed, so every stochastic
        # component downstream (variation gates, MC sampling) derives from it.
        config = job_flow_config(spec)
        result: FlowResult = _make_flow(spec.flow, config).run(  # type: ignore[attr-defined]
            instance, tracer=tracer
        )
        # Content-address the computation for the run store: the instance's
        # canonical-serialization hash (not the spec string) plus the config
        # digest, so generator or config drift changes the fingerprint even
        # when the spec text stays the same.
        with active.span("fingerprint"):
            instance_fp = instance_fingerprint(instance)
            config_fp = config_digest(config)
            fingerprint = job_fingerprint(
                instance_fingerprint=instance_fp,
                flow=spec.flow,
                engine=spec.engine,
                pipeline=spec.pipeline,
                seed=spec.seed,
                config_digest=config_fp,
            )
    return RunRecord(
        job=spec.label,
        instance=spec.instance,
        flow=spec.flow,
        engine=spec.engine,
        pipeline=list(spec.pipeline) if spec.pipeline is not None else None,
        seed=spec.seed,
        instance_fingerprint=instance_fp,
        config_digest=config_fp,
        fingerprint=fingerprint,
        sinks=instance.sink_count,
        summary=result.typed_summary(),
        stage_table=list(result.stages),
        pass_notes={name: list(p.notes) for name, p in result.pass_results.items()},
        evaluator_cache=result.evaluator_cache,
        wall_clock_s=time.perf_counter() - start,  # repro: lint-ok[untimed-wallclock]
        variation_gate=result.variation_gate or None,
        trace=summarize(tracer).to_record() if tracer is not None else None,
    )


def error_record(spec: Job, detail: str) -> ErrorRecord:
    """The failure record of one job, carrying the full spec envelope.

    Unlike the hand-rolled dicts of earlier revisions, error records keep the
    job-identity axes (``pipeline``, ``seed``, the Monte Carlo dimensions) so
    ``repro compare`` can line a failed job up against its baseline
    counterpart instead of silently dropping it from the accounting.
    """
    record = ErrorRecord(
        job=spec.label,
        instance=spec.instance,
        flow=spec.flow,
        engine=spec.engine,
        error=detail,
        pipeline=list(spec.pipeline) if spec.pipeline is not None else None,
        seed=spec.seed,
    )
    if isinstance(spec, McJobSpec):
        record.samples = spec.samples
        record.family = spec.family
        record.gated = spec.gated
    return record


# ----------------------------------------------------------------------
# Monte Carlo variation jobs
# ----------------------------------------------------------------------
def variation_model_for(spec: McJobSpec, config: FlowConfig) -> VariationModel:
    """The variation model an MC job samples from.

    The corner-anchored family spans the flow's own corner set (so the sweep
    covers exactly the supplies the nominal optimization saw); the other
    families use the stock sigma budget.
    """
    if spec.family == "corner_anchored":
        return VariationModel.from_corners(config.corners)
    return default_variation_model(family=spec.family)


def mc_flow_config(spec: McJobSpec) -> FlowConfig:
    """The exact :class:`FlowConfig` :func:`run_mc_job` synthesizes under.

    Always carries the variation model instance (the gate must screen against
    the same distribution the job reports, so one model serves both the gated
    synthesis and the final sweep); shared with :func:`spec_fingerprint` so
    the serving layer digests the config a worker will actually run.
    """
    config = FlowConfig(engine=spec.engine, seed=spec.seed)
    config.variation_skew_limit_ps = spec.skew_limit_ps
    config.variation_model = variation_model_for(spec, config)
    if spec.gate_samples is not None:
        config.variation_samples = spec.gate_samples
    if spec.pipeline is not None:
        config.pipeline = list(spec.pipeline)
    elif spec.gated:  # spec validation guarantees flow == "contango" here
        from repro.core.config import VARIATION_PIPELINE

        config.pipeline = list(VARIATION_PIPELINE)
    return config


def run_mc_job(spec: McJobSpec, tracer: Optional[Tracer] = None) -> McRecord:
    """Synthesize one network and Monte Carlo-evaluate its skew yield.

    The sampling generator is derived from the job seed plus the job's
    identity keys, so every job of a matrix draws an independent, scheduling-
    invariant stream and re-running with the same ``--seed`` is
    bit-reproducible.
    """
    active: TracerBase = NULL_TRACER if tracer is None else tracer
    start = time.perf_counter()  # repro: lint-ok[untimed-wallclock]
    with active.span("job"):
        with active.span("resolve_instance"):
            instance = resolve_instance(JobSpec(instance=spec.instance))
        config = mc_flow_config(spec)
        model = config.variation_model
        assert model is not None  # mc_flow_config always sets it
        result: FlowResult = _make_flow(spec.flow, config).run(  # type: ignore[attr-defined]
            instance, tracer=tracer
        )
        tree = result.require_tree()

        evaluator = ClockNetworkEvaluator(
            config=EvaluatorConfig(
                engine=spec.engine,
                max_segment_length=config.max_segment_length,
                slew_limit=instance.slew_limit,
            ),
            corners=config.corners,
            capacitance_limit=instance.capacitance_limit,
        )
        evaluator.tracer = active
        rng = derive_rng(spec.seed, spec.instance, spec.flow, spec.family, spec.samples)
        with active.span("yield_sweep") as sweep_span:
            report = evaluator.evaluate_yield(
                tree,
                model,
                samples=spec.samples,
                rng=rng,
                skew_limit_ps=spec.skew_limit_ps,
            )
            if sweep_span is not None:
                sweep_span.count("samples", spec.samples)
    return McRecord(
        job=spec.label,
        instance=spec.instance,
        flow=spec.flow,
        engine=spec.engine,
        samples=spec.samples,
        family=spec.family,
        seed=spec.seed,
        gated=spec.gated,
        sinks=instance.sink_count,
        yield_=YieldSummary.from_record(report.summary()),
        nominal=result.typed_summary(),
        wall_clock_s=time.perf_counter() - start,  # repro: lint-ok[untimed-wallclock]
        variation_gate=result.variation_gate or None,
        trace=summarize(tracer).to_record() if tracer is not None else None,
    )


def spec_fingerprint(spec: Job) -> str:
    """Content fingerprint of ``spec`` *without executing it*.

    For a :class:`JobSpec` this is bit-identical to the ``fingerprint`` field
    :func:`run_job` puts on the job's record (same resolved-instance hash,
    same config digest), so it doubles as the lookup key into a
    :class:`~repro.store.RunStore` -- the serving layer's result cache
    resolves "has this exact computation already run?" before paying for a
    worker.  :class:`McRecord` carries no fingerprint field, so Monte Carlo
    jobs get a serve-side key instead: the same payload hash re-keyed over
    the MC axes (samples/family/skew limit/gating), which can never collide
    with a plain synthesis fingerprint because the inner hash replaces the
    instance fingerprint.
    """
    if isinstance(spec, McJobSpec):
        config = mc_flow_config(spec)
        instance = resolve_instance(JobSpec(instance=spec.instance))
        base = job_fingerprint(
            instance_fingerprint=instance_fingerprint(instance),
            flow=spec.flow,
            engine=spec.engine,
            pipeline=spec.pipeline,
            seed=spec.seed,
            config_digest=config_digest(config),
        )
        return job_fingerprint(
            instance_fingerprint=base,
            flow=spec.flow,
            engine=spec.engine,
            pipeline=spec.pipeline,
            seed=spec.seed,
            config_digest=config_digest(
                {
                    "mc": {
                        "samples": spec.samples,
                        "family": spec.family,
                        "skew_limit_ps": spec.skew_limit_ps,
                        "gated": spec.gated,
                        "gate_samples": spec.gate_samples,
                    }
                }
            ),
        )
    if isinstance(spec, JobSpec):
        instance = resolve_instance(spec)
        return job_fingerprint(
            instance_fingerprint=instance_fingerprint(instance),
            flow=spec.flow,
            engine=spec.engine,
            pipeline=spec.pipeline,
            seed=spec.seed,
            config_digest=config_digest(job_flow_config(spec)),
        )
    raise TypeError(f"not a fingerprintable job spec: {spec!r}")


# ----------------------------------------------------------------------
# Worker entry points
# ----------------------------------------------------------------------
def execute_job(spec: Job) -> Union[RunRecord, McRecord]:
    """Run one job of either kind and return its typed record."""
    if isinstance(spec, McJobSpec):
        return run_mc_job(spec)
    if isinstance(spec, JobSpec):
        return run_job(spec)
    raise TypeError(f"not an executable job spec: {spec!r}")


def execute_job_guarded(spec: Job) -> Record:
    """Worker entry point: never raises, so one bad job cannot kill the batch.

    Handles synthesis and Monte Carlo jobs alike -- the one default worker of
    :class:`BatchRunner` and :class:`~repro.api.service.SynthesisService`.
    """
    try:
        return execute_job(spec)
    except Exception:
        return error_record(spec, traceback.format_exc())


def execute_job_traced(spec: Job) -> Record:
    """Guarded worker that runs every job under a fresh :class:`Tracer`.

    The span tree is folded into the record's ``trace`` summary before the
    record crosses the process boundary, so tracing a pool-fanned batch needs
    no extra IPC -- workers serialize their spans back alongside the result.
    """
    try:
        if isinstance(spec, McJobSpec):
            return run_mc_job(spec, tracer=Tracer())
        if isinstance(spec, JobSpec):
            return run_job(spec, tracer=Tracer())
        raise TypeError(f"not an executable job spec: {spec!r}")
    except Exception:
        return error_record(spec, traceback.format_exc())


#: Backward-compatible aliases for the historical per-kind guarded workers.
_run_job_guarded = execute_job_guarded
run_mc_job_guarded = execute_job_guarded


def dispatch_jobs(
    pool: Executor,
    jobs: Sequence[Job],
    worker: Callable[[Job], Record] = execute_job_guarded,
) -> Iterator[Tuple[int, Record]]:
    """Fan ``jobs`` across ``pool``, yielding ``(index, record)`` as each completes.

    The one submit/as_completed loop shared by :class:`BatchRunner` and
    :class:`~repro.api.service.SynthesisService`: a failure raised by the
    pool *infrastructure* (a dead worker, a broken pipe) -- as opposed to the
    job, which the guarded worker already catches -- is converted into an
    :class:`~repro.api.records.ErrorRecord` for its job instead of killing
    the whole batch.
    """
    futures = {pool.submit(worker, spec): index for index, spec in enumerate(jobs)}
    for future in as_completed(futures):
        index = futures[future]
        try:
            yield index, future.result()
        except Exception:
            yield index, error_record(jobs[index], traceback.format_exc())


# ----------------------------------------------------------------------
# The batch runner
# ----------------------------------------------------------------------
@dataclass
class BatchResult:
    """Outcome of one batch: per-job typed records (in job order) plus timing."""

    records: List[Record]
    wall_clock_s: float
    workers: int

    @property
    def failures(self) -> List[ErrorRecord]:
        return [record for record in self.records if isinstance(record, ErrorRecord)]

    @property
    def summaries(self) -> List[RunSummary]:
        return [
            record.summary
            for record in self.records
            if isinstance(record, RunRecord) and record.summary is not None
        ]


class BatchRunner:
    """Fans a list of job specs across worker processes.

    ``max_workers=1`` runs in-process (no pool overhead, deterministic log
    order); anything higher uses a :class:`ProcessPoolExecutor` and streams
    results as they finish.  ``on_result(index, record)`` fires once per
    completed job either way -- the CLI uses it to write per-job JSON and
    print progress lines while the rest of the batch is still running.

    The default ``worker`` (:func:`execute_job_guarded`) runs synthesis and
    Monte Carlo jobs alike; any module-level function mapping a picklable
    spec to a record fits.  ``executor`` lends the runner an already-running
    pool instead of spinning one up per :meth:`run` call (a lent executor is
    never shut down here), so repeated batches can share warm workers just
    like :class:`~repro.api.service.SynthesisService` does.
    """

    def __init__(
        self,
        jobs: Sequence[Job],
        max_workers: int = 1,
        worker: Callable[[Job], Record] = execute_job_guarded,
        executor: Optional[Executor] = None,
    ) -> None:
        if not jobs:
            raise ValueError("a batch needs at least one job")
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.jobs = list(jobs)
        self.max_workers = max_workers
        self.worker = worker
        self.executor = executor

    def run(
        self, on_result: Optional[Callable[[int, Record], None]] = None
    ) -> BatchResult:
        # Batch-level wall-clock field; per-job attribution is the tracer's.
        start = time.perf_counter()  # repro: lint-ok[untimed-wallclock]
        records: List[Optional[Record]] = [None] * len(self.jobs)
        if self.executor is None and self.max_workers == 1:
            for index, spec in enumerate(self.jobs):
                record = self.worker(spec)
                records[index] = record
                if on_result is not None:
                    on_result(index, record)
        elif self.executor is not None:
            self._dispatch(self.executor, records, on_result)
        else:
            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                self._dispatch(pool, records, on_result)
        return BatchResult(
            records=[record for record in records if record is not None],
            wall_clock_s=time.perf_counter() - start,  # repro: lint-ok[untimed-wallclock]
            workers=self.max_workers,
        )

    def _dispatch(
        self,
        pool: Executor,
        records: List[Optional[Record]],
        on_result: Optional[Callable[[int, Record], None]],
    ) -> None:
        for index, record in dispatch_jobs(pool, self.jobs, self.worker):
            records[index] = record
            if on_result is not None:
                on_result(index, record)


# ----------------------------------------------------------------------
# Table rendering (Table III / Table IV style)
# ----------------------------------------------------------------------
def render_table(rows: Sequence[dict], columns: Sequence[Tuple[str, str, str]]) -> str:
    """Fixed-width text table; ``columns`` is (key, header, format-spec)."""
    rendered: List[List[str]] = [[header for _, header, _ in columns]]
    for row in rows:
        cells = []
        for key, _, spec in columns:
            value = row.get(key)
            cells.append("-" if value is None else format(value, spec))
        rendered.append(cells)
    widths = [max(len(line[i]) for line in rendered) for i in range(len(columns))]
    lines = []
    for index, line in enumerate(rendered):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(line, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def table_iv(records: Sequence[object]) -> str:
    """Render completed job records as a Table IV-style comparison.

    Accepts typed records or legacy dicts (e.g. re-read from saved JSON).
    """
    rows = [
        record.summary.to_record()
        for record in map(record_from_dict, records)  # type: ignore[arg-type]
        if isinstance(record, RunRecord) and record.summary is not None
    ]
    return render_table(rows, RUN_SUMMARY_COLUMNS)


def table_iii(record: object) -> str:
    """Render one job record's stage table in Table III format."""
    parsed = record_from_dict(record)  # type: ignore[arg-type]
    if not isinstance(parsed, RunRecord):
        return render_table([], STAGE_TABLE_COLUMNS)
    return render_table(
        [row.to_record() for row in parsed.stage_table], STAGE_TABLE_COLUMNS
    )


def table_mc(records: Sequence[object]) -> str:
    """Render completed Monte Carlo job records as a yield table."""
    rows = [
        mc_table_row(record)
        for record in map(record_from_dict, records)  # type: ignore[arg-type]
        if isinstance(record, McRecord) and record.yield_ is not None
    ]
    return render_table(rows, MC_TABLE_COLUMNS)
