"""Parallel batch runner: fan a job matrix across worker processes.

One *job* is one synthesis run -- an instance spec ("ti:200",
"ispd09:ispd09f22", "scenario:maze:sinks=64", optionally scaled), a flow (the
integrated Contango pipeline or one of the Table IV baselines), an evaluation
engine, and an optional custom pass pipeline.  The runner expands a matrix of those axes
into :class:`JobSpec` jobs, fans them across a
:class:`~concurrent.futures.ProcessPoolExecutor`, and streams a
JSON-serializable record per job as it completes, so ablation studies and
Table III/IV/V-style sweeps run at the machine's core count instead of one
flow at a time.

Monte Carlo variation sweeps are a second job type over the same pool:
:class:`McJobSpec` synthesizes the network and then evaluates it under
thousands of sampled supply/process scenarios
(:meth:`~repro.analysis.evaluator.ClockNetworkEvaluator.evaluate_yield`),
with a per-job :class:`numpy.random.Generator` derived deterministically
from the base seed plus the job's identity (see :mod:`repro.seeding`), so a
whole instance x flow x sample-count matrix is bit-reproducible from one
``--seed`` no matter how it is scheduled across workers.

Workers regenerate their instance from the spec (the generators are seeded
and deterministic), so nothing heavier than a tiny dataclass crosses the
process boundary in either direction.

The module is the substrate of the ``python -m repro`` command line (see
:mod:`repro.cli`) and of ``benchmarks/perf_smoke.py`` /
``benchmarks/variation_smoke.py``.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis import ClockNetworkEvaluator, EvaluatorConfig
from repro.analysis.variation import (
    SAMPLING_FAMILIES,
    VariationModel,
    default_variation_model,
)
from repro.baselines import all_baselines
from repro.core import ContangoFlow, FlowConfig
from repro.core.report import FlowResult
from repro.cts.spec import ClockNetworkInstance
from repro.scenarios import parse_scenario_overrides
from repro.seeding import derive_rng
from repro.store.fingerprint import config_digest, job_fingerprint
from repro.workloads import (
    generate_ispd09_benchmark,
    generate_ti_benchmark,
    instance_fingerprint,
    read_instance,
)

__all__ = [
    "JobSpec",
    "McJobSpec",
    "sanitize_spec",
    "JobError",
    "BatchResult",
    "BatchRunner",
    "available_flows",
    "resolve_instance",
    "run_job",
    "run_mc_job",
    "run_mc_job_guarded",
    "variation_model_for",
    "render_table",
    "table_iii",
    "table_iv",
    "table_mc",
]


# ----------------------------------------------------------------------
# Job specification and execution
# ----------------------------------------------------------------------
def sanitize_spec(text: str) -> str:
    """Filesystem-safe, *injective* form of an instance spec.

    ``:`` maps to ``-`` and ``/`` to ``_`` so the common specs stay readable
    (``ti:200`` -> ``ti-200``); literal occurrences of the replacement
    characters (and ``%``) are percent-escaped first, so no two distinct
    specs share a label.  Stripping separators outright collided ``ti:200``
    with a hypothetical ``ti2:00`` -- and a collision means one job's result
    file silently overwrites another's.
    """
    text = text.replace("%", "%25").replace("-", "%2D").replace("_", "%5F")
    return text.replace(":", "-").replace("/", "_")


@dataclass(frozen=True)
class JobSpec:
    """One cell of the batch matrix, cheap to pickle across processes.

    ``instance`` uses a ``kind:value`` spec:

    * ``ti:<sinks>`` -- the TI-style scalability generator;
    * ``ispd09:<name>`` or ``ispd09:<name>:<scale>`` -- an ISPD'09-style
      benchmark, optionally shrunk by ``scale`` in (0, 1];
    * ``scenario:<family>[:k=v,...]`` -- a registered scenario family from
      :mod:`repro.scenarios` (``repro sweep --list-families`` lists them);
    * ``file:<path>`` -- a saved instance in the plain-text format.

    ``pipeline`` overrides :attr:`FlowConfig.pipeline` (pass-registry
    names); ``seed`` overrides the TI generator's (or a scenario's) default
    instance seed.
    """

    instance: str
    flow: str = "contango"
    engine: str = "arnoldi"
    pipeline: Optional[Tuple[str, ...]] = None
    seed: Optional[int] = None

    @property
    def label(self) -> str:
        """Filesystem-safe identifier used for result files and log lines."""
        parts = [sanitize_spec(self.instance), self.flow, self.engine]
        if self.pipeline is not None:
            parts.append("-".join(self.pipeline))
        if self.seed is not None:
            parts.append(f"seed{self.seed}")
        return "__".join(parts)


class JobError(RuntimeError):
    """A job failed inside a worker; carries the worker-side traceback."""


def available_flows() -> List[str]:
    """Runnable flow names: the integrated flow plus the Table IV baselines."""
    return ["contango"] + [flow.name for flow in all_baselines()]


def resolve_instance(spec: JobSpec) -> ClockNetworkInstance:
    """Materialize the instance a job spec names."""
    kind, _, rest = spec.instance.partition(":")
    if kind == "ti":
        if not rest.isdigit():
            raise ValueError(f"ti instance spec needs a sink count, got {spec.instance!r}")
        if spec.seed is not None:
            return generate_ti_benchmark(int(rest), seed=spec.seed)
        return generate_ti_benchmark(int(rest))
    if kind == "ispd09":
        name, _, scale = rest.partition(":")
        return generate_ispd09_benchmark(name, sink_scale=float(scale) if scale else None)
    if kind == "scenario":
        family, overrides = parse_scenario_overrides(spec.instance)
        params = family.resolve(overrides)
        # An explicit seed= inside the spec pins the instance; otherwise the
        # job seed selects the scenario variant, mirroring the ti: behavior.
        if spec.seed is not None and "seed" not in overrides:
            params["seed"] = spec.seed
        return family.generate(**params)
    if kind == "file":
        return read_instance(rest)
    raise ValueError(
        f"unknown instance spec {spec.instance!r}; use ti:<sinks>, "
        f"ispd09:<name>[:<scale>], scenario:<family>[:k=v,...] or file:<path>"
    )


def _make_flow(flow_name: str, config: FlowConfig):
    if flow_name == "contango":
        return ContangoFlow(config)
    for baseline in all_baselines(config):
        if baseline.name == flow_name:
            return baseline
    raise ValueError(f"unknown flow {flow_name!r}; available: {available_flows()}")


def run_job(spec: JobSpec) -> Dict:
    """Execute one job and return its JSON-serializable result record.

    Module-level (not a method) so the process pool can pickle it by
    reference; the instance is regenerated in the worker from the spec.
    """
    start = time.perf_counter()
    instance = resolve_instance(spec)
    # The job seed doubles as the flow's base seed, so every stochastic
    # component downstream (variation gates, MC sampling) derives from it.
    config = FlowConfig(engine=spec.engine, seed=spec.seed)
    if spec.pipeline is not None:
        config.pipeline = list(spec.pipeline)
    result: FlowResult = _make_flow(spec.flow, config).run(instance)
    # Content-address the computation for the run store: the instance's
    # canonical-serialization hash (not the spec string) plus the config
    # digest, so generator or config drift changes the fingerprint even when
    # the spec text stays the same.
    instance_fp = instance_fingerprint(instance)
    config_fp = config_digest(config)
    record = {
        "job": spec.label,
        "instance": spec.instance,
        "flow": spec.flow,
        "engine": spec.engine,
        "pipeline": list(spec.pipeline) if spec.pipeline is not None else None,
        "seed": spec.seed,
        "instance_fingerprint": instance_fp,
        "config_digest": config_fp,
        "fingerprint": job_fingerprint(
            instance_fingerprint=instance_fp,
            flow=spec.flow,
            engine=spec.engine,
            pipeline=spec.pipeline,
            seed=spec.seed,
            config_digest=config_fp,
        ),
        "sinks": instance.sink_count,
        "summary": result.summary(),
        "stage_table": result.stage_table(),
        "pass_notes": {name: list(p.notes) for name, p in result.pass_results.items()},
        "evaluator_cache": result.evaluator_cache,
        "wall_clock_s": time.perf_counter() - start,
    }
    if result.variation_gate:
        record["variation_gate"] = result.variation_gate
    return record


def _error_record(spec: Union["JobSpec", "McJobSpec"], detail: str) -> Dict:
    return {
        "job": spec.label,
        "instance": spec.instance,
        "flow": spec.flow,
        "engine": spec.engine,
        "error": detail,
    }


def _run_job_guarded(spec: JobSpec) -> Dict:
    """Worker entry point: never raises, so one bad job cannot kill the batch."""
    try:
        return run_job(spec)
    except Exception:
        return _error_record(spec, traceback.format_exc())


# ----------------------------------------------------------------------
# Monte Carlo variation jobs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class McJobSpec:
    """One Monte Carlo variation job: synthesize, then sample the yield.

    The instance spec and flow/engine/pipeline axes mirror :class:`JobSpec`;
    ``samples`` and ``family`` select the Monte Carlo sweep, and ``seed``
    drives *only* the stochastic parts (sampling, gates) -- the instance
    itself stays pinned by its spec so different seeds explore different
    scenarios of the same network.  ``gated`` additionally switches the
    synthesis pipeline to the variation-aware variant
    (:data:`repro.core.config.VARIATION_PIPELINE`), so robust-optimization
    ablations are one flag away from the nominal flow.
    """

    instance: str
    flow: str = "contango"
    engine: str = "arnoldi"
    samples: int = 1000
    family: str = "independent"
    seed: int = 7
    skew_limit_ps: float = 7.5
    gated: bool = False
    #: Scenario count per gate check during gated synthesis; ``None`` keeps
    #: the :class:`FlowConfig` default (the gate runs once per IVC round, so
    #: it deliberately uses fewer samples than the final reporting sweep).
    gate_samples: Optional[int] = None
    pipeline: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.samples < 1:
            raise ValueError("samples must be >= 1")
        if self.gate_samples is not None and self.gate_samples < 2:
            raise ValueError("gate_samples must be >= 2")
        if self.family not in SAMPLING_FAMILIES:
            raise ValueError(
                f"unknown sampling family {self.family!r}; choose from {SAMPLING_FAMILIES}"
            )
        if self.engine not in ("elmore", "arnoldi"):
            raise ValueError(
                "Monte Carlo jobs need an analytical engine ('elmore' or 'arnoldi')"
            )
        if self.gated and self.flow != "contango":
            raise ValueError(
                "--gated selects the Contango variation-aware pipeline and is "
                f"not available for flow {self.flow!r}"
            )
        if self.gated and self.pipeline is not None:
            raise ValueError(
                "--gated and an explicit pipeline are mutually exclusive; put "
                "the *_mc pass variants in the pipeline instead"
            )

    @property
    def label(self) -> str:
        parts = [
            sanitize_spec(self.instance),
            self.flow,
            self.engine,
            f"mc{self.samples}",
            self.family,
            f"seed{self.seed}",
        ]
        if self.gated:
            parts.append("gated")
        if self.pipeline is not None:
            parts.append("-".join(self.pipeline))
        return "__".join(parts)


def variation_model_for(spec: McJobSpec, config: FlowConfig) -> VariationModel:
    """The variation model an MC job samples from.

    The corner-anchored family spans the flow's own corner set (so the sweep
    covers exactly the supplies the nominal optimization saw); the other
    families use the stock sigma budget.
    """
    if spec.family == "corner_anchored":
        return VariationModel.from_corners(config.corners)
    return default_variation_model(family=spec.family)


def run_mc_job(spec: McJobSpec) -> Dict:
    """Synthesize one network and Monte Carlo-evaluate its skew yield.

    The sampling generator is derived from the job seed plus the job's
    identity keys, so every job of a matrix draws an independent, scheduling-
    invariant stream and re-running with the same ``--seed`` is
    bit-reproducible.
    """
    start = time.perf_counter()
    instance = resolve_instance(JobSpec(instance=spec.instance))
    config = FlowConfig(engine=spec.engine, seed=spec.seed)
    config.variation_skew_limit_ps = spec.skew_limit_ps
    # The gate must screen against the same distribution the job reports:
    # one model instance serves both the gated synthesis and the final sweep.
    model = variation_model_for(spec, config)
    config.variation_model = model
    if spec.gate_samples is not None:
        config.variation_samples = spec.gate_samples
    if spec.pipeline is not None:
        config.pipeline = list(spec.pipeline)
    elif spec.gated:  # spec validation guarantees flow == "contango" here
        from repro.core.config import VARIATION_PIPELINE

        config.pipeline = list(VARIATION_PIPELINE)
    result: FlowResult = _make_flow(spec.flow, config).run(instance)
    tree = result.require_tree()

    evaluator = ClockNetworkEvaluator(
        config=EvaluatorConfig(
            engine=spec.engine,
            max_segment_length=config.max_segment_length,
            slew_limit=instance.slew_limit,
        ),
        corners=config.corners,
        capacitance_limit=instance.capacitance_limit,
    )
    rng = derive_rng(spec.seed, spec.instance, spec.flow, spec.family, spec.samples)
    report = evaluator.evaluate_yield(
        tree, model, samples=spec.samples, rng=rng, skew_limit_ps=spec.skew_limit_ps
    )
    record = {
        "job": spec.label,
        "instance": spec.instance,
        "flow": spec.flow,
        "engine": spec.engine,
        "samples": spec.samples,
        "family": spec.family,
        "seed": spec.seed,
        "gated": spec.gated,
        "sinks": instance.sink_count,
        "yield": report.summary(),
        "nominal": result.summary(),
        "wall_clock_s": time.perf_counter() - start,
    }
    if result.variation_gate:
        record["variation_gate"] = result.variation_gate
    return record


def run_mc_job_guarded(spec: McJobSpec) -> Dict:
    """Worker entry point of MC jobs; mirrors :func:`_run_job_guarded`."""
    try:
        return run_mc_job(spec)
    except Exception:
        return _error_record(spec, traceback.format_exc())


# ----------------------------------------------------------------------
# The batch runner
# ----------------------------------------------------------------------
@dataclass
class BatchResult:
    """Outcome of one batch: per-job records (in job order) plus timing."""

    records: List[Dict]
    wall_clock_s: float
    workers: int

    @property
    def failures(self) -> List[Dict]:
        return [record for record in self.records if "error" in record]

    @property
    def summaries(self) -> List[Dict]:
        return [record["summary"] for record in self.records if "summary" in record]


class BatchRunner:
    """Fans a list of job specs across worker processes.

    ``max_workers=1`` runs in-process (no pool overhead, deterministic log
    order); anything higher uses a :class:`ProcessPoolExecutor` and streams
    results as they finish.  ``on_result(index, record)`` fires once per
    completed job either way -- the CLI uses it to write per-job JSON and
    print progress lines while the rest of the batch is still running.

    The default ``worker`` runs synthesis jobs (:class:`JobSpec`); Monte
    Carlo batches pass :class:`McJobSpec` jobs with
    ``worker=run_mc_job_guarded`` -- any module-level function mapping a
    picklable spec to a JSON-able record fits.
    """

    def __init__(
        self,
        jobs: Sequence,
        max_workers: int = 1,
        worker: Callable[..., Dict] = _run_job_guarded,
    ) -> None:
        if not jobs:
            raise ValueError("a batch needs at least one job")
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.jobs = list(jobs)
        self.max_workers = max_workers
        self.worker = worker

    def run(self, on_result: Optional[Callable[[int, Dict], None]] = None) -> BatchResult:
        start = time.perf_counter()
        records: List[Optional[Dict]] = [None] * len(self.jobs)
        if self.max_workers == 1:
            for index, spec in enumerate(self.jobs):
                records[index] = self.worker(spec)
                if on_result is not None:
                    on_result(index, records[index])
        else:
            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                futures = {
                    pool.submit(self.worker, spec): index
                    for index, spec in enumerate(self.jobs)
                }
                for future in as_completed(futures):
                    index = futures[future]
                    try:
                        records[index] = future.result()
                    except Exception:  # pool infrastructure failure, not the job
                        records[index] = _error_record(
                            self.jobs[index], traceback.format_exc()
                        )
                    if on_result is not None:
                        on_result(index, records[index])
        return BatchResult(
            records=[record for record in records if record is not None],
            wall_clock_s=time.perf_counter() - start,
            workers=self.max_workers,
        )


# ----------------------------------------------------------------------
# Table rendering (Table III / Table IV style)
# ----------------------------------------------------------------------
def render_table(rows: Sequence[Dict], columns: Sequence[Tuple[str, str, str]]) -> str:
    """Fixed-width text table; ``columns`` is (key, header, format-spec)."""
    rendered: List[List[str]] = [[header for _, header, _ in columns]]
    for row in rows:
        cells = []
        for key, _, spec in columns:
            value = row.get(key)
            cells.append("-" if value is None else format(value, spec))
        rendered.append(cells)
    widths = [max(len(line[i]) for line in rendered) for i in range(len(columns))]
    lines = []
    for index, line in enumerate(rendered):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(line, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


#: Table IV columns: one row per (instance, flow) with the final metrics.
_TABLE_IV_COLUMNS = (
    ("instance", "instance", "s"),
    ("flow", "flow", "s"),
    ("clr_ps", "CLR[ps]", ".2f"),
    ("skew_ps", "skew[ps]", ".2f"),
    ("max_latency_ps", "latency[ps]", ".1f"),
    ("total_capacitance_fF", "cap[fF]", ".0f"),
    ("wirelength_um", "WL[um]", ".0f"),
    ("slew_violations", "slew viol", "d"),
    ("evaluations", "evals", "d"),
    ("runtime_s", "runtime[s]", ".2f"),
)

#: Table III columns: one row per optimization stage of a single run.
_TABLE_III_COLUMNS = (
    ("stage", "stage", "s"),
    ("skew_ps", "skew[ps]", ".2f"),
    ("clr_ps", "CLR[ps]", ".2f"),
    ("max_latency_ps", "latency[ps]", ".1f"),
    ("worst_slew_ps", "slew[ps]", ".1f"),
    ("total_capacitance_fF", "cap[fF]", ".0f"),
    ("wirelength_um", "WL[um]", ".0f"),
    ("buffer_count", "buffers", "d"),
    ("evaluations", "evals", "d"),
    ("elapsed_s", "t[s]", ".2f"),
)


def table_iv(records: Sequence[Dict]) -> str:
    """Render completed job records as a Table IV-style comparison."""
    rows = [record["summary"] for record in records if "summary" in record]
    return render_table(rows, _TABLE_IV_COLUMNS)


def table_iii(record: Dict) -> str:
    """Render one job record's stage table in Table III format."""
    rows = [dict(row) for row in record.get("stage_table", [])]
    for row in rows:
        row.setdefault("elapsed_s", 0.0)
    return render_table(rows, _TABLE_III_COLUMNS)


#: Yield-table columns: one row per Monte Carlo job with the distribution
#: statistics the ISPD'10-style scoring cares about.
_TABLE_MC_COLUMNS = (
    ("instance", "instance", "s"),
    ("flow", "flow", "s"),
    ("family", "family", "s"),
    ("samples", "samples", "d"),
    ("skew_mean_ps", "skew mu[ps]", ".2f"),
    ("skew_std_ps", "sigma[ps]", ".2f"),
    ("skew_p95_ps", "p95[ps]", ".2f"),
    ("skew_p99_ps", "p99[ps]", ".2f"),
    ("skew_yield_pct", "yield[%]", ".1f"),
    ("clr_p95_ps", "CLR p95[ps]", ".2f"),
    ("nominal_skew_ps", "nom skew[ps]", ".2f"),
    ("wall_clock_s", "t[s]", ".2f"),
)


def table_mc(records: Sequence[Dict]) -> str:
    """Render completed Monte Carlo job records as a yield table."""
    rows: List[Dict] = []
    for record in records:
        if "yield" not in record:
            continue
        summary = record["yield"]
        rows.append(
            {
                "instance": record.get("instance"),
                "flow": record.get("flow"),
                "family": record.get("family"),
                "samples": record.get("samples"),
                "skew_mean_ps": summary.get("skew_mean_ps"),
                "skew_std_ps": summary.get("skew_std_ps"),
                "skew_p95_ps": summary.get("skew_p95_ps"),
                "skew_p99_ps": summary.get("skew_p99_ps"),
                "skew_yield_pct": 100.0 * summary.get("skew_yield", 0.0),
                "clr_p95_ps": summary.get("clr_p95_ps"),
                "nominal_skew_ps": record.get("nominal", {}).get("skew_ps"),
                "wall_clock_s": record.get("wall_clock_s"),
            }
        )
    return render_table(rows, _TABLE_MC_COLUMNS)
