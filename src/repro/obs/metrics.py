"""Process-wide metrics registry: counters, gauges, histograms.

:data:`METRICS` absorbs the stats that used to live only in scattered
per-run dicts -- evaluator cache hits/misses, dirty-region propagation
counts, candidate-batch fallbacks, variation-gate accept/reject, IVC
retries -- so a long-lived process (the warm-pool service, a sweep driver)
can answer "what has this process done so far" without re-aggregating
records.  Producers feed it through three verbs:

* :meth:`Metrics.count` -- monotonically increasing integer counters;
* :meth:`Metrics.gauge` -- last-write-wins floats (pool sizes, ratios);
* :meth:`Metrics.observe` -- streaming histograms keeping count/sum/min/max
  (enough for mean and extremes without storing samples).

:meth:`Metrics.snapshot` renders everything as one sorted, JSON-able dict;
:meth:`Metrics.absorb` bulk-adds the integer entries of a stats dict under a
name prefix (the one-liner the pipeline driver uses on ``cache_stats()``).

The registry is intentionally process-local: worker processes have their own
instance, and cross-process aggregation happens at the record level (the
per-job ``evaluator_cache`` / ``trace`` fields), keeping the pool protocol
untouched.  Like the rest of :mod:`repro.obs` it imports nothing from the
package, so any module may feed it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping

__all__ = ["HistogramStats", "Metrics", "METRICS"]


@dataclass
class HistogramStats:
    """Streaming summary of one observed value series (no samples kept)."""

    count: int = 0
    total: float = 0.0
    minimum: float = 0.0
    maximum: float = 0.0

    def observe(self, value: float) -> None:
        if self.count == 0:
            self.minimum = value
            self.maximum = value
        else:
            self.minimum = min(self.minimum, value)
            self.maximum = max(self.maximum, value)
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_record(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": round(self.total, 9),
            "min": round(self.minimum, 9),
            "max": round(self.maximum, 9),
            "mean": round(self.mean, 9),
        }


class Metrics:
    """One registry of named counters, gauges and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, HistogramStats] = {}

    # -- producing ------------------------------------------------------
    def count(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the counter ``name`` (created at zero)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into the histogram ``name``."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = HistogramStats()
        histogram.observe(value)

    def absorb(self, prefix: str, stats: Mapping[str, Any]) -> None:
        """Bulk-add every integer entry of ``stats`` as ``prefix.key`` counters.

        Non-integer values (nested dicts, floats, None) are skipped: the
        stats dicts this absorbs (``cache_stats()``, gate stats) mix counters
        with configuration echoes, and only the counters aggregate meaningfully.
        """
        for key, value in stats.items():
            if isinstance(value, bool) or not isinstance(value, int):
                continue
            self.count(f"{prefix}.{key}", value)

    # -- consuming ------------------------------------------------------
    def counter_value(self, name: str) -> int:
        return self._counters.get(name, 0)

    def gauge_value(self, name: str) -> float:
        return self._gauges.get(name, 0.0)

    def histogram(self, name: str) -> HistogramStats:
        return self._histograms.get(name, HistogramStats())

    def snapshot(self) -> Dict[str, Any]:
        """Everything, as one sorted JSON-able dict."""
        return {
            "counters": {name: self._counters[name] for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name] for name in sorted(self._gauges)},
            "histograms": {
                name: self._histograms[name].to_record()
                for name in sorted(self._histograms)
            },
        }

    def reset(self) -> None:
        """Drop every metric (tests and benchmark harnesses)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


#: The process-wide registry every producer feeds by default.
METRICS = Metrics()
