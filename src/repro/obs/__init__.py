"""``repro.obs`` -- the observability plane: structured tracing + metrics.

Two complementary instruments, both dependency-free so every layer of the
package (including the strict-typed leaves) can use them without cycles:

* :mod:`repro.obs.trace` -- :class:`Tracer` produces one nested span tree per
  job (``flow`` -> ``pass`` -> ``ivc_round`` -> ``evaluate`` ->
  ``propagate`` / ``candidate_batch``) with per-span counters;
  :data:`NULL_TRACER` is the shared disabled tracer whose spans are cached
  no-ops, so instrumentation left in place costs one attribute check on the
  hot paths.  :func:`trace_artifact` / :func:`write_trace` /
  :func:`read_trace` persist the schema-1 JSON artifact (wall-clock confined
  to the ``timings`` block so the structural remainder is byte-stable);
  :func:`chrome_trace` exports to the Chrome trace-event format Perfetto
  reads; :class:`TraceSummary` is the compact record-attachable digest.
* :mod:`repro.obs.metrics` -- :class:`Metrics`, a process-wide registry of
  counters, gauges and histograms; :data:`METRICS` is the shared instance
  the pipeline driver and IVC engine feed (evaluator cache hits/misses,
  dirty-region propagation counts, candidate fallbacks, gate accept/reject,
  IVC retries).

Timing attribution flows through the tracer *only*: the ``untimed-wallclock``
lint rule flags direct ``time.perf_counter``/``time.monotonic`` calls outside
this package (record-level wall-clock fields carry explicit suppressions).
"""

from __future__ import annotations

from repro.obs.metrics import METRICS, Metrics
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceSummary,
    Tracer,
    TracerBase,
    chrome_trace,
    path_counters,
    path_timings,
    read_trace,
    render_span_tree,
    strip_timings,
    summarize,
    trace_artifact,
    write_trace,
)

__all__ = [
    "Span",
    "Tracer",
    "TracerBase",
    "NullTracer",
    "NULL_TRACER",
    "TraceSummary",
    "summarize",
    "path_counters",
    "path_timings",
    "trace_artifact",
    "write_trace",
    "read_trace",
    "strip_timings",
    "chrome_trace",
    "render_span_tree",
    "Metrics",
    "METRICS",
]
