"""Structured tracing: nested spans, JSON artifacts, Chrome export, summaries.

One :class:`Tracer` records one job's execution as a tree of named
:class:`Span` objects.  The span *structure* (names, nesting, per-span
counters) is deterministic for a deterministic computation; wall-clock lives
in separate per-span timing fields, and the persisted artifact keeps every
timing in its own ``timings`` block so two traces of the same job are
byte-identical outside it (the property ``tests/obs`` pins).

Design constraints, in order:

1. **Disabled tracing is near-free.**  Hot call sites guard with
   ``tracer.enabled`` and skip their counter bookkeeping entirely;
   :data:`NULL_TRACER` hands out one cached no-op context manager, so an
   instrumented-but-untraced call costs an attribute read and a branch
   (``benchmarks/trace_smoke.py`` holds the ti:200 flow to <2% overhead).
2. **Traces never feed fingerprints.**  Content addresses come from job
   identity (:mod:`repro.store.fingerprint`), records attach only the
   compact :class:`TraceSummary`, and the full artifact quarantines
   wall-clock in the ``timings`` envelope.
3. **No repro imports.**  The module is a stdlib-only leaf, usable from the
   evaluator and the IVC engine without cycles.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, ContextManager, Dict, Iterator, List, Optional, Tuple, Union

__all__ = [
    "TRACE_SCHEMA",
    "Span",
    "TracerBase",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceSummary",
    "summarize",
    "path_counters",
    "path_timings",
    "trace_artifact",
    "write_trace",
    "read_trace",
    "strip_timings",
    "chrome_trace",
    "render_span_tree",
]

#: Version number of the persisted trace artifact; readers reject newer
#: schemas instead of misparsing them (the run-store convention).
TRACE_SCHEMA = 1

#: Spans kept in a :class:`TraceSummary`'s ``top`` list.
SUMMARY_TOP_N = 8


class Span:
    """One named region of execution: children, counters, and timing.

    ``start_s``/``total_s`` are relative to the owning tracer's origin;
    ``self_s`` is derived (total minus the children's totals).  Counters are
    plain int accumulators -- deterministic payload, never wall-clock.
    """

    __slots__ = ("name", "children", "counters", "start_s", "total_s")

    def __init__(self, name: str) -> None:
        self.name = name
        self.children: List["Span"] = []
        self.counters: Dict[str, int] = {}
        self.start_s = 0.0
        self.total_s = 0.0

    @property
    def self_s(self) -> float:
        return self.total_s - sum(child.total_s for child in self.children)

    def count(self, key: str, amount: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + amount

    def walk(self) -> Iterator["Span"]:
        """Pre-order traversal of this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return f"Span({self.name!r}, total_s={self.total_s:.6f})"


class _NullSpan:
    """The one reusable no-op context manager of the disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> Optional[Span]:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _OpenSpan:
    """Context manager that opens one real span on ``__enter__``."""

    __slots__ = ("_tracer", "_name")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> Optional[Span]:
        return self._tracer._open(self._name)

    def __exit__(self, *exc_info: object) -> bool:
        self._tracer._close()
        return False


class TracerBase:
    """Shared interface of :class:`Tracer` and :class:`NullTracer`.

    Instrumented code holds a ``TracerBase`` and guards any bookkeeping
    beyond the span itself with :attr:`enabled`::

        with self.tracer.span("evaluate") as span:
            ...
            if span is not None:
                span.count("stages", len(stages))
    """

    enabled: bool = False

    def span(self, name: str) -> ContextManager[Optional[Span]]:
        raise NotImplementedError

    def count(self, key: str, amount: int = 1) -> None:
        raise NotImplementedError


class NullTracer(TracerBase):
    """The disabled tracer: every span is the same cached no-op."""

    enabled = False

    def span(self, name: str) -> ContextManager[Optional[Span]]:
        return _NULL_SPAN

    def count(self, key: str, amount: int = 1) -> None:
        return None


#: The shared disabled tracer; instrumented modules default to it so tracing
#: is opt-in per call, never ambient state.
NULL_TRACER = NullTracer()


class Tracer(TracerBase):
    """Records one nested span tree (typically: one traced job)."""

    enabled = True

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self._origin = time.perf_counter()

    # -- recording ------------------------------------------------------
    def span(self, name: str) -> ContextManager[Optional[Span]]:
        return _OpenSpan(self, name)

    def count(self, key: str, amount: int = 1) -> None:
        """Increment a counter on the innermost open span (no-op at root)."""
        if self._stack:
            self._stack[-1].count(key, amount)

    def _open(self, name: str) -> Span:
        span = Span(name)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        span.start_s = time.perf_counter() - self._origin
        return span

    def _close(self) -> None:
        span = self._stack.pop()
        span.total_s = time.perf_counter() - self._origin - span.start_s

    # -- reading --------------------------------------------------------
    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def spans(self) -> Iterator[Span]:
        """Every recorded span, pre-order across the root forest."""
        for root in self.roots:
            yield from root.walk()

    def total_s(self) -> float:
        return sum(root.total_s for root in self.roots)


# ----------------------------------------------------------------------
# Span-path aggregation (the counter-export helpers)
# ----------------------------------------------------------------------
#: Separator joining span names into a span *path* ("job/flow:contango/...").
PATH_SEPARATOR = "/"


def _walk_paths(tracer: Tracer) -> Iterator[Tuple[str, Span]]:
    """Every span with its slash-joined name path, pre-order."""

    def visit(span: Span, prefix: str) -> Iterator[Tuple[str, Span]]:
        path = f"{prefix}{PATH_SEPARATOR}{span.name}" if prefix else span.name
        yield path, span
        for child in span.children:
            yield from visit(child, path)

    for root in tracer.roots:
        yield from visit(root, "")


def path_counters(tracer: Tracer) -> Dict[str, Dict[str, int]]:
    """Deterministic counters aggregated by span path, sorted both ways.

    Spans sharing a path (e.g. every ``ivc_round`` under the same pass)
    merge their counters; paths without any counter are omitted, so the
    result is exactly the deterministic counter payload of a trace --
    the block ``repro.perf`` gates exactly and ``repro trace --diff``
    compares.
    """
    merged: Dict[str, Dict[str, int]] = {}
    for path, span in _walk_paths(tracer):
        if not span.counters:
            continue
        bucket = merged.setdefault(path, {})
        for key, amount in span.counters.items():
            bucket[key] = bucket.get(key, 0) + amount
    return {
        path: {key: merged[path][key] for key in sorted(merged[path])}
        for path in sorted(merged)
    }


def path_timings(tracer: Tracer) -> Dict[str, Dict[str, float]]:
    """Wall-clock aggregated by span path: count plus total/self seconds.

    The quarantined complement of :func:`path_counters` -- everything here
    is timing and must never be compared exactly.
    """
    merged: Dict[str, Dict[str, float]] = {}
    for path, span in _walk_paths(tracer):
        bucket = merged.setdefault(
            path, {"count": 0.0, "total_s": 0.0, "self_s": 0.0}
        )
        bucket["count"] += 1
        bucket["total_s"] += span.total_s
        bucket["self_s"] += span.self_s
    return {path: merged[path] for path in sorted(merged)}


# ----------------------------------------------------------------------
# The compact record-attachable digest
# ----------------------------------------------------------------------
@dataclass
class TraceSummary:
    """Aggregate view of one trace, small enough to ride on a job record.

    ``top`` holds the :data:`SUMMARY_TOP_N` span *names* heaviest by
    aggregated self-time (one entry per distinct name, not per span);
    ``counters`` merges every span's counters and ``paths`` keeps the same
    counters keyed by span path (:func:`path_counters`), which is what
    ``repro trace --diff`` localizes counter drift with.  Serialized under
    the record key ``"trace"`` -- conditionally, so untraced runs stay
    byte-identical to their historical shapes.
    """

    schema: int = TRACE_SCHEMA
    spans: int = 0
    total_s: float = 0.0
    top: List[Dict[str, Any]] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    paths: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def to_record(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "spans": self.spans,
            "total_s": self.total_s,
            "top": self.top,
            "counters": self.counters,
            "paths": self.paths,
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "TraceSummary":
        schema = int(record.get("schema", TRACE_SCHEMA))
        if schema > TRACE_SCHEMA:
            raise ValueError(
                f"trace summary schema {schema} is newer than supported "
                f"schema {TRACE_SCHEMA}"
            )
        return cls(
            schema=schema,
            spans=int(record.get("spans", 0)),
            total_s=float(record.get("total_s", 0.0)),
            top=list(record.get("top", [])),
            counters=dict(record.get("counters", {})),
            # Pre-paths summaries (schema-1 records written before the perf
            # subsystem) parse with an empty mapping; consumers fall back to
            # the merged counters.
            paths={
                str(path): dict(counters)
                for path, counters in dict(record.get("paths", {})).items()
            },
        )


def summarize(tracer: Tracer, top_n: int = SUMMARY_TOP_N) -> TraceSummary:
    """Fold a tracer's span forest into a :class:`TraceSummary`."""
    by_name: Dict[str, Dict[str, Any]] = {}
    counters: Dict[str, int] = {}
    span_count = 0
    for span in tracer.spans():
        span_count += 1
        entry = by_name.setdefault(
            span.name, {"name": span.name, "count": 0, "total_s": 0.0, "self_s": 0.0}
        )
        entry["count"] += 1
        entry["total_s"] += span.total_s
        entry["self_s"] += span.self_s
        for key, amount in span.counters.items():
            counters[key] = counters.get(key, 0) + amount
    top = sorted(by_name.values(), key=lambda e: (-e["self_s"], e["name"]))[:top_n]
    for entry in top:
        entry["total_s"] = round(entry["total_s"], 6)
        entry["self_s"] = round(entry["self_s"], 6)
    return TraceSummary(
        schema=TRACE_SCHEMA,
        spans=span_count,
        total_s=round(tracer.total_s(), 6),
        top=top,
        counters={key: counters[key] for key in sorted(counters)},
        paths=path_counters(tracer),
    )


# ----------------------------------------------------------------------
# The persisted artifact (schema 1)
# ----------------------------------------------------------------------
def trace_artifact(
    tracer: Tracer, meta: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Build the schema-1 JSON artifact of one trace.

    Structure (names, nesting, counters, pre-order ids) lives in ``spans``;
    every wall-clock number is quarantined in the parallel ``timings`` list,
    so :func:`strip_timings` of two traces of the same deterministic job are
    byte-identical when serialized with sorted keys.
    """
    spans: List[Dict[str, Any]] = []
    timings: List[Dict[str, Any]] = []

    def visit(span: Span, parent: Optional[int]) -> None:
        span_id = len(spans)
        spans.append(
            {
                "id": span_id,
                "parent": parent,
                "name": span.name,
                "counters": {key: span.counters[key] for key in sorted(span.counters)},
            }
        )
        timings.append(
            {
                "id": span_id,
                "start_s": round(span.start_s, 9),
                "total_s": round(span.total_s, 9),
                "self_s": round(span.self_s, 9),
            }
        )
        for child in span.children:
            visit(child, span_id)

    for root in tracer.roots:
        visit(root, None)
    return {
        "schema": TRACE_SCHEMA,
        "kind": "trace",
        "meta": dict(meta or {}),
        "spans": spans,
        "timings": timings,
    }


def strip_timings(artifact: Dict[str, Any]) -> Dict[str, Any]:
    """The deterministic remainder of an artifact (everything but timings)."""
    return {key: value for key, value in artifact.items() if key != "timings"}


def write_trace(path: Union[str, Path], artifact: Dict[str, Any]) -> Path:
    """Persist one artifact as sorted-key JSON (the byte-stable layout)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(artifact, indent=1, sort_keys=True) + "\n")
    return target


def read_trace(path: Union[str, Path]) -> Dict[str, Any]:
    """Load one artifact, rejecting newer schemas instead of misparsing."""
    artifact = json.loads(Path(path).read_text())
    if not isinstance(artifact, dict) or artifact.get("kind") != "trace":
        raise ValueError(f"{path} is not a trace artifact")
    schema = int(artifact.get("schema", 0))
    if schema > TRACE_SCHEMA:
        raise ValueError(
            f"trace artifact schema {schema} is newer than supported "
            f"schema {TRACE_SCHEMA}"
        )
    return artifact


def chrome_trace(artifact: Dict[str, Any]) -> Dict[str, Any]:
    """Convert a schema-1 artifact to Chrome trace-event JSON (Perfetto).

    Complete (``"ph": "X"``) events in microseconds on one pid/tid, which is
    what ``chrome://tracing`` and https://ui.perfetto.dev open directly.
    """
    timing_by_id: Dict[int, Dict[str, Any]] = {
        entry["id"]: entry for entry in artifact.get("timings", [])
    }
    events: List[Dict[str, Any]] = []
    for span in artifact.get("spans", []):
        timing = timing_by_id.get(span["id"], {})
        events.append(
            {
                "ph": "X",
                "name": span["name"],
                "ts": round(float(timing.get("start_s", 0.0)) * 1e6, 3),
                "dur": round(float(timing.get("total_s", 0.0)) * 1e6, 3),
                "pid": 1,
                "tid": 1,
                "args": dict(span.get("counters", {})),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _format_span_line(span: Span, depth: int) -> str:
    counters = ""
    if span.counters:
        packed = ", ".join(
            f"{key}={span.counters[key]}" for key in sorted(span.counters)
        )
        counters = f"  [{packed}]"
    indent = "  " * depth
    return (
        f"{indent}{span.name:<{max(1, 34 - 2 * depth)}s} "
        f"total {span.total_s * 1e3:9.2f} ms  self {span.self_s * 1e3:9.2f} ms"
        f"{counters}"
    )


def render_span_tree(tracer: Tracer) -> str:
    """Human-readable indented span tree (the ``repro profile`` output)."""
    lines: List[str] = []

    def visit(span: Span, depth: int) -> None:
        lines.append(_format_span_line(span, depth))
        for child in span.children:
            visit(child, depth + 1)

    for root in tracer.roots:
        visit(root, 0)
    return "\n".join(lines)
