"""Elmore delay and PERI-style slew estimation on stage networks.

The Elmore delay is the first moment of the impulse response and is the
classic analytical model used to *construct* clock trees (ZST/DME balances
Elmore delays).  It systematically overestimates the delay of far taps on
resistively-shielded nets, which is exactly why Contango switches to more
accurate engines for the optimization loop; we keep it as the fast engine for
construction-time balancing and as a reference model in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.rcnetwork import StageNetwork
from repro.analysis.units import LN9, OHM_FF_TO_PS

__all__ = ["StageTiming", "elmore_stage_delays", "elmore_stage_timing"]


@dataclass(frozen=True)
class StageTiming:
    """Per-tap timing of one stage analysis.

    ``delay`` maps tree node ids (taps) to wire delay in ps measured from the
    driver switching instant; ``slew`` maps them to the 10-90% output
    transition time in ps.
    """

    delay: Dict[int, float]
    slew: Dict[int, float]


def _node_elmore_delays(network: StageNetwork) -> List[float]:
    """Elmore delay (ps) of every network node, driver resistance included."""
    downstream = network.downstream_capacitance()
    delays = [0.0] * network.size
    total_cap = downstream[0]
    root_term = network.driver_resistance * total_cap * OHM_FF_TO_PS
    delays[0] = root_term
    for idx in range(1, network.size):
        par = network.parent[idx]
        delays[idx] = delays[par] + network.resistance[idx] * downstream[idx] * OHM_FF_TO_PS
    return delays


def elmore_stage_delays(network: StageNetwork) -> Dict[int, float]:
    """Return the Elmore delay in ps at every tap of the stage."""
    delays = _node_elmore_delays(network)
    return {tree_id: delays[idx] for tree_id, idx in network.tap_index.items()}


def elmore_stage_timing(network: StageNetwork, input_slew: float) -> StageTiming:
    """Return Elmore delays plus PERI-combined slews at every tap.

    The output slew of a single-pole stage driven by a step is ``ln(9) * tau``
    where ``tau`` is the Elmore delay; the PERI rule combines that intrinsic
    wire slew with the (attenuated) input transition in quadrature.
    """
    delays = _node_elmore_delays(network)
    delay_map: Dict[int, float] = {}
    slew_map: Dict[int, float] = {}
    for tree_id, idx in network.tap_index.items():
        tau = delays[idx]
        wire_slew = LN9 * tau
        slew = (wire_slew**2 + input_slew**2) ** 0.5
        delay_map[tree_id] = tau
        slew_map[tree_id] = slew
    return StageTiming(delay=delay_map, slew=slew_map)
