"""Stage extraction and RC-network construction from a clock tree.

A buffered clock tree decomposes into *stages*: the sub-network driven by the
clock source or by one inserted buffer, extending down the tree until the
next buffer inputs (and sinks) are reached.  Each stage is an RC tree -- wires
contribute distributed RC (modelled as a chain of lumped segments) and the
taps (buffer inputs, sinks) contribute load capacitance.

All timing engines (:mod:`repro.analysis.elmore`, :mod:`repro.analysis.arnoldi`
and the transient solver in :mod:`repro.analysis.spice`) consume the same
:class:`StageNetwork` representation, so switching engines never changes the
electrical model, only the solution accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.corners import Corner
from repro.cts.bufferlib import BufferType
from repro.cts.tree import ClockTree, TreeNode

__all__ = [
    "Stage",
    "StageTopology",
    "StageNetwork",
    "BaseStageNetwork",
    "extract_stages",
    "build_stage_topology",
    "build_stage_network",
    "build_base_stage_network",
    "subtree_interval_sums",
    "path_sums",
]

# Resistance used for zero-length connections so the nodal matrix stays regular.
_MIN_RESISTANCE = 1e-3


@dataclass
class Stage:
    """One buffer stage of the clock tree.

    Attributes
    ----------
    driver_id:
        Tree node where the stage driver sits (the tree root for the source
        stage, otherwise a node with a buffer).
    driver_buffer:
        The driving buffer, or None for the clock source.
    edges:
        Tree node ids whose parent edge belongs to this stage.
    taps:
        Tree node ids that terminate the stage: sinks and next-stage drivers.
    """

    driver_id: int
    #: The driving buffer *at extraction time*.  Stage lists may be cached
    #: across buffer re-sizings, so code that must see the current driver
    #: (the evaluator, the network builders) reads it live from the tree via
    #: ``tree.node(stage.driver_id).buffer`` instead of trusting this field.
    driver_buffer: Optional[BufferType]
    edges: List[int] = field(default_factory=list)
    taps: List[int] = field(default_factory=list)


@dataclass
class StageNetwork:
    """A lumped RC tree for one stage, ready for analysis.

    The network nodes are indexed ``0 .. n-1`` with node 0 being the driver
    output node.  ``parent[i]`` and ``resistance[i]`` describe the unique
    resistor connecting node ``i`` to its parent (``parent[0]`` is -1).
    ``capacitance[i]`` is the grounded capacitance at node ``i`` (wire cap
    plus any tap load).  ``tap_index`` maps tree node ids of taps to network
    node indices.
    """

    parent: List[int]
    resistance: List[float]
    capacitance: List[float]
    tap_index: Dict[int, int]
    driver_resistance: float
    total_capacitance: float

    @property
    def size(self) -> int:
        return len(self.parent)

    def children_lists(self) -> List[List[int]]:
        """Return the child adjacency derived from the parent array."""
        children: List[List[int]] = [[] for _ in range(self.size)]
        for idx, par in enumerate(self.parent):
            if par >= 0:
                children[par].append(idx)
        return children

    def downstream_capacitance(self) -> List[float]:
        """Total capacitance at or below each network node (O(n))."""
        downstream = list(self.capacitance)
        # Children always have larger indices than their parents because the
        # network is built top-down, so a reverse sweep accumulates correctly.
        for idx in range(self.size - 1, 0, -1):
            downstream[self.parent[idx]] += downstream[idx]
        return downstream


def extract_stages(tree: ClockTree) -> List[Stage]:
    """Decompose the tree into buffer stages, source stage first.

    The returned list is ordered so that every stage appears after the stage
    that drives it, which lets the evaluator propagate arrival times and slews
    in a single pass.
    """
    stages: List[Stage] = []
    pending: List[int] = [tree.root_id]
    while pending:
        driver_id = pending.pop(0)
        driver_node = tree.node(driver_id)
        buffer = driver_node.buffer if driver_id != tree.root_id else driver_node.buffer
        stage = Stage(
            driver_id=driver_id,
            driver_buffer=driver_node.buffer,
            edges=[],
            taps=[],
        )
        # DFS below the driver, stopping at buffered nodes and sinks.
        stack = list(tree.node(driver_id).children)
        while stack:
            node_id = stack.pop()
            node = tree.node(node_id)
            stage.edges.append(node_id)
            if node.has_buffer:
                stage.taps.append(node_id)
                pending.append(node_id)
                continue
            if node.is_sink:
                stage.taps.append(node_id)
                continue
            stack.extend(node.children)
        stages.append(stage)
    return stages


@dataclass
class StageTopology:
    """A stage decomposition plus the per-structure-revision indexes over it.

    Everything here depends only on the tree's *structure* (topology, buffer
    sites, sink roles), never on electrical content, so one instance stays
    valid for as long as the tree's structure revision does -- the evaluator
    caches it next to the stage list and uses it for dirty-region closure and
    candidate dirty-set mapping without re-walking the tree:

    * ``children[i]`` -- indices of the stages driven by stage ``i``'s taps;
    * ``stage_of_edge`` -- tree node id -> index of the stage that contains
      the node's parent edge (tap edges belong to the stage above the tap);
    * ``stage_of_driver`` -- driver node id -> index of the stage it drives;
    * ``tap_flags`` -- ``(is_sink, has_buffer)`` per tap, shared by every
      corner/launch propagation sweep.
    """

    stages: List[Stage]
    children: List[List[int]]
    stage_of_edge: Dict[int, int]
    stage_of_driver: Dict[int, int]
    tap_flags: Dict[int, Tuple[bool, bool]]


def build_stage_topology(tree: ClockTree, stages: Optional[List[Stage]] = None) -> StageTopology:
    """Extract the stage list (unless given) and derive its structural indexes."""
    if stages is None:
        stages = extract_stages(tree)
    stage_of_driver = {stage.driver_id: index for index, stage in enumerate(stages)}
    children: List[List[int]] = [[] for _ in stages]
    stage_of_edge: Dict[int, int] = {}
    tap_flags: Dict[int, Tuple[bool, bool]] = {}
    for index, stage in enumerate(stages):
        for edge in stage.edges:
            stage_of_edge[edge] = index
        for tap in stage.taps:
            node = tree.node(tap)
            tap_flags[tap] = (node.is_sink, node.buffer is not None)
            downstream = stage_of_driver.get(tap)
            if downstream is not None:
                children[index].append(downstream)
    return StageTopology(
        stages=stages,
        children=children,
        stage_of_edge=stage_of_edge,
        stage_of_driver=stage_of_driver,
        tap_flags=tap_flags,
    )


def build_stage_network(
    tree: ClockTree,
    stage: Stage,
    corner: Optional[Corner] = None,
    max_segment_length: float = 100.0,
    rise: bool = True,
    pull_up_factor: float = 1.08,
    pull_down_factor: float = 0.95,
) -> StageNetwork:
    """Build the lumped RC network of a stage at a given corner.

    Wire edges longer than ``max_segment_length`` micrometres are divided into
    several lumped RC segments so that resistive shielding of long wires is
    captured (a single lumped segment would overestimate far-end delay and
    underestimate near-end slew).
    """
    wire_r_scale = corner.wire_res_scale if corner is not None else 1.0
    wire_c_scale = corner.wire_cap_scale if corner is not None else 1.0
    driver_scale = corner.driver_scale if corner is not None else 1.0

    driver_node = tree.node(stage.driver_id)
    driver_buffer = driver_node.buffer
    parent: List[int] = [-1]
    resistance: List[float] = [0.0]
    capacitance: List[float] = [0.0]
    tap_index: Dict[int, int] = {}
    tree_to_net: Dict[int, int] = {stage.driver_id: 0}

    if driver_buffer is not None:
        capacitance[0] += driver_buffer.output_cap

    stage_edge_set = set(stage.edges)
    stage_tap_set = set(stage.taps)

    # Walk the stage edges top-down so parents are created before children.
    stack = [child for child in driver_node.children if child in stage_edge_set]
    order: List[int] = []
    while stack:
        node_id = stack.pop()
        order.append(node_id)
        node = tree.node(node_id)
        if node_id in stage_tap_set:
            continue
        stack.extend(c for c in node.children if c in stage_edge_set)

    for node_id in order:
        node = tree.node(node_id)
        parent_net = tree_to_net[node.parent]
        net_idx = _add_edge_segments(
            node,
            parent_net,
            parent,
            resistance,
            capacitance,
            wire_r_scale,
            wire_c_scale,
            max_segment_length,
        )
        tree_to_net[node_id] = net_idx
        load = _tap_load(tree, node, node_id in stage_tap_set)
        capacitance[net_idx] += load

    if driver_buffer is not None:
        base_res = driver_buffer.output_res
    else:
        base_res = tree.source_resistance
    asym = pull_up_factor if rise else pull_down_factor
    driver_resistance = base_res * driver_scale * asym

    for tap in stage.taps:
        tap_index[tap] = tree_to_net[tap]

    return StageNetwork(
        parent=parent,
        resistance=resistance,
        capacitance=capacitance,
        tap_index=tap_index,
        driver_resistance=driver_resistance,
        total_capacitance=sum(capacitance),
    )


@dataclass
class BaseStageNetwork:
    """Corner-independent lumped RC arrays of one stage, in DFS preorder.

    This is the vectorized counterpart of :class:`StageNetwork`: wire
    resistances and capacitances are stored *unscaled* (nominal corner) as
    numpy arrays, so a timing engine can apply any number of corner /
    transition scalings as batched array arithmetic instead of rebuilding the
    network per corner.  Capacitance is kept in two components because
    corners scale them differently: ``wire_capacitance`` (subject to
    ``wire_cap_scale``) and ``load_capacitance`` (sink pins, tap buffer
    input pins and the driver's output cap -- never corner-scaled, matching
    :func:`build_stage_network`).  Network nodes are guaranteed to be in DFS
    preorder (parents before children, subtrees contiguous);
    ``subtree_end[i]`` is the exclusive end of node ``i``'s subtree interval,
    which makes subtree aggregations (downstream capacitance,
    capacitance-weighted moments) plain prefix-sum differences and
    root-to-node path sums a scatter-add plus one cumulative sum -- no
    per-node Python loops.
    """

    parent: np.ndarray
    resistance: np.ndarray
    wire_capacitance: np.ndarray
    load_capacitance: np.ndarray
    subtree_end: np.ndarray
    tap_ids: List[int]
    tap_indices: np.ndarray
    driver_resistance: float
    total_capacitance: float

    @property
    def size(self) -> int:
        return len(self.parent)


def subtree_interval_sums(values: np.ndarray, subtree_end: np.ndarray) -> np.ndarray:
    """Per-node sums of ``values`` over each node's subtree (vectorized).

    Requires DFS-preorder indexing with ``subtree_end`` intervals, as built by
    :func:`build_base_stage_network`.
    """
    prefix = np.concatenate(([0.0], np.cumsum(values)))
    return prefix[subtree_end] - prefix[: len(values)]


def path_sums(values: np.ndarray, subtree_end: np.ndarray) -> np.ndarray:
    """Per-node sums of ``values`` over the root-to-node path (vectorized).

    Node ``j`` contributes to node ``i`` exactly when ``i`` lies in ``j``'s
    subtree interval ``[j, subtree_end[j])``, so scattering ``+values[j]`` at
    ``j`` and ``-values[j]`` at ``subtree_end[j]`` turns the path sum into one
    cumulative sum over the difference array.  The scatter uses ``bincount``
    (duplicate interval ends accumulate) rather than ``np.subtract.at``,
    which is an order of magnitude slower on small arrays.
    """
    n = len(values)
    removal = np.bincount(subtree_end, weights=values, minlength=n + 1)[:n]
    return np.cumsum(values - removal)


def build_base_stage_network(
    tree: ClockTree,
    stage: Stage,
    max_segment_length: float = 100.0,
) -> BaseStageNetwork:
    """Build the corner-independent lumped RC network of a stage.

    Performs the same segmentation as :func:`build_stage_network` at the
    nominal corner, but returns numpy arrays in DFS preorder together with
    the subtree intervals needed by the vectorized engines.  Corner scalings
    (wire RC, driver strength, rise/fall asymmetry) are applied later by the
    engines as batched scalar multiplies; wire and load capacitance are kept
    separate so that ``wire_cap_scale`` touches only the wire component,
    exactly as in the per-corner builder.  The only (deliberate) deviation:
    the tiny regularization resistance of zero-length connections is scaled
    by ``wire_res_scale`` here but not in :func:`build_stage_network` --
    a sub-femtosecond effect.
    """
    driver_node = tree.node(stage.driver_id)
    driver_buffer = driver_node.buffer
    parent: List[int] = [-1]
    resistance: List[float] = [0.0]
    wire_cap: List[float] = [0.0]
    load_cap: List[float] = [0.0]
    tree_to_net: Dict[int, int] = {stage.driver_id: 0}

    if driver_buffer is not None:
        load_cap[0] += driver_buffer.output_cap
        base_res = driver_buffer.output_res
    else:
        base_res = tree.source_resistance

    stage_edge_set = set(stage.edges)
    stage_tap_set = set(stage.taps)

    stack = [child for child in driver_node.children if child in stage_edge_set]
    order: List[int] = []
    while stack:
        node_id = stack.pop()
        order.append(node_id)
        node = tree.node(node_id)
        if node_id in stage_tap_set:
            continue
        stack.extend(c for c in node.children if c in stage_edge_set)

    for node_id in order:
        node = tree.node(node_id)
        parent_net = tree_to_net[node.parent]
        net_idx = _add_edge_segments(
            node, parent_net, parent, resistance, wire_cap, 1.0, 1.0, max_segment_length
        )
        load_cap.extend([0.0] * (len(wire_cap) - len(load_cap)))
        tree_to_net[node_id] = net_idx
        load_cap[net_idx] += _tap_load(tree, node, node_id in stage_tap_set)

    n = len(parent)
    subtree_end = list(range(1, n + 1))
    for idx in range(n - 1, 0, -1):
        par = parent[idx]
        if subtree_end[idx] > subtree_end[par]:
            subtree_end[par] = subtree_end[idx]

    tap_ids = list(stage.taps)
    return BaseStageNetwork(
        parent=np.asarray(parent, dtype=np.int32),
        resistance=np.asarray(resistance),
        wire_capacitance=np.asarray(wire_cap),
        load_capacitance=np.asarray(load_cap),
        subtree_end=np.asarray(subtree_end, dtype=np.int32),
        tap_ids=tap_ids,
        tap_indices=np.asarray([tree_to_net[t] for t in tap_ids], dtype=np.int32),
        driver_resistance=base_res,
        total_capacitance=float(sum(wire_cap) + sum(load_cap)),
    )


def _tap_load(tree: ClockTree, node: TreeNode, is_tap: bool) -> float:
    """Load capacitance contributed by a tree node inside a stage."""
    load = 0.0
    if node.is_sink and node.sink is not None:
        load += node.sink.capacitance
    if is_tap and node.has_buffer:
        load += node.buffer.input_cap
    return load


def _add_edge_segments(
    node: TreeNode,
    parent_net: int,
    parent: List[int],
    resistance: List[float],
    capacitance: List[float],
    wire_r_scale: float,
    wire_c_scale: float,
    max_segment_length: float,
) -> int:
    """Append the lumped segments of one tree edge; return the far-end index."""
    length = node.edge_length()
    wire = node.wire_type
    if wire is None or length <= 0.0:
        parent.append(parent_net)
        resistance.append(_MIN_RESISTANCE)
        capacitance.append(0.0)
        return len(parent) - 1

    n_segments = max(1, int(length // max_segment_length) + (1 if length % max_segment_length else 0))
    n_segments = min(n_segments, 32)
    seg_len = length / n_segments
    seg_res = max(wire.resistance(seg_len) * wire_r_scale, _MIN_RESISTANCE)
    seg_cap = wire.capacitance(seg_len) * wire_c_scale

    current_parent = parent_net
    last_index = parent_net
    for i in range(n_segments):
        parent.append(current_parent)
        resistance.append(seg_res)
        capacitance.append(seg_cap / 2.0)
        last_index = len(parent) - 1
        # The far half of the segment cap belongs to the new node; the near
        # half belongs to its parent.
        capacitance[current_parent] += seg_cap / 2.0
        # Re-balance: we added the full cap as half to each side already.
        capacitance[last_index] += 0.0
        current_parent = last_index
    return last_index
