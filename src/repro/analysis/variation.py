"""Monte Carlo variation models and skew-yield reporting.

The two-corner Clock Latency Range of the ISPD'09 contest is a *worst-case*
robustness proxy; the follow-on contest (and most industrial sign-off)
instead scores **skew yield**: the fraction of randomized supply/process
scenarios in which the network still meets its skew limit.  This module
provides the sampling side of that evaluation:

* :class:`VariationModel` -- a configurable description of per-stage
  parameter variation (supply voltage, buffer drive strength, unit wire R
  and C) with three sampling families:

  - ``"independent"``: every stage draws its own perturbation (random
    dopant/litho-style uncorrelated variation);
  - ``"correlated"``: perturbations follow a spatial Gaussian field whose
    correlation decays with the distance between stage drivers
    (``exp(-d / correlation_length)``), mixed with an optional chip-global
    component -- the classic across-die variation model;
  - ``"corner_anchored"``: samples slide along the segment(s) spanned by a
    list of anchor :class:`~repro.analysis.corners.Corner` objects
    (e.g. the ISPD'09 supply pair via :meth:`VariationModel.from_corners`),
    optionally with independent per-stage noise on top.

* :class:`VariationSamples` -- the sampled multiplier arrays, shaped
  ``(n_samples, n_stages)`` so the evaluator can apply them in batched numpy
  passes (see :meth:`repro.analysis.evaluator.ClockNetworkEvaluator.evaluate_yield`);
* :class:`YieldReport` -- per-tree skew/CLR/slew distributions with the
  summary statistics (mean, sigma, p95/p99, yield at a skew limit) used by
  the ``repro mc`` command line and the variation-aware acceptance gate.

All multipliers are exactly ``1.0`` (and supply shifts exactly ``0.0``) when
the corresponding sigma is zero, which guarantees that zero-variance Monte
Carlo reproduces the nominal multi-corner evaluation bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.corners import Corner

__all__ = [
    "SAMPLING_FAMILIES",
    "VariationModel",
    "VariationSamples",
    "YieldReport",
    "default_variation_model",
]

SAMPLING_FAMILIES = ("independent", "correlated", "corner_anchored")
"""The supported sampling families, in documentation order."""


@dataclass
class VariationSamples:
    """Sampled per-stage perturbations, one row per Monte Carlo scenario.

    ``driver``, ``wire_res`` and ``wire_cap`` are multipliers (applied on top
    of whatever corner the evaluator analyzes); ``vdd_shift`` is an additive
    supply perturbation in volts, converted to a driver-resistance multiplier
    per corner by :func:`repro.analysis.corners.supply_driver_multiplier`.
    All arrays have shape ``(n_samples, n_stages)`` (broadcast views are
    allowed -- callers only read).
    """

    driver: np.ndarray
    wire_res: np.ndarray
    wire_cap: np.ndarray
    vdd_shift: np.ndarray

    @property
    def n_samples(self) -> int:
        return self.driver.shape[0]

    @property
    def n_stages(self) -> int:
        return self.driver.shape[1]


@dataclass(frozen=True)
class VariationModel:
    """A configurable per-stage supply/process variation model.

    Attributes
    ----------
    family:
        ``"independent"``, ``"correlated"`` or ``"corner_anchored"``.
    vdd_sigma:
        Standard deviation of the per-stage supply perturbation, in volts.
    driver_sigma, wire_res_sigma, wire_cap_sigma:
        Relative standard deviations of the buffer drive resistance and the
        unit wire R/C multipliers.
    correlation_length:
        Distance (um) over which the ``"correlated"`` family's spatial field
        decays to ``1/e``.
    global_fraction:
        Share of the variance carried by a chip-global component in the
        ``"correlated"`` family (0 = purely local, 1 = one global draw).
    anchors:
        Anchor corners of the ``"corner_anchored"`` family, strongest supply
        first (see :meth:`from_corners`).
    truncation:
        Gaussian draws are clamped to ``±truncation`` sigmas so an extreme
        sample cannot drive a multiplier to zero or negative.
    """

    family: str = "independent"
    vdd_sigma: float = 0.0
    driver_sigma: float = 0.0
    wire_res_sigma: float = 0.0
    wire_cap_sigma: float = 0.0
    correlation_length: float = 1000.0
    global_fraction: float = 0.25
    anchors: Tuple[Corner, ...] = ()
    truncation: float = 3.0

    #: One-slot cache of the spatial Cholesky factor (an O(stages^3)
    #: reduction): acceptance-gate checks call sample() dozens of times on
    #: unchanged stage geometry.  Excluded from equality/hash/repr (and from
    #: config digests, which skip non-compare fields); ``init=False`` keeps
    #: it out of the constructor, so the frozen dataclass still populates it.
    _transform_cache: Dict[Tuple[Tuple[int, ...], bytes], np.ndarray] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    _MIN_MULTIPLIER = 0.05

    def __post_init__(self) -> None:
        if self.family not in SAMPLING_FAMILIES:
            raise ValueError(
                f"unknown sampling family {self.family!r}; choose from {SAMPLING_FAMILIES}"
            )
        for name in ("vdd_sigma", "driver_sigma", "wire_res_sigma", "wire_cap_sigma"):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be non-negative")
        if self.correlation_length <= 0.0:
            raise ValueError("correlation_length must be positive")
        if not 0.0 <= self.global_fraction <= 1.0:
            raise ValueError("global_fraction must lie in [0, 1]")
        if self.family == "corner_anchored" and len(self.anchors) < 2:
            raise ValueError(
                "the corner_anchored family needs at least two anchor corners "
                "(use VariationModel.from_corners)"
            )
        if self.truncation <= 0.0:
            raise ValueError("truncation must be positive")

    # ------------------------------------------------------------------
    @classmethod
    def from_corners(cls, corners: Sequence[Corner], **overrides: Any) -> "VariationModel":
        """A corner-anchored model spanning the given corner list.

        The anchors are ordered strongest supply first, so the reference
        anchor (``t = 0``, all multipliers exactly 1) coincides with the
        evaluator's fast corner and :meth:`anchor_corner` round-trips the
        input corners at integer ``t``.
        """
        if len(corners) < 2:
            raise ValueError("from_corners needs at least two corners")
        anchors = tuple(sorted(corners, key=lambda c: -c.vdd))
        overrides.setdefault("family", "corner_anchored")
        return cls(anchors=anchors, **overrides)

    def anchor_corner(self, t: float) -> Corner:
        """The interpolated corner at anchor coordinate ``t``.

        ``t = 0`` is the first (strongest-supply) anchor, ``t = 1`` the next,
        and so on; fractional ``t`` interpolates every scale linearly, so
        ``anchor_corner(i)`` reproduces the ``i``-th anchor exactly -- the
        round-trip property the corner tests pin down.
        """
        if self.family != "corner_anchored":
            raise ValueError("anchor_corner is only defined for corner_anchored models")
        grid = np.arange(len(self.anchors), dtype=float)
        t = float(np.clip(t, 0.0, grid[-1]))
        if t == int(t):  # exact anchors round-trip bit-for-bit
            return self.anchors[int(t)]
        return Corner(
            name=f"anchor@t={t:g}",
            vdd=float(np.interp(t, grid, [a.vdd for a in self.anchors])),
            driver_scale=float(np.interp(t, grid, [a.driver_scale for a in self.anchors])),
            wire_res_scale=float(np.interp(t, grid, [a.wire_res_scale for a in self.anchors])),
            wire_cap_scale=float(np.interp(t, grid, [a.wire_cap_scale for a in self.anchors])),
        )

    # ------------------------------------------------------------------
    @property
    def is_zero_variance(self) -> bool:
        """True when sampling can only ever return the nominal scenario."""
        sigmas_zero = (
            self.vdd_sigma == 0.0
            and self.driver_sigma == 0.0
            and self.wire_res_sigma == 0.0
            and self.wire_cap_sigma == 0.0
        )
        return sigmas_zero and self.family != "corner_anchored"

    @property
    def perturbs_wire_cap(self) -> bool:
        """True when samples may scale wire capacitance away from nominal.

        The evaluator uses this to decide whether the moment reduction must
        keep wire and load capacitance separate (see
        :func:`repro.analysis.arnoldi.base_tap_moments`).
        """
        if self.wire_cap_sigma > 0.0:
            return True
        if self.family == "corner_anchored":
            reference = self.anchors[0].wire_cap_scale
            return any(a.wire_cap_scale != reference for a in self.anchors)
        return False

    def describe(self) -> Dict[str, object]:
        """JSON-able description used in reports and benchmark records."""
        payload: Dict[str, object] = {
            "family": self.family,
            "vdd_sigma_V": self.vdd_sigma,
            "driver_sigma": self.driver_sigma,
            "wire_res_sigma": self.wire_res_sigma,
            "wire_cap_sigma": self.wire_cap_sigma,
        }
        if self.family == "correlated":
            payload["correlation_length_um"] = self.correlation_length
            payload["global_fraction"] = self.global_fraction
        if self.family == "corner_anchored":
            payload["anchors"] = [a.name for a in self.anchors]
        return payload

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(
        self,
        n_samples: int,
        rng: np.random.Generator,
        positions: Optional[np.ndarray] = None,
        n_stages: Optional[int] = None,
    ) -> VariationSamples:
        """Draw ``n_samples`` per-stage perturbation scenarios.

        ``positions`` holds the planar coordinates of each stage driver,
        shape ``(n_stages, 2)``; it is required by the ``"correlated"``
        family and ignored otherwise (pass ``n_stages`` instead when no
        geometry is at hand).
        """
        if n_samples < 1:
            raise ValueError("n_samples must be >= 1")
        if positions is not None:
            positions = np.asarray(positions, dtype=float)
            stages = positions.shape[0]
        elif n_stages is not None:
            stages = int(n_stages)
        else:
            raise ValueError("sample() needs positions or n_stages")
        if stages < 1:
            raise ValueError("at least one stage is required")

        if self.family == "independent":
            draw = lambda: self._truncated_normal(rng, (n_samples, stages))  # noqa: E731
        elif self.family == "correlated":
            if positions is None:
                raise ValueError("the correlated family needs stage positions")
            transform = self._spatial_transform(positions)
            draw = lambda: self._correlated_field(rng, n_samples, transform)  # noqa: E731
        else:  # corner_anchored: anchor sweep times optional independent noise
            return self._sample_anchored(n_samples, rng, stages)

        return VariationSamples(
            driver=self._floored(1.0 + self.driver_sigma * draw()),
            wire_res=self._floored(1.0 + self.wire_res_sigma * draw()),
            wire_cap=self._floored(1.0 + self.wire_cap_sigma * draw()),
            vdd_shift=self.vdd_sigma * draw(),
        )

    def _floored(self, multipliers: np.ndarray) -> np.ndarray:
        """Keep multipliers physical even for sigma > 1/truncation.

        An exact ``1.0`` (the zero-variance case) passes through bit-for-bit.
        """
        return np.maximum(multipliers, self._MIN_MULTIPLIER)

    # -- shared draw helpers -------------------------------------------
    def _truncated_normal(
        self, rng: np.random.Generator, shape: Union[int, Tuple[int, ...]]
    ) -> np.ndarray:
        z = rng.standard_normal(shape)
        return np.clip(z, -self.truncation, self.truncation)

    def _spatial_transform(self, positions: np.ndarray) -> np.ndarray:
        """Cholesky factor of the spatial correlation kernel (unit variance).

        The kernel mixes a chip-global component with an exponentially
        decaying local one: ``rho_ij = g + (1 - g) * exp(-d_ij / L)``.  The
        factor is cached against the position set (one slot: geometry only
        changes when a tuning round is accepted).
        """
        cache = self._transform_cache
        key = (positions.shape, positions.tobytes())
        cached = cache.get(key)
        if cached is not None:
            return cached
        deltas = positions[:, None, :] - positions[None, :, :]
        distances = np.sqrt((deltas**2).sum(axis=-1))
        kernel = self.global_fraction + (1.0 - self.global_fraction) * np.exp(
            -distances / self.correlation_length
        )
        kernel[np.diag_indices_from(kernel)] = 1.0 + 1e-9
        transform = np.linalg.cholesky(kernel)
        cache.clear()
        cache[key] = transform
        return transform

    def _correlated_field(
        self, rng: np.random.Generator, n_samples: int, transform: np.ndarray
    ) -> np.ndarray:
        z = rng.standard_normal((n_samples, transform.shape[0]))
        return np.clip(z @ transform.T, -self.truncation, self.truncation)

    def _sample_anchored(
        self, n_samples: int, rng: np.random.Generator, stages: int
    ) -> VariationSamples:
        """Sweep the anchor chain uniformly, with per-stage noise on top.

        The anchor multipliers are chip-global (every stage moves to the
        same point between the corners -- a supply droop affects the whole
        network) and *relative to the reference anchor*; the evaluator
        applies them on top of each of its own corners.  Supply dependence
        is already encoded in the anchors' driver scales, so the anchored
        component leaves ``vdd_shift`` at zero and only per-stage noise
        (``vdd_sigma``) contributes supply shifts.
        """
        grid = np.arange(len(self.anchors), dtype=float)
        t = rng.random(n_samples) * grid[-1]
        reference = self.anchors[0]
        drv = np.interp(t, grid, [a.driver_scale for a in self.anchors]) / reference.driver_scale
        res = np.interp(t, grid, [a.wire_res_scale for a in self.anchors]) / reference.wire_res_scale
        cap = np.interp(t, grid, [a.wire_cap_scale for a in self.anchors]) / reference.wire_cap_scale

        def spread(global_row: np.ndarray, sigma: float) -> np.ndarray:
            column = global_row[:, None]
            if sigma == 0.0:
                return np.broadcast_to(column, (n_samples, stages))
            noise = 1.0 + sigma * self._truncated_normal(rng, (n_samples, stages))
            return self._floored(column * noise)

        if self.vdd_sigma == 0.0:
            vdd_shift = np.zeros((n_samples, stages))
        else:
            vdd_shift = self.vdd_sigma * self._truncated_normal(rng, (n_samples, stages))
        return VariationSamples(
            driver=spread(drv, self.driver_sigma),
            wire_res=spread(res, self.wire_res_sigma),
            wire_cap=spread(cap, self.wire_cap_sigma),
            vdd_shift=vdd_shift,
        )


def default_variation_model(family: str = "independent", **overrides: Any) -> VariationModel:
    """The stock variation model used by the gate, CLI and benchmarks.

    Sigma magnitudes follow the usual across-die budgets quoted for 45 nm
    class processes: ~2% supply noise, 5% drive-strength spread and 4%
    interconnect RC spread.  Any field can be overridden by keyword.
    """
    defaults = dict(
        family=family,
        vdd_sigma=0.02,
        driver_sigma=0.05,
        wire_res_sigma=0.04,
        wire_cap_sigma=0.04,
    )
    defaults.update(overrides)
    return VariationModel(**defaults)


# ----------------------------------------------------------------------
# Yield reporting
# ----------------------------------------------------------------------
@dataclass
class YieldReport:
    """Distributional outcome of one Monte Carlo evaluation of a tree.

    ``skew_samples`` / ``clr_samples`` / ``worst_slew_samples`` are the raw
    per-scenario metrics (ps), shape ``(n_samples,)``; the statistics
    properties summarize them the way Table-style reports and the acceptance
    gate consume them.
    """

    n_samples: int
    engine: str
    model: Dict[str, object]
    skew_limit_ps: float
    slew_limit_ps: float
    fast_corner: str
    slow_corner: str
    skew_samples: np.ndarray
    clr_samples: np.ndarray
    worst_slew_samples: np.ndarray

    # -- skew ----------------------------------------------------------
    @property
    def skew_mean(self) -> float:
        return float(self.skew_samples.mean())

    @property
    def skew_std(self) -> float:
        return float(self.skew_samples.std())

    @property
    def skew_p95(self) -> float:
        return float(np.percentile(self.skew_samples, 95.0))

    @property
    def skew_p99(self) -> float:
        return float(np.percentile(self.skew_samples, 99.0))

    @property
    def skew_max(self) -> float:
        return float(self.skew_samples.max())

    # -- CLR -----------------------------------------------------------
    @property
    def clr_mean(self) -> float:
        return float(self.clr_samples.mean())

    @property
    def clr_p95(self) -> float:
        return float(np.percentile(self.clr_samples, 95.0))

    @property
    def clr_p99(self) -> float:
        return float(np.percentile(self.clr_samples, 99.0))

    # -- yield ---------------------------------------------------------
    @property
    def skew_yield(self) -> float:
        """Fraction of scenarios meeting the skew limit."""
        return float((self.skew_samples <= self.skew_limit_ps).mean())

    @property
    def slew_yield(self) -> float:
        """Fraction of scenarios with every tap slew inside the limit."""
        return float((self.worst_slew_samples <= self.slew_limit_ps).mean())

    def yield_at(self, skew_limit_ps: float) -> float:
        """Skew yield against an arbitrary limit (for yield-vs-limit curves)."""
        return float((self.skew_samples <= skew_limit_ps).mean())

    def summary(self) -> Dict[str, object]:
        """Compact JSON-able record (no raw sample arrays)."""
        return {
            "n_samples": self.n_samples,
            "engine": self.engine,
            "model": self.model,
            "skew_limit_ps": self.skew_limit_ps,
            "skew_mean_ps": self.skew_mean,
            "skew_std_ps": self.skew_std,
            "skew_p95_ps": self.skew_p95,
            "skew_p99_ps": self.skew_p99,
            "skew_max_ps": self.skew_max,
            "skew_yield": self.skew_yield,
            "clr_mean_ps": self.clr_mean,
            "clr_p95_ps": self.clr_p95,
            "clr_p99_ps": self.clr_p99,
            "slew_yield": self.slew_yield,
        }
