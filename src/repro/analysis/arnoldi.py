"""Reduced-order (moment-matching) timing engine for stage networks.

The paper notes that SPICE can be replaced by "Arnoldi approximation, or any
other available timing analysis tool/model".  This engine computes the first
two moments of every tap transfer function with two tree traversals -- the
path-tracing equivalent of one Arnoldi/Krylov step -- and converts them to
delay and slew with the D2M and lognormal-variance metrics.  It is roughly an
order of magnitude faster than the transient solver and substantially more
accurate than Elmore on resistively-shielded nets.

Two implementations live here:

* :func:`stage_moments` / :func:`arnoldi_stage_timing` -- the reference
  per-network recurrences on a :class:`StageNetwork` (any topological node
  order, one corner at a time), kept as the public single-stage API;
* the **vectorized batch path** used by the incremental evaluator:
  :func:`base_tap_moments` reduces a corner-independent
  :class:`~repro.analysis.rcnetwork.BaseStageNetwork` to a handful of
  per-tap base vectors with numpy prefix sums (no per-segment Python loop),
  and :func:`batched_tap_moments` turns those into exact ``m1``/``m2`` for
  *every* corner and transition at once.  The factorization rests on the
  corner model being a per-stage scaling: with wire scales ``r`` (res) and
  ``w`` (cap, applied to wire capacitance only) and total driver resistance
  ``D``, the moment recurrences separate into

      m1 = D*K(w) + r*a(w)
      m2 = D^2*K(w)^2 + D*r*A0(w) + D*K(w)*r*a(w) + r^2*P(w)

  where ``K(w)``/``a(w)`` are linear and ``A0(w)``/``P(w)`` quadratic
  polynomials in ``w`` whose coefficients (wire/load capacitance split)
  depend only on the stage's RC content -- so they are computed once per
  content revision and reused across corners, transitions and evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.elmore import StageTiming
from repro.analysis.rcnetwork import BaseStageNetwork, StageNetwork, path_sums, subtree_interval_sums
from repro.analysis.units import LN2, LN9, OHM_FF_TO_PS

__all__ = [
    "stage_moments",
    "arnoldi_stage_timing",
    "BaseTapMoments",
    "base_tap_moments",
    "batched_tap_moments",
    "batched_delay_sigma",
]


def stage_moments(network: StageNetwork) -> Tuple[List[float], List[float]]:
    """Return (m1, m2) at every network node.

    ``m1`` is the (sign-dropped) first moment -- the Elmore delay -- and
    ``m2`` the second moment of the impulse response, both in ps and ps^2.
    The recurrences are the standard RC-tree path formulas:

        m1(i) = sum_{e on path(i)} R_e * C_down(e)
        m2(i) = sum_{e on path(i)} R_e * M_down(e),  M_down(e) = sum_k C_k m1(k)

    with the driver resistance acting as the topmost path resistance.
    """
    downstream_cap = network.downstream_capacitance()
    m1 = [0.0] * network.size
    m1[0] = network.driver_resistance * downstream_cap[0] * OHM_FF_TO_PS
    for idx in range(1, network.size):
        par = network.parent[idx]
        m1[idx] = m1[par] + network.resistance[idx] * downstream_cap[idx] * OHM_FF_TO_PS

    # Downstream capacitance-weighted first moments.
    weighted = [network.capacitance[i] * m1[i] for i in range(network.size)]
    for idx in range(network.size - 1, 0, -1):
        weighted[network.parent[idx]] += weighted[idx]

    m2 = [0.0] * network.size
    m2[0] = network.driver_resistance * weighted[0] * OHM_FF_TO_PS
    for idx in range(1, network.size):
        par = network.parent[idx]
        m2[idx] = m2[par] + network.resistance[idx] * weighted[idx] * OHM_FF_TO_PS
    return m1, m2


def arnoldi_stage_timing(network: StageNetwork, input_slew: float) -> StageTiming:
    """Delay/slew at every tap from two-moment reduced-order models.

    Delay uses the D2M metric ``ln(2) * m1^2 / sqrt(m2)`` (clamped to the
    Elmore value from above, since D2M can overshoot on near taps); slew uses
    the lognormal variance ``sigma^2 = 2*m2 - m1^2`` combined with the input
    transition by the PERI rule.
    """
    m1, m2 = stage_moments(network)
    delay_map: Dict[int, float] = {}
    slew_map: Dict[int, float] = {}
    for tree_id, idx in network.tap_index.items():
        first, second = m1[idx], m2[idx]
        if second <= 0.0 or first <= 0.0:
            delay = LN2 * first
            sigma = first
        else:
            delay = LN2 * first * first / (second**0.5)
            delay = min(delay, first)
            variance = max(2.0 * second - first * first, (0.1 * first) ** 2)
            sigma = variance**0.5
        wire_slew = LN9 * sigma
        slew = (wire_slew**2 + input_slew**2) ** 0.5
        delay_map[tree_id] = delay
        slew_map[tree_id] = slew
    return StageTiming(delay=delay_map, slew=slew_map)


# ----------------------------------------------------------------------
# Vectorized multi-corner path (used by the incremental evaluator)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BaseTapMoments:
    """Corner-independent moment ingredients of one stage, reduced to its taps.

    Capacitance enters in two components -- wire (``w``-scaled by
    ``wire_cap_scale``) and load (never scaled) -- so every vector that is
    linear in capacitance splits in two, and every vector that is bilinear
    (the second-moment ingredients) splits in three by powers of ``w``.  All
    quantities are in raw ohm/fF units (no :data:`OHM_FF_TO_PS` applied); the
    conversion happens in :func:`batched_tap_moments`.
    """

    tap_ids: Tuple[int, ...]
    a_wire_tap: np.ndarray  # sum_path R_e * CdownWire_e at each tap
    a_load_tap: np.ndarray  # sum_path R_e * CdownLoad_e at each tap
    p_ww_tap: np.ndarray  # sum_path R_e * (sum_sub Cw_k * aW_k)     (w^2 term)
    p_mixed_tap: np.ndarray  # sum_path R_e * (sum_sub Cw*aL + Cl*aW) (w^1 term)
    p_ll_tap: np.ndarray  # sum_path R_e * (sum_sub Cl_k * aL_k)     (w^0 term)
    wire_cap_total: float  # Kw: total wire capacitance of the stage
    load_cap_total: float  # Kl: total load capacitance of the stage
    a0_ww: float  # sum over all nodes of Cw_k * aW_k
    a0_mixed: float  # sum over all nodes of Cw_k*aL_k + Cl_k*aW_k
    a0_ll: float  # sum over all nodes of Cl_k * aL_k
    driver_resistance: float  # unscaled driver resistance


def base_tap_moments(base: BaseStageNetwork, split_wire_load: bool = True) -> BaseTapMoments:
    """Reduce a base stage network to the per-tap moment base vectors.

    Every per-segment accumulation (downstream capacitance, the two path-sum
    sweeps of the m1/m2 recurrences) runs as numpy prefix sums over the whole
    segment array at once.

    ``split_wire_load=False`` collapses wire and load capacitance into the
    (never ``w``-scaled) load component, halving the reduction work.  It is
    only valid when every corner subsequently passed to
    :func:`batched_tap_moments` has ``wire_cap_scale == 1.0`` -- true for the
    ISPD'09 corner set -- in which case the results are identical.
    """
    cap_w = base.wire_capacitance
    cap_l = base.load_capacitance
    res = base.resistance
    end = base.subtree_end
    taps = base.tap_indices
    if not split_wire_load:
        cap = cap_w + cap_l
        cdown = subtree_interval_sums(cap, end)
        a = path_sums(res * cdown, end)
        weighted = cap * a
        p = path_sums(res * subtree_interval_sums(weighted, end), end)
        zeros = np.zeros(len(taps))
        return BaseTapMoments(
            tap_ids=tuple(base.tap_ids),
            a_wire_tap=zeros,
            a_load_tap=a[taps],
            p_ww_tap=zeros,
            p_mixed_tap=zeros,
            p_ll_tap=p[taps],
            wire_cap_total=0.0,
            load_cap_total=float(cap.sum()),
            a0_ww=0.0,
            a0_mixed=0.0,
            a0_ll=float(weighted.sum()),
            driver_resistance=base.driver_resistance,
        )
    cdown_w = subtree_interval_sums(cap_w, end)
    cdown_l = subtree_interval_sums(cap_l, end)
    a_w = path_sums(res * cdown_w, end)
    a_l = path_sums(res * cdown_l, end)
    weighted_ww = cap_w * a_w
    weighted_mixed = cap_w * a_l + cap_l * a_w
    weighted_ll = cap_l * a_l
    p_ww = path_sums(res * subtree_interval_sums(weighted_ww, end), end)
    p_mixed = path_sums(res * subtree_interval_sums(weighted_mixed, end), end)
    p_ll = path_sums(res * subtree_interval_sums(weighted_ll, end), end)
    return BaseTapMoments(
        tap_ids=tuple(base.tap_ids),
        a_wire_tap=a_w[taps],
        a_load_tap=a_l[taps],
        p_ww_tap=p_ww[taps],
        p_mixed_tap=p_mixed[taps],
        p_ll_tap=p_ll[taps],
        wire_cap_total=float(cap_w.sum()),
        load_cap_total=float(cap_l.sum()),
        a0_ww=float(weighted_ww.sum()),
        a0_mixed=float(weighted_mixed.sum()),
        a0_ll=float(weighted_ll.sum()),
        driver_resistance=base.driver_resistance,
    )


def batched_tap_moments(
    moments: BaseTapMoments,
    driver_scales: Sequence[float],
    wire_res_scales: Sequence[float],
    wire_cap_scales: Sequence[float],
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact (m1, m2) at every tap for a batch of corner/transition scalings.

    The three scale sequences must have equal length ``M`` (one entry per
    corner-and-transition combination); the result arrays have shape
    ``(M, taps)`` with m1 in ps and m2 in ps^2.  ``wire_cap_scales`` applies
    only to the wire-capacitance component, matching
    :func:`repro.analysis.rcnetwork.build_stage_network`.
    """
    d_scale = np.asarray(driver_scales)[:, None]
    r = np.asarray(wire_res_scales)[:, None]
    w = np.asarray(wire_cap_scales)[:, None]
    drv = moments.driver_resistance * d_scale
    k = w * moments.wire_cap_total + moments.load_cap_total
    a = w * moments.a_wire_tap[None, :] + moments.a_load_tap[None, :]
    a0 = w * w * moments.a0_ww + w * moments.a0_mixed + moments.a0_ll
    p = (
        w * w * moments.p_ww_tap[None, :]
        + w * moments.p_mixed_tap[None, :]
        + moments.p_ll_tap[None, :]
    )
    m1 = OHM_FF_TO_PS * (drv * k + r * a)
    m2 = (OHM_FF_TO_PS**2) * (
        drv * drv * k * k + drv * r * a0 + drv * r * k * a + r * r * p
    )
    return m1, m2


def batched_delay_sigma(
    m1: np.ndarray, m2: np.ndarray, use_d2m: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized delay and intrinsic-slew sigma from batched moments.

    With ``use_d2m`` this reproduces :func:`arnoldi_stage_timing`'s metrics
    (D2M delay clamped by Elmore, lognormal-variance sigma) elementwise;
    without it, it reproduces the Elmore engine (delay = sigma = m1).  The
    returned sigma is the quantity multiplied by ``ln(9)`` and PERI-combined
    with the input transition to obtain the tap slew.
    """
    if not use_d2m:
        return m1, m1
    degenerate = (m2 <= 0.0) | (m1 <= 0.0)
    safe_m2 = np.where(degenerate, 1.0, m2)
    d2m = LN2 * m1 * m1 / np.sqrt(safe_m2)
    delay = np.where(degenerate, LN2 * m1, np.minimum(d2m, m1))
    variance = np.maximum(2.0 * m2 - m1 * m1, (0.1 * m1) ** 2)
    sigma = np.where(degenerate, m1, np.sqrt(np.maximum(variance, 0.0)))
    return delay, sigma
