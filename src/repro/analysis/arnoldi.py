"""Reduced-order (moment-matching) timing engine for stage networks.

The paper notes that SPICE can be replaced by "Arnoldi approximation, or any
other available timing analysis tool/model".  This engine computes the first
two moments of every tap transfer function with two tree traversals -- the
path-tracing equivalent of one Arnoldi/Krylov step -- and converts them to
delay and slew with the D2M and lognormal-variance metrics.  It is roughly an
order of magnitude faster than the transient solver and substantially more
accurate than Elmore on resistively-shielded nets.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.elmore import StageTiming
from repro.analysis.rcnetwork import StageNetwork
from repro.analysis.units import LN2, LN9, OHM_FF_TO_PS

__all__ = ["stage_moments", "arnoldi_stage_timing"]


def stage_moments(network: StageNetwork) -> Tuple[List[float], List[float]]:
    """Return (m1, m2) at every network node.

    ``m1`` is the (sign-dropped) first moment -- the Elmore delay -- and
    ``m2`` the second moment of the impulse response, both in ps and ps^2.
    The recurrences are the standard RC-tree path formulas:

        m1(i) = sum_{e on path(i)} R_e * C_down(e)
        m2(i) = sum_{e on path(i)} R_e * M_down(e),  M_down(e) = sum_k C_k m1(k)

    with the driver resistance acting as the topmost path resistance.
    """
    downstream_cap = network.downstream_capacitance()
    m1 = [0.0] * network.size
    m1[0] = network.driver_resistance * downstream_cap[0] * OHM_FF_TO_PS
    for idx in range(1, network.size):
        par = network.parent[idx]
        m1[idx] = m1[par] + network.resistance[idx] * downstream_cap[idx] * OHM_FF_TO_PS

    # Downstream capacitance-weighted first moments.
    weighted = [network.capacitance[i] * m1[i] for i in range(network.size)]
    for idx in range(network.size - 1, 0, -1):
        weighted[network.parent[idx]] += weighted[idx]

    m2 = [0.0] * network.size
    m2[0] = network.driver_resistance * weighted[0] * OHM_FF_TO_PS
    for idx in range(1, network.size):
        par = network.parent[idx]
        m2[idx] = m2[par] + network.resistance[idx] * weighted[idx] * OHM_FF_TO_PS
    return m1, m2


def arnoldi_stage_timing(network: StageNetwork, input_slew: float) -> StageTiming:
    """Delay/slew at every tap from two-moment reduced-order models.

    Delay uses the D2M metric ``ln(2) * m1^2 / sqrt(m2)`` (clamped to the
    Elmore value from above, since D2M can overshoot on near taps); slew uses
    the lognormal variance ``sigma^2 = 2*m2 - m1^2`` combined with the input
    transition by the PERI rule.
    """
    m1, m2 = stage_moments(network)
    delay_map: Dict[int, float] = {}
    slew_map: Dict[int, float] = {}
    for tree_id, idx in network.tap_index.items():
        first, second = m1[idx], m2[idx]
        if second <= 0.0 or first <= 0.0:
            delay = LN2 * first
            sigma = first
        else:
            delay = LN2 * first * first / (second**0.5)
            delay = min(delay, first)
            variance = max(2.0 * second - first * first, (0.1 * first) ** 2)
            sigma = variance**0.5
        wire_slew = LN9 * sigma
        slew = (wire_slew**2 + input_slew**2) ** 0.5
        delay_map[tree_id] = delay
        slew_map[tree_id] = slew
    return StageTiming(delay=delay_map, slew=slew_map)
