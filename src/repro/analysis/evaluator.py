"""Clock-network evaluation: latency, skew, slew, CLR, capacitance.

This module is the Clock-Network Evaluation (CNE) box of Figure 1 in the
paper.  It decomposes the buffered tree into stages, analyzes every stage with
the selected engine (Elmore, Arnoldi/moment-matching, or the transient RC
solver), propagates arrival times and slews stage by stage for both launch
transitions, and repeats the analysis at every requested process/voltage
corner.  The resulting :class:`EvaluationReport` carries everything the
optimization passes need: per-sink rise/fall latencies, skew, the multi-corner
Clock Latency Range (CLR), worst slew, slew violations and the capacitance
(power) total.

Incremental evaluation
----------------------
Contango's optimization passes call the evaluator after every candidate move,
but a move touches a handful of edges while the tree has hundreds of stages.
The evaluator therefore keeps a :class:`StageCache`: stage analysis results
are stored under **content keys** derived from the mutation journal of
:class:`~repro.cts.tree.ClockTree` (per-node revisions plus the structure
revision), so re-evaluating a tree re-extracts and re-analyzes only the
stages whose RC content actually changed since any previous evaluation --
including evaluations of clones, probes and rolled-back snapshots, which
share revisions with the tree they were copied from.  Arrival/slew
propagation over the cached per-stage results is cheap dictionary arithmetic
and is re-run in full, so downstream effects of a dirty stage (changed input
slews at later stages) are always reflected exactly: an incremental
evaluation returns bit-identical results to a cold one.

For the analytical engines (``elmore``/``arnoldi``) each stage is reduced
once per content revision to a few base vectors
(:func:`repro.analysis.arnoldi.base_tap_moments`, built with numpy prefix
sums over all segments at once) from which delays and slews at *every* corner
and transition are produced in one batched array operation -- no per-corner
network rebuilds.  The transient (``spice``) engine caches the per-corner
stage networks and per-input-slew waveform analyses instead.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.arnoldi import (
    BaseTapMoments,
    base_tap_moments,
    batched_delay_sigma,
    batched_tap_moments,
)
from repro.analysis.corners import Corner, ispd09_corners, supply_driver_multiplier
from repro.analysis.elmore import StageTiming
from repro.analysis.rcnetwork import (
    Stage,
    StageNetwork,
    build_base_stage_network,
    build_stage_network,
    extract_stages,
)
from repro.analysis.spice import TransientSolverConfig, transient_stage_timing
from repro.analysis.units import LN9
from repro.analysis.variation import VariationModel, VariationSamples, YieldReport
from repro.cts.tree import ClockTree
from repro.seeding import derive_rng

__all__ = [
    "EvaluatorConfig",
    "CornerTiming",
    "EvaluationReport",
    "StageCache",
    "ClockNetworkEvaluator",
]

RISE = "rise"
FALL = "fall"
_TRANSITIONS = (RISE, FALL)


@dataclass(frozen=True)
class EvaluatorConfig:
    """Settings of the clock-network evaluator.

    Attributes
    ----------
    engine:
        ``"elmore"``, ``"arnoldi"`` or ``"spice"`` (transient RC solver).
    max_segment_length:
        Maximum lumped-RC segment length in um (see
        :func:`repro.analysis.rcnetwork.build_stage_network`).
    slew_limit:
        Maximum allowed 10-90% transition time at any tap, in ps.
    source_slew:
        Input transition time of the clock source, in ps.
    slew_delay_factor:
        Fraction of the input slew added to a buffer's gate delay (first-order
        model of slew-dependent gate delay).
    buffer_slew_regeneration:
        Fraction of the input transition that survives through a switching
        inverter and shapes its output ramp.  Inverters regenerate the edge,
        so the output slew is dominated by the driver's own R*C and only
        weakly coupled to the input slew; without this attenuation slews would
        (unphysically) accumulate down the buffer chain.
    pull_up_factor, pull_down_factor:
        Asymmetry of the driver resistance for rising and falling outputs.
    solver:
        Numerical settings for the transient engine.
    incremental:
        Enable the :class:`StageCache` so that repeated evaluations only
        re-analyze stages whose RC content changed.  Results are identical to
        cold evaluation; disable only for debugging or memory-constrained
        runs.
    """

    engine: str = "spice"
    max_segment_length: float = 100.0
    slew_limit: float = 100.0
    source_slew: float = 10.0
    slew_delay_factor: float = 0.08
    buffer_slew_regeneration: float = 0.25
    pull_up_factor: float = 1.08
    pull_down_factor: float = 0.95
    solver: TransientSolverConfig = field(default_factory=TransientSolverConfig)
    incremental: bool = True

    def __post_init__(self) -> None:
        if self.engine not in ("elmore", "arnoldi", "spice"):
            raise ValueError(f"unknown timing engine {self.engine!r}")
        if self.slew_limit <= 0.0:
            raise ValueError("slew limit must be positive")


@dataclass
class CornerTiming:
    """Timing of the whole network at one corner.

    ``latency`` and ``slew`` map sink node ids to ``{"rise": ps, "fall": ps}``.
    ``tap_slew`` additionally includes buffer-input taps, which are subject to
    the same slew limit as sinks.
    """

    corner: Corner
    latency: Dict[int, Dict[str, float]]
    slew: Dict[int, Dict[str, float]]
    tap_slew: Dict[int, Dict[str, float]]

    def max_latency(self, transition: Optional[str] = None) -> float:
        return max(self._latency_values(transition))

    def min_latency(self, transition: Optional[str] = None) -> float:
        return min(self._latency_values(transition))

    def skew(self, transition: Optional[str] = None) -> float:
        """Worst skew; with ``transition=None`` the worse of rise and fall skew."""
        if transition is not None:
            values = self._latency_values(transition)
            return max(values) - min(values)
        return max(self.skew(RISE), self.skew(FALL))

    def worst_slew(self) -> float:
        return max(
            value for per_tap in self.tap_slew.values() for value in per_tap.values()
        )

    def slew_violations(self, limit: float) -> List[int]:
        """Tap node ids whose rise or fall slew exceeds ``limit``."""
        return [
            node_id
            for node_id, per_tap in self.tap_slew.items()
            if max(per_tap.values()) > limit
        ]

    def _latency_values(self, transition: Optional[str]) -> List[float]:
        if transition is None:
            return [v for per_sink in self.latency.values() for v in per_sink.values()]
        return [per_sink[transition] for per_sink in self.latency.values()]


@dataclass
class EvaluationReport:
    """Result of one Clock-Network Evaluation (CNE) step."""

    corners: Dict[str, CornerTiming]
    fast_corner: str
    slow_corner: str
    engine: str
    slew_limit: float
    total_capacitance: float
    capacitance_limit: Optional[float]
    wirelength: float
    evaluation_index: int

    @property
    def nominal(self) -> CornerTiming:
        """Timing at the fast (nominal-supply) corner, used for skew optimization."""
        return self.corners[self.fast_corner]

    @property
    def skew(self) -> float:
        """Nominal skew: worse of rise/fall skew at the fast corner."""
        return self.nominal.skew()

    @property
    def clr(self) -> float:
        """Clock Latency Range across the fast and slow corners."""
        slow = self.corners[self.slow_corner]
        fast = self.corners[self.fast_corner]
        return max(
            slow.max_latency(t) - fast.min_latency(t) for t in _TRANSITIONS
        )

    @property
    def max_latency(self) -> float:
        """Greatest sink latency at the slow corner (the paper's "Latency" column)."""
        return self.corners[self.slow_corner].max_latency()

    @property
    def worst_slew(self) -> float:
        return max(timing.worst_slew() for timing in self.corners.values())

    @property
    def slew_violations(self) -> List[int]:
        violations: List[int] = []
        for timing in self.corners.values():
            violations.extend(timing.slew_violations(self.slew_limit))
        return sorted(set(violations))

    @property
    def has_slew_violation(self) -> bool:
        return bool(self.slew_violations)

    @property
    def within_capacitance_limit(self) -> bool:
        if self.capacitance_limit is None:
            return True
        return self.total_capacitance <= self.capacitance_limit

    @property
    def capacitance_utilization(self) -> Optional[float]:
        """Total capacitance as a fraction of the limit (None when unlimited)."""
        if self.capacitance_limit is None:
            return None
        return self.total_capacitance / self.capacitance_limit

    def summary(self) -> Dict[str, float]:
        """Compact numeric summary used by flow logs and benchmarks."""
        return {
            "skew_ps": self.skew,
            "clr_ps": self.clr,
            "max_latency_ps": self.max_latency,
            "worst_slew_ps": self.worst_slew,
            "total_capacitance_fF": self.total_capacitance,
            "wirelength_um": self.wirelength,
            "slew_violations": float(len(self.slew_violations)),
        }


# Content key of one stage: (driver head, ((edge id, edge revision), ...)).
_StageKey = Tuple[tuple, tuple]


class StageCache:
    """Content-addressed cache of per-stage analysis results.

    Entries are keyed by stage content keys built from the
    :class:`~repro.cts.tree.ClockTree` mutation journal, so they remain valid
    across snapshots, clones and rollbacks: two stages with equal keys have
    identical RC content, no matter which tree object they live in.  The
    cache stores

    * ``stage lists`` per tree structure revision (the stage decomposition),
    * ``tap models`` per stage content (batched delay/sigma for every corner
      and transition; analytical engines),
    * ``networks`` per (stage content, corner, transition) and ``timings``
      per (stage content, corner, transition, input slew) for the transient
      engine.

    When the total entry count exceeds ``max_entries`` the cache is cleared
    wholesale -- the next evaluation repopulates it with only the live keys,
    which keeps memory bounded without LRU bookkeeping on the hot path.
    """

    def __init__(self, max_entries: int = 200_000) -> None:
        self.max_entries = max_entries
        self._stage_lists: "OrderedDict[int, List[Stage]]" = OrderedDict()
        self._tap_models: Dict[_StageKey, Dict] = {}
        self._base_moments: Dict[tuple, BaseTapMoments] = {}
        self._networks: Dict[tuple, StageNetwork] = {}
        self._timings: Dict[tuple, StageTiming] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- stage decomposition ------------------------------------------------
    def stage_list(self, tree: ClockTree) -> List[Stage]:
        """The tree's stage decomposition, cached by structure revision."""
        revision = tree.structure_revision
        stages = self._stage_lists.get(revision)
        if stages is None:
            stages = extract_stages(tree)
            if len(self._stage_lists) >= 16:
                self._stage_lists.popitem(last=False)
            self._stage_lists[revision] = stages
        else:
            self._stage_lists.move_to_end(revision)
        return stages

    # -- analytical-engine models ------------------------------------------
    def tap_model(self, key: _StageKey):
        model = self._tap_models.get(key)
        if model is None:
            self.misses += 1
        else:
            self.hits += 1
        return model

    def store_tap_model(self, key: _StageKey, model) -> None:
        self._bound()
        self._tap_models[key] = model

    def base_moments(self, key: tuple, count: bool = True) -> Optional[BaseTapMoments]:
        """Cached corner-independent moment reduction of one stage.

        Keys carry the stage content key plus the wire/load-split flag; the
        entries are shared between :meth:`ClockNetworkEvaluator.evaluate`
        (which turns them into per-corner tap models) and
        :meth:`ClockNetworkEvaluator.evaluate_yield` (which scales them per
        Monte Carlo sample), so a yield evaluation re-reduces only stages
        whose RC content changed since any earlier evaluation of either kind.

        ``count=False`` skips the hit/miss accounting: the nominal tap-model
        path already counts once per stage lookup, and one re-analyzed stage
        should keep counting as one miss.
        """
        moments = self._base_moments.get(key)
        if count:
            if moments is None:
                self.misses += 1
            else:
                self.hits += 1
        return moments

    def store_base_moments(self, key: tuple, moments: BaseTapMoments) -> None:
        self._bound()
        self._base_moments[key] = moments

    # -- transient-engine entries ------------------------------------------
    def network(self, key: tuple) -> Optional[StageNetwork]:
        return self._networks.get(key)

    def store_network(self, key: tuple, network: StageNetwork) -> None:
        self._bound()
        self._networks[key] = network

    def timing(self, key: tuple) -> Optional[StageTiming]:
        timing = self._timings.get(key)
        if timing is None:
            self.misses += 1
        else:
            self.hits += 1
        return timing

    def store_timing(self, key: tuple, timing: StageTiming) -> None:
        self._bound()
        self._timings[key] = timing

    # -- maintenance --------------------------------------------------------
    def _bound(self) -> None:
        total = (
            len(self._tap_models)
            + len(self._base_moments)
            + len(self._networks)
            + len(self._timings)
        )
        if total >= self.max_entries:
            self.clear()
            self.evictions += 1

    def clear(self) -> None:
        """Drop every cached entry (stats are kept)."""
        self._stage_lists.clear()
        self._tap_models.clear()
        self._base_moments.clear()
        self._networks.clear()
        self._timings.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "tap_models": len(self._tap_models),
            "base_moments": len(self._base_moments),
            "networks": len(self._networks),
            "timings": len(self._timings),
            "stage_lists": len(self._stage_lists),
        }


class ClockNetworkEvaluator:
    """Evaluate a clock tree with the configured engine at multiple corners.

    The evaluator keeps a running count of invocations (``run_count``), which
    stands in for the paper's "number of SPICE runs" metric in Table V, and a
    :class:`StageCache` making repeated evaluations incremental: only stages
    whose RC content changed since *any* earlier evaluation (of this tree or
    of a snapshot sharing its revisions) are re-analyzed.
    """

    def __init__(
        self,
        config: Optional[EvaluatorConfig] = None,
        corners: Optional[Sequence[Corner]] = None,
        capacitance_limit: Optional[float] = None,
    ) -> None:
        self.config = config or EvaluatorConfig()
        corner_list = list(corners) if corners is not None else ispd09_corners()
        if not corner_list:
            raise ValueError("at least one corner is required")
        self.corners = corner_list
        self.capacitance_limit = capacitance_limit
        self.run_count = 0
        # Monte Carlo yield evaluations are counted separately: run_count
        # stands for the paper's "SPICE runs" metric and must not drift when
        # the variation engine is switched on.
        self.yield_run_count = 0
        # The fast corner has the highest supply, the slow corner the lowest.
        self._fast = max(corner_list, key=lambda c: c.vdd).name
        self._slow = min(corner_list, key=lambda c: c.vdd).name
        self.cache = StageCache()
        # One batched scaling row per (corner, transition) combination.
        self._combos: List[Tuple[str, str]] = []
        driver_scales: List[float] = []
        res_scales: List[float] = []
        cap_scales: List[float] = []
        for corner in corner_list:
            for direction in _TRANSITIONS:
                asym = (
                    self.config.pull_up_factor
                    if direction == RISE
                    else self.config.pull_down_factor
                )
                self._combos.append((corner.name, direction))
                driver_scales.append(corner.driver_scale * asym)
                res_scales.append(corner.wire_res_scale)
                cap_scales.append(corner.wire_cap_scale)
        self._combo_scales = (driver_scales, res_scales, cap_scales)
        # With no corner scaling wire capacitance (the ISPD'09 set), the
        # moment reduction can collapse wire and load caps into one component.
        self._split_caps = any(scale != 1.0 for scale in cap_scales)

    # ------------------------------------------------------------------
    def evaluate(
        self, tree: ClockTree, incremental: Optional[bool] = None
    ) -> EvaluationReport:
        """Run one Clock-Network Evaluation of ``tree`` at every corner.

        With ``incremental`` left at ``None`` the :class:`EvaluatorConfig`
        decides whether the stage cache is used; passing ``False`` forces a
        cold evaluation (identical results, no cache reads or writes).
        """
        self.run_count += 1
        use_cache = self.config.incremental if incremental is None else incremental
        # Driver buffers are read live from the tree: cached stage lists may
        # pre-date a same-site buffer re-sizing.
        stages, keys, drivers = self._stages_and_keys(tree, use_cache)
        # (is_sink, has_buffer) per tap, shared by every corner/launch sweep.
        tap_flags: Dict[int, Tuple[bool, bool]] = {}
        for stage in stages:
            for tap in stage.taps:
                node = tree.node(tap)
                tap_flags[tap] = (node.is_sink, node.buffer is not None)
        if self.config.engine in ("elmore", "arnoldi"):
            models = [
                self._tap_model(tree, stage, key) for stage, key in zip(stages, keys)
            ]
            corner_results = {
                corner.name: self._corner_from_models(
                    stages, models, drivers, tap_flags, corner
                )
                for corner in self.corners
            }
        else:
            corner_results = {
                corner.name: self._corner_transient(
                    tree, stages, keys, drivers, tap_flags, corner
                )
                for corner in self.corners
            }
        return EvaluationReport(
            corners=corner_results,
            fast_corner=self._fast,
            slow_corner=self._slow,
            engine=self.config.engine,
            slew_limit=self.config.slew_limit,
            total_capacitance=tree.total_capacitance(),
            capacitance_limit=self.capacitance_limit,
            wirelength=tree.total_wirelength(),
            evaluation_index=self.run_count,
        )

    def cache_stats(self) -> Dict[str, int]:
        """Hit/miss/size statistics of the stage cache."""
        return self.cache.stats()

    def clear_cache(self) -> None:
        """Drop all cached stage analyses (results are unaffected)."""
        self.cache.clear()

    # ------------------------------------------------------------------
    # Monte Carlo variation evaluation
    # ------------------------------------------------------------------
    def evaluate_yield(
        self,
        tree: ClockTree,
        model: VariationModel,
        samples: int = 1000,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
        skew_limit_ps: float = 7.5,
    ) -> YieldReport:
        """Evaluate ``tree`` under ``samples`` Monte Carlo variation scenarios.

        Per-stage perturbations are drawn from ``model`` and applied on top
        of every evaluator corner; all scenarios are analyzed in batched
        numpy passes over the cached per-stage moment reductions (one
        :func:`~repro.analysis.arnoldi.batched_tap_moments` call per stage
        and corner covers every sample and both transitions at once), so the
        cost per scenario is orders of magnitude below a per-sample
        :meth:`evaluate` loop.  A zero-variance model reproduces the nominal
        evaluation bit-for-bit: sampling returns multipliers of exactly 1.0
        and the arithmetic below mirrors the nominal path operation for
        operation.

        Only the analytical engines can be batched this way; the transient
        engine raises.  ``skew_limit_ps`` sets the yield threshold of the
        returned :class:`~repro.analysis.variation.YieldReport` (the
        ISPD'10-contest-style local skew limit of 7.5 ps by default).
        """
        if self.config.engine not in ("elmore", "arnoldi"):
            raise ValueError(
                "evaluate_yield requires an analytical engine ('elmore' or "
                "'arnoldi'); the transient engine cannot be batched across "
                "variation samples"
            )
        if samples < 1:
            raise ValueError("samples must be >= 1")
        if rng is None:
            # Deterministic by default: an omitted seed falls back to the
            # library-wide base seed rather than OS entropy.
            rng = derive_rng(seed, "evaluate-yield")
        self.yield_run_count += 1
        use_cache = self.config.incremental
        stages, keys, drivers = self._stages_and_keys(tree, use_cache)
        positions = np.array(
            [
                (tree.node(stage.driver_id).position.x, tree.node(stage.driver_id).position.y)
                for stage in stages
            ]
        )
        draws = model.sample(samples, rng, positions=positions)
        split = self._split_caps or model.perturbs_wire_cap
        moments = [
            self._stage_base_moments(tree, stage, key, split)
            for stage, key in zip(stages, keys)
        ]
        tap_flags: Dict[int, Tuple[bool, bool]] = {}
        for stage in stages:
            for tap in stage.taps:
                node = tree.node(tap)
                tap_flags[tap] = (node.is_sink, node.buffer is not None)

        per_corner = {
            corner.name: self._corner_yield(
                stages, moments, drivers, tap_flags, corner, draws, samples
            )
            for corner in self.corners
        }

        fast = per_corner[self._fast]
        slow = per_corner[self._slow]
        skew = np.maximum(
            fast["max"][RISE] - fast["min"][RISE], fast["max"][FALL] - fast["min"][FALL]
        )
        clr = np.maximum(
            slow["max"][RISE] - fast["min"][RISE], slow["max"][FALL] - fast["min"][FALL]
        )
        worst_slew = per_corner[self.corners[0].name]["slew"]
        for corner in self.corners[1:]:
            worst_slew = np.maximum(worst_slew, per_corner[corner.name]["slew"])
        return YieldReport(
            n_samples=samples,
            engine=self.config.engine,
            model=model.describe(),
            skew_limit_ps=skew_limit_ps,
            slew_limit_ps=self.config.slew_limit,
            fast_corner=self._fast,
            slow_corner=self._slow,
            skew_samples=skew,
            clr_samples=clr,
            worst_slew_samples=worst_slew,
        )

    def _corner_yield(
        self,
        stages: List[Stage],
        moments: List[BaseTapMoments],
        drivers: List,
        tap_flags: Dict[int, Tuple[bool, bool]],
        corner: Corner,
        draws: VariationSamples,
        n: int,
    ) -> Dict:
        """Vectorized arrival/slew propagation of all samples at one corner.

        The sample axis replaces :meth:`_propagate_corner`'s scalars with
        length-``n`` arrays; the stage loop, inversion tracking and slew
        model are carried over verbatim (and in the same operation order, so
        unit multipliers keep bit parity with the nominal path).  Returns
        running per-sample sink-latency extrema per transition plus the
        per-sample worst tap slew.
        """
        cfg = self.config
        use_d2m = cfg.engine == "arnoldi"
        up_scale = corner.driver_scale * cfg.pull_up_factor
        down_scale = corner.driver_scale * cfg.pull_down_factor
        supply_mult = supply_driver_multiplier(corner.vdd, draws.vdd_shift)
        driver_mult = draws.driver * supply_mult

        # One batched moment pass per stage: rows are [rise x n, fall x n].
        stage_models = []
        for index in range(len(stages)):
            stage_driver = driver_mult[:, index]
            d_rows = np.concatenate((up_scale * stage_driver, down_scale * stage_driver))
            r_rows = np.tile(corner.wire_res_scale * draws.wire_res[:, index], 2)
            w_rows = np.tile(corner.wire_cap_scale * draws.wire_cap[:, index], 2)
            m1, m2 = batched_tap_moments(moments[index], d_rows, r_rows, w_rows)
            stage_models.append(batched_delay_sigma(m1, m2, use_d2m=use_d2m))

        root_id = stages[0].driver_id
        max_lat = {t: np.full(n, -np.inf) for t in _TRANSITIONS}
        min_lat = {t: np.full(n, np.inf) for t in _TRANSITIONS}
        worst_slew = np.zeros(n)
        for launch in _TRANSITIONS:
            arrival_at: Dict[int, np.ndarray] = {root_id: np.zeros(n)}
            slew_at: Dict[int, np.ndarray] = {root_id: np.full(n, cfg.source_slew)}
            direction_at: Dict[int, str] = {root_id: launch}
            for index, (stage, buffer) in enumerate(zip(stages, drivers)):
                driver_id = stage.driver_id
                input_arrival = arrival_at[driver_id]
                input_slew = slew_at[driver_id]
                input_dir = direction_at[driver_id]
                if buffer is not None and buffer.inverting:
                    output_dir = FALL if input_dir == RISE else RISE
                else:
                    output_dir = input_dir
                if buffer is None:
                    drive_slew = input_slew
                    gate_delay = 0.0
                else:
                    drive_slew = cfg.buffer_slew_regeneration * input_slew
                    gate_delay = (
                        buffer.intrinsic_delay * (corner.driver_scale * driver_mult[:, index])
                        + cfg.slew_delay_factor * input_slew
                    )
                delay, sigma = stage_models[index]
                row0 = 0 if output_dir == RISE else n
                base_arrival = input_arrival + gate_delay
                drive_sq = drive_slew * drive_slew
                for column, tap in enumerate(moments[index].tap_ids):
                    tap_arrival = base_arrival + delay[row0 : row0 + n, column]
                    wire_slew = LN9 * sigma[row0 : row0 + n, column]
                    tap_slew_value = (wire_slew * wire_slew + drive_sq) ** 0.5
                    is_sink, has_buffer = tap_flags[tap]
                    np.maximum(worst_slew, tap_slew_value, out=worst_slew)
                    if is_sink:
                        np.maximum(max_lat[output_dir], tap_arrival, out=max_lat[output_dir])
                        np.minimum(min_lat[output_dir], tap_arrival, out=min_lat[output_dir])
                    if has_buffer:
                        arrival_at[tap] = tap_arrival
                        slew_at[tap] = tap_slew_value
                        direction_at[tap] = output_dir
        return {"max": max_lat, "min": min_lat, "slew": worst_slew}

    # ------------------------------------------------------------------
    # Stage bookkeeping
    # ------------------------------------------------------------------
    def _stages_and_keys(self, tree: ClockTree, use_cache: bool):
        if not use_cache:
            stages = extract_stages(tree)
            drivers = [tree.node(stage.driver_id).buffer for stage in stages]
            return stages, [None] * len(stages), drivers
        stages = self.cache.stage_list(tree)
        revisions = tree.node_revisions
        keys: List[Optional[_StageKey]] = []
        drivers = []
        for stage in stages:
            driver_id = stage.driver_id
            driver_buffer = tree.node(driver_id).buffer
            drivers.append(driver_buffer)
            if driver_buffer is None:
                head = (driver_id, revisions[driver_id], tree.source_resistance)
            else:
                head = (driver_id, revisions[driver_id])
            keys.append((head, tuple((e, revisions[e]) for e in stage.edges)))
        return stages, keys, drivers

    # ------------------------------------------------------------------
    # Analytical engines: batched per-stage tap models
    # ------------------------------------------------------------------
    def _tap_model(self, tree: ClockTree, stage: Stage, key: Optional[_StageKey]):
        """Per-stage ``{(corner, transition): {tap: (delay, sigma)}}`` mapping.

        ``delay`` is the wire delay from the driver switching instant and
        ``sigma`` the intrinsic slew scale; both are independent of the input
        transition, which enters only in the final PERI combination during
        propagation -- that is what makes the cached model reusable no matter
        how upstream stages change.
        """
        if key is not None:
            cached = self.cache.tap_model(key)
            if cached is not None:
                return cached
        moments = self._stage_base_moments(tree, stage, key, self._split_caps, count=False)
        m1, m2 = batched_tap_moments(moments, *self._combo_scales)
        delay, sigma = batched_delay_sigma(
            m1, m2, use_d2m=(self.config.engine == "arnoldi")
        )
        model = {}
        for row, combo in enumerate(self._combos):
            delays = delay[row]
            sigmas = sigma[row]
            model[combo] = {
                tap: (delays[column], sigmas[column])
                for column, tap in enumerate(moments.tap_ids)
            }
        if key is not None:
            self.cache.store_tap_model(key, model)
        return model

    def _stage_base_moments(
        self,
        tree: ClockTree,
        stage: Stage,
        key: Optional[_StageKey],
        split: bool,
        count: bool = True,
    ) -> BaseTapMoments:
        """The stage's corner-independent moment reduction, cached by content.

        Shared by the per-corner tap models of :meth:`evaluate` and the
        Monte Carlo batches of :meth:`evaluate_yield`, so whichever runs
        first pays for the numpy reduction and the other reuses it for every
        stage whose RC content is unchanged.
        """
        cache_key = (key, split) if key is not None else None
        if cache_key is not None:
            cached = self.cache.base_moments(cache_key, count=count)
            if cached is not None:
                return cached
        base = build_base_stage_network(tree, stage, self.config.max_segment_length)
        moments = base_tap_moments(base, split_wire_load=split)
        if cache_key is not None:
            self.cache.store_base_moments(cache_key, moments)
        return moments

    def _corner_from_models(
        self,
        stages: List[Stage],
        models: List[dict],
        drivers: List,
        tap_flags: Dict[int, Tuple[bool, bool]],
        corner: Corner,
    ) -> CornerTiming:
        def stage_timing(index, stage, output_dir, drive_slew):
            drive_sq = drive_slew * drive_slew
            for tap, (delay, sigma) in models[index][(corner.name, output_dir)].items():
                wire_slew = LN9 * sigma
                yield tap, delay, (wire_slew * wire_slew + drive_sq) ** 0.5

        return self._propagate_corner(stages, drivers, tap_flags, corner, stage_timing)

    # ------------------------------------------------------------------
    # Transient (SPICE-substitute) engine
    # ------------------------------------------------------------------
    def _corner_transient(
        self,
        tree: ClockTree,
        stages: List[Stage],
        keys: List[Optional[_StageKey]],
        drivers: List,
        tap_flags: Dict[int, Tuple[bool, bool]],
        corner: Corner,
    ) -> CornerTiming:
        def stage_timing(index, stage, output_dir, drive_slew):
            timing = self._transient_stage_timing(
                tree, stage, keys[index], corner, output_dir, drive_slew
            )
            return [(tap, timing.delay[tap], timing.slew[tap]) for tap in stage.taps]

        return self._propagate_corner(stages, drivers, tap_flags, corner, stage_timing)

    # ------------------------------------------------------------------
    # Shared arrival/slew propagation
    # ------------------------------------------------------------------
    def _propagate_corner(
        self,
        stages: List[Stage],
        drivers: List,
        tap_flags: Dict[int, Tuple[bool, bool]],
        corner: Corner,
        stage_timing,
    ) -> CornerTiming:
        """Propagate both launch transitions through the ordered stages.

        ``stage_timing(index, stage, output_dir, drive_slew)`` yields
        ``(tap, delay, slew)`` triples for one stage; everything else --
        inversion tracking, gate delay, slew regeneration, sink/buffer
        bookkeeping -- is engine-independent and lives only here.
        """
        cfg = self.config
        root_id = stages[0].driver_id
        latency: Dict[int, Dict[str, float]] = {}
        slew: Dict[int, Dict[str, float]] = {}
        tap_slew: Dict[int, Dict[str, float]] = {}
        for launch in _TRANSITIONS:
            arrival_at: Dict[int, float] = {root_id: 0.0}
            slew_at: Dict[int, float] = {root_id: cfg.source_slew}
            direction_at: Dict[int, str] = {root_id: launch}
            for index, (stage, buffer) in enumerate(zip(stages, drivers)):
                driver_id = stage.driver_id
                input_arrival = arrival_at[driver_id]
                input_slew = slew_at[driver_id]
                input_dir = direction_at[driver_id]
                if buffer is not None and buffer.inverting:
                    output_dir = FALL if input_dir == RISE else RISE
                else:
                    output_dir = input_dir
                if buffer is None:
                    drive_slew = input_slew
                    gate_delay = 0.0
                else:
                    drive_slew = cfg.buffer_slew_regeneration * input_slew
                    gate_delay = (
                        buffer.intrinsic_delay * corner.driver_scale
                        + cfg.slew_delay_factor * input_slew
                    )
                for tap, delay, tap_slew_value in stage_timing(
                    index, stage, output_dir, drive_slew
                ):
                    tap_arrival = input_arrival + gate_delay + delay
                    is_sink, has_buffer = tap_flags[tap]
                    tap_slew.setdefault(tap, {})[output_dir] = tap_slew_value
                    if is_sink:
                        latency.setdefault(tap, {})[output_dir] = tap_arrival
                        slew.setdefault(tap, {})[output_dir] = tap_slew_value
                    if has_buffer:
                        arrival_at[tap] = tap_arrival
                        slew_at[tap] = tap_slew_value
                        direction_at[tap] = output_dir
        return CornerTiming(corner=corner, latency=latency, slew=slew, tap_slew=tap_slew)

    def _transient_stage_timing(
        self,
        tree: ClockTree,
        stage: Stage,
        key: Optional[_StageKey],
        corner: Corner,
        output_dir: str,
        drive_slew: float,
    ) -> StageTiming:
        cfg = self.config
        timing_key = None
        if key is not None:
            timing_key = (key, corner.name, output_dir, drive_slew)
            cached = self.cache.timing(timing_key)
            if cached is not None:
                return cached
        network = None
        network_key = None
        if key is not None:
            network_key = (key, corner.name, output_dir)
            network = self.cache.network(network_key)
        if network is None:
            network = build_stage_network(
                tree,
                stage,
                corner=corner,
                max_segment_length=cfg.max_segment_length,
                rise=(output_dir == RISE),
                pull_up_factor=cfg.pull_up_factor,
                pull_down_factor=cfg.pull_down_factor,
            )
            if network_key is not None:
                self.cache.store_network(network_key, network)
        timing = transient_stage_timing(
            network, drive_slew, vdd=corner.vdd, config=cfg.solver
        )
        if timing_key is not None:
            self.cache.store_timing(timing_key, timing)
        return timing
