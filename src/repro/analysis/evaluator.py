"""Clock-network evaluation: latency, skew, slew, CLR, capacitance.

This module is the Clock-Network Evaluation (CNE) box of Figure 1 in the
paper.  It decomposes the buffered tree into stages, analyzes every stage with
the selected engine (Elmore, Arnoldi/moment-matching, or the transient RC
solver), propagates arrival times and slews stage by stage for both launch
transitions, and repeats the analysis at every requested process/voltage
corner.  The resulting :class:`EvaluationReport` carries everything the
optimization passes need: per-sink rise/fall latencies, skew, the multi-corner
Clock Latency Range (CLR), worst slew, slew violations and the capacitance
(power) total.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.arnoldi import arnoldi_stage_timing
from repro.analysis.corners import Corner, ispd09_corners
from repro.analysis.elmore import StageTiming, elmore_stage_timing
from repro.analysis.rcnetwork import Stage, StageNetwork, build_stage_network, extract_stages
from repro.analysis.spice import TransientSolverConfig, transient_stage_timing
from repro.cts.tree import ClockTree

__all__ = [
    "EvaluatorConfig",
    "CornerTiming",
    "EvaluationReport",
    "ClockNetworkEvaluator",
]

RISE = "rise"
FALL = "fall"
_TRANSITIONS = (RISE, FALL)


@dataclass(frozen=True)
class EvaluatorConfig:
    """Settings of the clock-network evaluator.

    Attributes
    ----------
    engine:
        ``"elmore"``, ``"arnoldi"`` or ``"spice"`` (transient RC solver).
    max_segment_length:
        Maximum lumped-RC segment length in um (see
        :func:`repro.analysis.rcnetwork.build_stage_network`).
    slew_limit:
        Maximum allowed 10-90% transition time at any tap, in ps.
    source_slew:
        Input transition time of the clock source, in ps.
    slew_delay_factor:
        Fraction of the input slew added to a buffer's gate delay (first-order
        model of slew-dependent gate delay).
    buffer_slew_regeneration:
        Fraction of the input transition that survives through a switching
        inverter and shapes its output ramp.  Inverters regenerate the edge,
        so the output slew is dominated by the driver's own R*C and only
        weakly coupled to the input slew; without this attenuation slews would
        (unphysically) accumulate down the buffer chain.
    pull_up_factor, pull_down_factor:
        Asymmetry of the driver resistance for rising and falling outputs.
    solver:
        Numerical settings for the transient engine.
    """

    engine: str = "spice"
    max_segment_length: float = 100.0
    slew_limit: float = 100.0
    source_slew: float = 10.0
    slew_delay_factor: float = 0.08
    buffer_slew_regeneration: float = 0.25
    pull_up_factor: float = 1.08
    pull_down_factor: float = 0.95
    solver: TransientSolverConfig = field(default_factory=TransientSolverConfig)

    def __post_init__(self) -> None:
        if self.engine not in ("elmore", "arnoldi", "spice"):
            raise ValueError(f"unknown timing engine {self.engine!r}")
        if self.slew_limit <= 0.0:
            raise ValueError("slew limit must be positive")


@dataclass
class CornerTiming:
    """Timing of the whole network at one corner.

    ``latency`` and ``slew`` map sink node ids to ``{"rise": ps, "fall": ps}``.
    ``tap_slew`` additionally includes buffer-input taps, which are subject to
    the same slew limit as sinks.
    """

    corner: Corner
    latency: Dict[int, Dict[str, float]]
    slew: Dict[int, Dict[str, float]]
    tap_slew: Dict[int, Dict[str, float]]

    def max_latency(self, transition: Optional[str] = None) -> float:
        return max(self._latency_values(transition))

    def min_latency(self, transition: Optional[str] = None) -> float:
        return min(self._latency_values(transition))

    def skew(self, transition: Optional[str] = None) -> float:
        """Worst skew; with ``transition=None`` the worse of rise and fall skew."""
        if transition is not None:
            values = self._latency_values(transition)
            return max(values) - min(values)
        return max(self.skew(RISE), self.skew(FALL))

    def worst_slew(self) -> float:
        return max(
            value for per_tap in self.tap_slew.values() for value in per_tap.values()
        )

    def slew_violations(self, limit: float) -> List[int]:
        """Tap node ids whose rise or fall slew exceeds ``limit``."""
        return [
            node_id
            for node_id, per_tap in self.tap_slew.items()
            if max(per_tap.values()) > limit
        ]

    def _latency_values(self, transition: Optional[str]) -> List[float]:
        if transition is None:
            return [v for per_sink in self.latency.values() for v in per_sink.values()]
        return [per_sink[transition] for per_sink in self.latency.values()]


@dataclass
class EvaluationReport:
    """Result of one Clock-Network Evaluation (CNE) step."""

    corners: Dict[str, CornerTiming]
    fast_corner: str
    slow_corner: str
    engine: str
    slew_limit: float
    total_capacitance: float
    capacitance_limit: Optional[float]
    wirelength: float
    evaluation_index: int

    @property
    def nominal(self) -> CornerTiming:
        """Timing at the fast (nominal-supply) corner, used for skew optimization."""
        return self.corners[self.fast_corner]

    @property
    def skew(self) -> float:
        """Nominal skew: worse of rise/fall skew at the fast corner."""
        return self.nominal.skew()

    @property
    def clr(self) -> float:
        """Clock Latency Range across the fast and slow corners."""
        slow = self.corners[self.slow_corner]
        fast = self.corners[self.fast_corner]
        return max(
            slow.max_latency(t) - fast.min_latency(t) for t in _TRANSITIONS
        )

    @property
    def max_latency(self) -> float:
        """Greatest sink latency at the slow corner (the paper's "Latency" column)."""
        return self.corners[self.slow_corner].max_latency()

    @property
    def worst_slew(self) -> float:
        return max(timing.worst_slew() for timing in self.corners.values())

    @property
    def slew_violations(self) -> List[int]:
        violations: List[int] = []
        for timing in self.corners.values():
            violations.extend(timing.slew_violations(self.slew_limit))
        return sorted(set(violations))

    @property
    def has_slew_violation(self) -> bool:
        return bool(self.slew_violations)

    @property
    def within_capacitance_limit(self) -> bool:
        if self.capacitance_limit is None:
            return True
        return self.total_capacitance <= self.capacitance_limit

    @property
    def capacitance_utilization(self) -> Optional[float]:
        """Total capacitance as a fraction of the limit (None when unlimited)."""
        if self.capacitance_limit is None:
            return None
        return self.total_capacitance / self.capacitance_limit

    def summary(self) -> Dict[str, float]:
        """Compact numeric summary used by flow logs and benchmarks."""
        return {
            "skew_ps": self.skew,
            "clr_ps": self.clr,
            "max_latency_ps": self.max_latency,
            "worst_slew_ps": self.worst_slew,
            "total_capacitance_fF": self.total_capacitance,
            "wirelength_um": self.wirelength,
            "slew_violations": float(len(self.slew_violations)),
        }


class ClockNetworkEvaluator:
    """Evaluate a clock tree with the configured engine at multiple corners.

    The evaluator keeps a running count of invocations (``run_count``), which
    stands in for the paper's "number of SPICE runs" metric in Table V.
    """

    def __init__(
        self,
        config: Optional[EvaluatorConfig] = None,
        corners: Optional[Sequence[Corner]] = None,
        capacitance_limit: Optional[float] = None,
    ) -> None:
        self.config = config or EvaluatorConfig()
        corner_list = list(corners) if corners is not None else ispd09_corners()
        if not corner_list:
            raise ValueError("at least one corner is required")
        self.corners = corner_list
        self.capacitance_limit = capacitance_limit
        self.run_count = 0
        # The fast corner has the highest supply, the slow corner the lowest.
        self._fast = max(corner_list, key=lambda c: c.vdd).name
        self._slow = min(corner_list, key=lambda c: c.vdd).name

    # ------------------------------------------------------------------
    def evaluate(self, tree: ClockTree) -> EvaluationReport:
        """Run one Clock-Network Evaluation of ``tree`` at every corner."""
        self.run_count += 1
        stages = extract_stages(tree)
        corner_results = {
            corner.name: self._evaluate_corner(tree, stages, corner)
            for corner in self.corners
        }
        return EvaluationReport(
            corners=corner_results,
            fast_corner=self._fast,
            slow_corner=self._slow,
            engine=self.config.engine,
            slew_limit=self.config.slew_limit,
            total_capacitance=tree.total_capacitance(),
            capacitance_limit=self.capacitance_limit,
            wirelength=tree.total_wirelength(),
            evaluation_index=self.run_count,
        )

    # ------------------------------------------------------------------
    def _evaluate_corner(
        self, tree: ClockTree, stages: List[Stage], corner: Corner
    ) -> CornerTiming:
        latency: Dict[int, Dict[str, float]] = {}
        slew: Dict[int, Dict[str, float]] = {}
        tap_slew: Dict[int, Dict[str, float]] = {}
        for launch in _TRANSITIONS:
            self._propagate_launch(tree, stages, corner, launch, latency, slew, tap_slew)
        return CornerTiming(corner=corner, latency=latency, slew=slew, tap_slew=tap_slew)

    def _propagate_launch(
        self,
        tree: ClockTree,
        stages: List[Stage],
        corner: Corner,
        launch: str,
        latency: Dict[int, Dict[str, float]],
        slew: Dict[int, Dict[str, float]],
        tap_slew: Dict[int, Dict[str, float]],
    ) -> None:
        cfg = self.config
        # Arrival time and input slew at each stage driver's *input*.
        arrival_at: Dict[int, float] = {tree.root_id: 0.0}
        slew_at: Dict[int, float] = {tree.root_id: cfg.source_slew}
        # Transition direction of the signal arriving at each stage driver.
        direction_at: Dict[int, str] = {tree.root_id: launch}

        for stage in stages:
            driver_id = stage.driver_id
            input_arrival = arrival_at[driver_id]
            input_slew = slew_at[driver_id]
            input_dir = direction_at[driver_id]

            if stage.driver_buffer is not None and stage.driver_buffer.inverting:
                output_dir = FALL if input_dir == RISE else RISE
            else:
                output_dir = input_dir

            network = build_stage_network(
                tree,
                stage,
                corner=corner,
                max_segment_length=cfg.max_segment_length,
                rise=(output_dir == RISE),
                pull_up_factor=cfg.pull_up_factor,
                pull_down_factor=cfg.pull_down_factor,
            )
            if stage.driver_buffer is None:
                drive_slew = input_slew
            else:
                drive_slew = cfg.buffer_slew_regeneration * input_slew
            timing = self._analyze_stage(network, drive_slew, corner)

            if stage.driver_buffer is not None:
                gate_delay = (
                    stage.driver_buffer.intrinsic_delay * corner.driver_scale
                    + cfg.slew_delay_factor * input_slew
                )
            else:
                gate_delay = 0.0

            if not stage.taps:
                continue
            for tap in stage.taps:
                tap_arrival = input_arrival + gate_delay + timing.delay[tap]
                tap_slew_value = timing.slew[tap]
                node = tree.node(tap)
                tap_slew.setdefault(tap, {})[output_dir] = tap_slew_value
                if node.is_sink:
                    latency.setdefault(tap, {})[output_dir] = tap_arrival
                    slew.setdefault(tap, {})[output_dir] = tap_slew_value
                if node.has_buffer:
                    arrival_at[tap] = tap_arrival
                    slew_at[tap] = tap_slew_value
                    direction_at[tap] = output_dir

    def _analyze_stage(
        self, network: StageNetwork, input_slew: float, corner: Corner
    ) -> StageTiming:
        engine = self.config.engine
        if engine == "elmore":
            return elmore_stage_timing(network, input_slew)
        if engine == "arnoldi":
            return arnoldi_stage_timing(network, input_slew)
        return transient_stage_timing(
            network, input_slew, vdd=corner.vdd, config=self.config.solver
        )
