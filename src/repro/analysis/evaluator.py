"""Clock-network evaluation: latency, skew, slew, CLR, capacitance.

This module is the Clock-Network Evaluation (CNE) box of Figure 1 in the
paper.  It decomposes the buffered tree into stages, analyzes every stage with
the selected engine (Elmore, Arnoldi/moment-matching, or the transient RC
solver), propagates arrival times and slews stage by stage for both launch
transitions, and repeats the analysis at every requested process/voltage
corner.  The resulting :class:`EvaluationReport` carries everything the
optimization passes need: per-sink rise/fall latencies, skew, the multi-corner
Clock Latency Range (CLR), worst slew, slew violations and the capacitance
(power) total.

Incremental evaluation
----------------------
Contango's optimization passes call the evaluator after every candidate move,
but a move touches a handful of edges while the tree has hundreds of stages.
The evaluator therefore keeps a :class:`StageCache`: stage analysis results
are stored under **content keys** derived from the mutation journal of
:class:`~repro.cts.tree.ClockTree` (per-node revisions plus the structure
revision), so re-evaluating a tree re-extracts and re-analyzes only the
stages whose RC content actually changed since any previous evaluation --
including evaluations of clones, probes and rolled-back snapshots, which
share revisions with the tree they were copied from.

For the analytical engines (``elmore``/``arnoldi``) each stage is reduced
once per content revision to a few base vectors
(:func:`repro.analysis.arnoldi.base_tap_moments`, built with numpy prefix
sums over all segments at once) from which delays and slews at *every* corner
and transition are produced in one batched array operation -- no per-corner
network rebuilds.  The transient (``spice``) engine caches the per-corner
stage networks and per-input-slew waveform analyses instead.

Dirty-region propagation
------------------------
Stage analysis being cached still left arrival/slew propagation itself as a
full walk over every stage at every corner and transition.  With
``EvaluatorConfig.dirty_region`` enabled (the default) the evaluator also
snapshots, per corner, the per-stage propagation *fragments* it produced last
time (:class:`_StageFrag`: the stage's latency/slew contributions plus the
arrival/slew/direction state it handed to downstream buffer taps) together
with the content keys it propagated them from.  On the next evaluation it
diffs the content keys, closes the dirty set over the stage topology
(:class:`~repro.analysis.rcnetwork.StageTopology` children -- every stage
downstream of a changed driver sees changed input slews), re-propagates only
that region and splices the retained fragments back in verbatim.  Because a
retained stage provably has only retained ancestors, its inputs are
bit-identical to a cold evaluation, so the spliced result is too -- the
goldens and the hypothesis suite in ``tests/analysis`` enforce exactly that.

Batched candidate evaluation
----------------------------
:meth:`ClockNetworkEvaluator.evaluate_candidates` scores K independent
candidate moves in one numpy pass by extending the corners x transitions
batch axis of the analytical engines to candidates -- the same axis extension
:meth:`evaluate_yield` applies to Monte Carlo samples.  Each move is applied
under a journal checkpoint, its dirty stages are captured from
:meth:`~repro.cts.tree.ClockTree.touched_since`, and the move is rolled back;
the batched pass then propagates all candidates at once, with per-stage rows
``[rise x K, fall x K]`` and the operation order mirrored from the scalar
path so every :class:`CandidateScore` is bit-identical to a full
:meth:`evaluate` of the same move.  Candidates that change the tree structure
or a driver's polarity fall back to an honest full evaluation (counted in
``cache_stats()['candidate_fallbacks']``).  Disable with
``EvaluatorConfig.candidate_batching`` for A/B measurement; the serial path
produces the same scores one full evaluation at a time.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

from repro.analysis.arnoldi import (
    BaseTapMoments,
    base_tap_moments,
    batched_delay_sigma,
    batched_tap_moments,
)
from repro.analysis.corners import Corner, ispd09_corners, supply_driver_multiplier
from repro.analysis.elmore import StageTiming
from repro.analysis.rcnetwork import (
    Stage,
    StageNetwork,
    StageTopology,
    build_base_stage_network,
    build_stage_network,
    build_stage_topology,
    extract_stages,
)
from repro.analysis.spice import TransientSolverConfig, transient_stage_timing
from repro.analysis.units import LN9
from repro.analysis.variation import VariationModel, VariationSamples, YieldReport
from repro.cts.bufferlib import BufferType
from repro.cts.tree import ClockTree, TreeNode
from repro.obs import NULL_TRACER, TracerBase
from repro.seeding import derive_rng

__all__ = [
    "EvaluatorConfig",
    "CornerTiming",
    "EvaluationReport",
    "CandidateScore",
    "CandidateBatch",
    "StageCache",
    "ClockNetworkEvaluator",
]

RISE = "rise"
FALL = "fall"
_TRANSITIONS = (RISE, FALL)


@dataclass(frozen=True)
class EvaluatorConfig:
    """Settings of the clock-network evaluator.

    Attributes
    ----------
    engine:
        ``"elmore"``, ``"arnoldi"`` or ``"spice"`` (transient RC solver).
    max_segment_length:
        Maximum lumped-RC segment length in um (see
        :func:`repro.analysis.rcnetwork.build_stage_network`).
    slew_limit:
        Maximum allowed 10-90% transition time at any tap, in ps.
    source_slew:
        Input transition time of the clock source, in ps.
    slew_delay_factor:
        Fraction of the input slew added to a buffer's gate delay (first-order
        model of slew-dependent gate delay).
    buffer_slew_regeneration:
        Fraction of the input transition that survives through a switching
        inverter and shapes its output ramp.  Inverters regenerate the edge,
        so the output slew is dominated by the driver's own R*C and only
        weakly coupled to the input slew; without this attenuation slews would
        (unphysically) accumulate down the buffer chain.
    pull_up_factor, pull_down_factor:
        Asymmetry of the driver resistance for rising and falling outputs.
    solver:
        Numerical settings for the transient engine.
    incremental:
        Enable the :class:`StageCache` so that repeated evaluations only
        re-analyze stages whose RC content changed.  Results are identical to
        cold evaluation; disable only for debugging or memory-constrained
        runs.
    dirty_region:
        Restrict arrival/slew propagation to the stages whose content keys
        changed since the previous evaluation plus everything downstream of
        them, splicing retained per-stage results back in verbatim (see the
        module docstring).  Requires ``incremental``; results are bit-identical
        to a full propagation.  Disable for A/B measurement.
    candidate_batching:
        Let :meth:`ClockNetworkEvaluator.evaluate_candidates` score all
        candidate moves in one batched numpy pass (analytical engines only).
        When disabled the same API scores candidates one full evaluation at a
        time, with identical results.  Disable for A/B measurement.
    """

    engine: str = "spice"
    max_segment_length: float = 100.0
    slew_limit: float = 100.0
    source_slew: float = 10.0
    slew_delay_factor: float = 0.08
    buffer_slew_regeneration: float = 0.25
    pull_up_factor: float = 1.08
    pull_down_factor: float = 0.95
    solver: TransientSolverConfig = field(default_factory=TransientSolverConfig)
    incremental: bool = True
    dirty_region: bool = True
    candidate_batching: bool = True

    def __post_init__(self) -> None:
        if self.engine not in ("elmore", "arnoldi", "spice"):
            raise ValueError(f"unknown timing engine {self.engine!r}")
        if self.slew_limit <= 0.0:
            raise ValueError("slew limit must be positive")


@dataclass
class CornerTiming:
    """Timing of the whole network at one corner.

    ``latency`` and ``slew`` map sink node ids to ``{"rise": ps, "fall": ps}``.
    ``tap_slew`` additionally includes buffer-input taps, which are subject to
    the same slew limit as sinks.
    """

    corner: Corner
    latency: Dict[int, Dict[str, float]]
    slew: Dict[int, Dict[str, float]]
    tap_slew: Dict[int, Dict[str, float]]

    def max_latency(self, transition: Optional[str] = None) -> float:
        return max(self._latency_values(transition))

    def min_latency(self, transition: Optional[str] = None) -> float:
        return min(self._latency_values(transition))

    def skew(self, transition: Optional[str] = None) -> float:
        """Worst skew; with ``transition=None`` the worse of rise and fall skew."""
        if transition is not None:
            values = self._latency_values(transition)
            return max(values) - min(values)
        return max(self.skew(RISE), self.skew(FALL))

    def worst_slew(self) -> float:
        return max(
            value for per_tap in self.tap_slew.values() for value in per_tap.values()
        )

    def slew_violations(self, limit: float) -> List[int]:
        """Tap node ids whose rise or fall slew exceeds ``limit``."""
        return [
            node_id
            for node_id, per_tap in self.tap_slew.items()
            if max(per_tap.values()) > limit
        ]

    def _latency_values(self, transition: Optional[str]) -> List[float]:
        if transition is None:
            return [v for per_sink in self.latency.values() for v in per_sink.values()]
        return [per_sink[transition] for per_sink in self.latency.values()]


@dataclass
class EvaluationReport:
    """Result of one Clock-Network Evaluation (CNE) step."""

    corners: Dict[str, CornerTiming]
    fast_corner: str
    slow_corner: str
    engine: str
    slew_limit: float
    total_capacitance: float
    capacitance_limit: Optional[float]
    wirelength: float
    evaluation_index: int

    @property
    def nominal(self) -> CornerTiming:
        """Timing at the fast (nominal-supply) corner, used for skew optimization."""
        return self.corners[self.fast_corner]

    @property
    def skew(self) -> float:
        """Nominal skew: worse of rise/fall skew at the fast corner."""
        return self.nominal.skew()

    @property
    def clr(self) -> float:
        """Clock Latency Range across the fast and slow corners."""
        slow = self.corners[self.slow_corner]
        fast = self.corners[self.fast_corner]
        return max(
            slow.max_latency(t) - fast.min_latency(t) for t in _TRANSITIONS
        )

    @property
    def max_latency(self) -> float:
        """Greatest sink latency at the slow corner (the paper's "Latency" column)."""
        return self.corners[self.slow_corner].max_latency()

    @property
    def worst_slew(self) -> float:
        return max(timing.worst_slew() for timing in self.corners.values())

    @property
    def slew_violations(self) -> List[int]:
        violations: List[int] = []
        for timing in self.corners.values():
            violations.extend(timing.slew_violations(self.slew_limit))
        return sorted(set(violations))

    @property
    def has_slew_violation(self) -> bool:
        return bool(self.slew_violations)

    @property
    def within_capacitance_limit(self) -> bool:
        if self.capacitance_limit is None:
            return True
        return self.total_capacitance <= self.capacitance_limit

    @property
    def capacitance_utilization(self) -> Optional[float]:
        """Total capacitance as a fraction of the limit (None when unlimited)."""
        if self.capacitance_limit is None:
            return None
        return self.total_capacitance / self.capacitance_limit

    def summary(self) -> Dict[str, float]:
        """Compact numeric summary used by flow logs and benchmarks."""
        return {
            "skew_ps": self.skew,
            "clr_ps": self.clr,
            "max_latency_ps": self.max_latency,
            "worst_slew_ps": self.worst_slew,
            "total_capacitance_fF": self.total_capacitance,
            "wirelength_um": self.wirelength,
            "slew_violations": float(len(self.slew_violations)),
        }


@dataclass(frozen=True)
class CandidateScore:
    """Timing score of one candidate move from :meth:`evaluate_candidates`.

    Exposes the same objective fields (``skew``, ``clr``, ``max_latency``,
    ``worst_slew``, ``total_capacitance``, ``wirelength``) and constraint
    predicates (``has_slew_violation``, ``within_capacitance_limit``) as
    :class:`EvaluationReport`, so objective functions and IVC constraint
    callables accept either.  ``changed`` is the move's reported edge count
    (0 means the move was vacuous and the score fields are meaningless);
    ``batched`` records whether the score came from the batched numpy pass or
    from a full fallback evaluation.
    """

    index: int
    changed: int
    skew: float
    clr: float
    max_latency: float
    worst_slew: float
    total_capacitance: float
    wirelength: float
    slew_limit: float
    capacitance_limit: Optional[float]
    batched: bool

    @property
    def has_slew_violation(self) -> bool:
        return self.worst_slew > self.slew_limit

    @property
    def within_capacitance_limit(self) -> bool:
        if self.capacitance_limit is None:
            return True
        return self.total_capacitance <= self.capacitance_limit


@dataclass
class CandidateBatch:
    """Scores of one :meth:`evaluate_candidates` call, in move order.

    ``batched`` counts candidates scored by the batched numpy pass and
    ``fallbacks`` those that required a full evaluation (structure or driver
    polarity changed); vacuous candidates (``changed == 0``) count in neither.
    """

    scores: List[CandidateScore]
    batched: int
    fallbacks: int

    def __iter__(self) -> Iterator[CandidateScore]:
        return iter(self.scores)

    def __len__(self) -> int:
        return len(self.scores)

    def __getitem__(self, index: int) -> CandidateScore:
        return self.scores[index]


# Content key of one stage: (driver head, ((edge id, edge revision), ...)).
_StageKey = Tuple[tuple, tuple]
# Per-stage analytical model: {(corner, transition): {tap: (delay, sigma)}}.
_TapModel = Dict[Tuple[str, str], Dict[int, Tuple[float, float]]]
_Driver = Optional[BufferType]
# Engine adapter handed to _propagate_corner: (index, stage, output_dir,
# drive_slew) -> iterable of (tap, delay, slew) triples.
_StageTimingFn = Callable[[int, Stage, str, float], Iterable[Tuple[int, float, float]]]


class _StageFrag:
    """One stage's contribution to a corner's propagated timing.

    ``latency``/``slew``/``tap_slew`` are the stage's slices of the
    corresponding :class:`CornerTiming` dicts (both transitions); ``outputs``
    maps each launch transition to the ``(tap, arrival, slew, direction)``
    state the stage handed to downstream buffer taps.  Fragments are spliced
    into later partial propagations by reference, so the dicts are shared
    between the snapshot and every report built from it -- treat report
    timing dicts as read-only (nothing in the tree mutates them today).
    """

    __slots__ = ("latency", "slew", "tap_slew", "outputs")

    def __init__(
        self,
        latency: Dict[int, Dict[str, float]],
        slew: Dict[int, Dict[str, float]],
        tap_slew: Dict[int, Dict[str, float]],
        outputs: Dict[str, List[Tuple[int, float, float, str]]],
    ) -> None:
        self.latency = latency
        self.slew = slew
        self.tap_slew = tap_slew
        self.outputs = outputs


class _PropagationState:
    """Snapshot of the last full/partial propagation (dirty-region baseline).

    ``keys`` are the per-stage content keys the fragments were computed from;
    ``fragments`` maps corner name to the per-stage fragment list.  Valid only
    while the tree's structure revision matches (the stage decomposition, and
    hence the index alignment, is a function of it).
    """

    __slots__ = ("structure_revision", "keys", "fragments")

    def __init__(
        self,
        structure_revision: int,
        keys: List[Optional[_StageKey]],
        fragments: Dict[str, List[_StageFrag]],
    ) -> None:
        self.structure_revision = structure_revision
        self.keys = keys
        self.fragments = fragments


class _CandidateCapture:
    """What one applied-then-rolled-back candidate move left behind.

    ``dirty_moments``/``dirty_drivers`` hold the re-reduced base moments and
    the live driver for each stage the move touched; every other stage reuses
    the shared base-tree reduction in the batched pass.
    """

    __slots__ = (
        "index",
        "changed",
        "dirty_moments",
        "dirty_drivers",
        "total_capacitance",
        "wirelength",
    )

    def __init__(
        self,
        index: int,
        changed: int,
        dirty_moments: Dict[int, BaseTapMoments],
        dirty_drivers: Dict[int, _Driver],
        total_capacitance: float,
        wirelength: float,
    ) -> None:
        self.index = index
        self.changed = changed
        self.dirty_moments = dirty_moments
        self.dirty_drivers = dirty_drivers
        self.total_capacitance = total_capacitance
        self.wirelength = wirelength


def _node_contribution(node: TreeNode) -> Tuple[float, float, float, float]:
    """One node's (wire cap, buffer cap, sink cap, edge length) contributions.

    Mirrors the accumulation conditions of
    :meth:`~repro.cts.tree.ClockTree.total_capacitance` and
    :meth:`~repro.cts.tree.ClockTree.total_wirelength` exactly.
    """
    if node.parent is not None and node.wire_type is not None:
        wire = node.wire_type.capacitance(node.route_length() + node.snake_length)
    else:
        wire = 0.0
    buffers = node.buffer.total_cap if node.buffer is not None else 0.0
    sinks = node.sink.capacitance if node.sink is not None and node.is_sink else 0.0
    length = node.edge_length() if node.parent is not None else 0.0
    return wire, buffers, sinks, length


class _CandidateTotals:
    """Per-node contribution template for candidate capacitance/wirelength.

    ``total_capacitance``/``total_wirelength`` walk every node, but a
    candidate move touches a handful.  The template records every node's
    contributions in node-table order once per batch; a candidate's totals
    substitute the touched nodes' current contributions and re-sum in the
    same order, which is bit-identical to the full walk (untouched nodes
    contribute the exact same floats, non-contributing nodes exact zeros,
    and adding 0.0 is exact).
    """

    __slots__ = ("pos", "wire", "buffers", "sinks", "lengths")

    def __init__(self, tree: ClockTree) -> None:
        self.pos: Dict[int, int] = {}
        self.wire: List[float] = []
        self.buffers: List[float] = []
        self.sinks: List[float] = []
        self.lengths: List[float] = []
        for index, node in enumerate(tree.nodes()):
            self.pos[node.node_id] = index
            wire, buffers, sinks, length = _node_contribution(node)
            self.wire.append(wire)
            self.buffers.append(buffers)
            self.sinks.append(sinks)
            self.lengths.append(length)

    def candidate_totals(
        self, tree: ClockTree, touched: Iterable[int]
    ) -> Tuple[float, float]:
        """(total capacitance, wirelength) of ``tree`` with a move applied."""
        saved: List[Tuple[int, float, float, float, float]] = []
        for node_id in touched:
            index = self.pos.get(node_id)
            if index is None:
                continue
            saved.append(
                (
                    index,
                    self.wire[index],
                    self.buffers[index],
                    self.sinks[index],
                    self.lengths[index],
                )
            )
            wire, buffers, sinks, length = _node_contribution(tree.node(node_id))
            self.wire[index] = wire
            self.buffers[index] = buffers
            self.sinks[index] = sinks
            self.lengths[index] = length
        try:
            total_capacitance = sum(self.wire) + sum(self.buffers) + sum(self.sinks)
            wirelength = sum(self.lengths)
        finally:
            for index, wire, buffers, sinks, length in saved:
                self.wire[index] = wire
                self.buffers[index] = buffers
                self.sinks[index] = sinks
                self.lengths[index] = length
        return total_capacitance, wirelength


class _BatchPlan:
    """Corner-independent precompute for one batched candidate scoring pass.

    Holds, per closure stage, the variant delay/sigma row stacks covering
    every (corner, transition) combination, the per-candidate variant index,
    the per-candidate intrinsic delays, and the sink/buffer tap columns --
    everything the per-corner propagation only has to slice, so no moment
    reduction runs more than once per stage variant.
    """

    __slots__ = (
        "n",
        "closure",
        "closure_set",
        "boundary",
        "seed_stages",
        "delay",
        "sigma",
        "variant_of",
        "intrinsic",
        "sink_cols",
        "buffer_cols",
        "tap_ids",
    )

    def __init__(self, n: int, closure: List[int]) -> None:
        self.n = n
        self.closure = closure
        self.closure_set: Set[int] = set(closure)
        self.boundary: Set[int] = set()
        self.seed_stages: List[int] = []
        self.delay: Dict[int, np.ndarray] = {}
        self.sigma: Dict[int, np.ndarray] = {}
        self.variant_of: Dict[int, np.ndarray] = {}
        self.intrinsic: Dict[int, Optional[np.ndarray]] = {}
        self.sink_cols: Dict[int, List[int]] = {}
        self.buffer_cols: Dict[int, List[int]] = {}
        self.tap_ids: Dict[int, Tuple[int, ...]] = {}


class StageCache:
    """Content-addressed cache of per-stage analysis results.

    Entries are keyed by stage content keys built from the
    :class:`~repro.cts.tree.ClockTree` mutation journal, so they remain valid
    across snapshots, clones and rollbacks: two stages with equal keys have
    identical RC content, no matter which tree object they live in.  The
    cache stores

    * ``stage topologies`` per tree structure revision (the stage
      decomposition plus its downstream-adjacency and tap-flag indexes, see
      :class:`~repro.analysis.rcnetwork.StageTopology`),
    * ``tap models`` per stage content (batched delay/sigma for every corner
      and transition; analytical engines),
    * ``networks`` per (stage content, corner, transition) and ``timings``
      per (stage content, corner, transition, input slew) for the transient
      engine.

    When the total entry count exceeds ``max_entries`` the cache is cleared
    wholesale -- the next evaluation repopulates it with only the live keys,
    which keeps memory bounded without LRU bookkeeping on the hot path.
    """

    def __init__(self, max_entries: int = 200_000) -> None:
        self.max_entries = max_entries
        self._topologies: "OrderedDict[int, StageTopology]" = OrderedDict()
        self._tap_models: Dict[_StageKey, _TapModel] = {}
        self._base_moments: Dict[tuple, BaseTapMoments] = {}
        self._networks: Dict[tuple, StageNetwork] = {}
        self._timings: Dict[tuple, StageTiming] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- stage decomposition ------------------------------------------------
    def topology(self, tree: ClockTree) -> StageTopology:
        """The tree's stage topology, cached by structure revision.

        Safe to share across trees with equal structure revisions: the
        decomposition, downstream adjacency and (is_sink, has_buffer) tap
        flags are all functions of the structure revision alone (buffer
        *presence* changes always bump it; same-site replacement is a
        content-only change that keeps both flags).
        """
        revision = tree.structure_revision
        topo = self._topologies.get(revision)
        if topo is None:
            topo = build_stage_topology(tree)
            if len(self._topologies) >= 16:
                self._topologies.popitem(last=False)
            self._topologies[revision] = topo
        else:
            self._topologies.move_to_end(revision)
        return topo

    def stage_list(self, tree: ClockTree) -> List[Stage]:
        """The tree's stage decomposition, cached by structure revision."""
        return self.topology(tree).stages

    # -- analytical-engine models ------------------------------------------
    def tap_model(self, key: _StageKey) -> Optional[_TapModel]:
        model = self._tap_models.get(key)
        if model is None:
            self.misses += 1
        else:
            self.hits += 1
        return model

    def store_tap_model(self, key: _StageKey, model: _TapModel) -> None:
        self._bound()
        self._tap_models[key] = model

    def base_moments(self, key: tuple, count: bool = True) -> Optional[BaseTapMoments]:
        """Cached corner-independent moment reduction of one stage.

        Keys carry the stage content key plus the wire/load-split flag; the
        entries are shared between :meth:`ClockNetworkEvaluator.evaluate`
        (which turns them into per-corner tap models) and
        :meth:`ClockNetworkEvaluator.evaluate_yield` (which scales them per
        Monte Carlo sample), so a yield evaluation re-reduces only stages
        whose RC content changed since any earlier evaluation of either kind.

        ``count=False`` skips the hit/miss accounting: the nominal tap-model
        path already counts once per stage lookup, and one re-analyzed stage
        should keep counting as one miss.
        """
        moments = self._base_moments.get(key)
        if count:
            if moments is None:
                self.misses += 1
            else:
                self.hits += 1
        return moments

    def store_base_moments(self, key: tuple, moments: BaseTapMoments) -> None:
        self._bound()
        self._base_moments[key] = moments

    # -- transient-engine entries ------------------------------------------
    def network(self, key: tuple) -> Optional[StageNetwork]:
        return self._networks.get(key)

    def store_network(self, key: tuple, network: StageNetwork) -> None:
        self._bound()
        self._networks[key] = network

    def timing(self, key: tuple) -> Optional[StageTiming]:
        timing = self._timings.get(key)
        if timing is None:
            self.misses += 1
        else:
            self.hits += 1
        return timing

    def store_timing(self, key: tuple, timing: StageTiming) -> None:
        self._bound()
        self._timings[key] = timing

    # -- maintenance --------------------------------------------------------
    def _bound(self) -> None:
        total = (
            len(self._tap_models)
            + len(self._base_moments)
            + len(self._networks)
            + len(self._timings)
        )
        if total >= self.max_entries:
            self.clear()
            self.evictions += 1

    def clear(self) -> None:
        """Drop every cached entry (stats are kept)."""
        self._topologies.clear()
        self._tap_models.clear()
        self._base_moments.clear()
        self._networks.clear()
        self._timings.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "tap_models": len(self._tap_models),
            "base_moments": len(self._base_moments),
            "networks": len(self._networks),
            "timings": len(self._timings),
            "stage_lists": len(self._topologies),
        }


class ClockNetworkEvaluator:
    """Evaluate a clock tree with the configured engine at multiple corners.

    The evaluator keeps a running count of invocations (``run_count``), which
    stands in for the paper's "number of SPICE runs" metric in Table V, and a
    :class:`StageCache` making repeated evaluations incremental: only stages
    whose RC content changed since *any* earlier evaluation (of this tree or
    of a snapshot sharing its revisions) are re-analyzed.  With
    ``dirty_region`` enabled, arrival/slew propagation is likewise restricted
    to the changed stages and their downstream cone (see the module
    docstring); :meth:`evaluate_candidates` scores whole batches of moves in
    one numpy pass.  All three layers are bit-identical to cold evaluation.
    """

    def __init__(
        self,
        config: Optional[EvaluatorConfig] = None,
        corners: Optional[Sequence[Corner]] = None,
        capacitance_limit: Optional[float] = None,
    ) -> None:
        self.config = config or EvaluatorConfig()
        corner_list = list(corners) if corners is not None else ispd09_corners()
        if not corner_list:
            raise ValueError("at least one corner is required")
        self.corners = corner_list
        self.capacitance_limit = capacitance_limit
        self.run_count = 0
        # Monte Carlo yield evaluations are counted separately: run_count
        # stands for the paper's "SPICE runs" metric and must not drift when
        # the variation engine is switched on.
        self.yield_run_count = 0
        # The fast corner has the highest supply, the slow corner the lowest.
        self._fast = max(corner_list, key=lambda c: c.vdd).name
        self._slow = min(corner_list, key=lambda c: c.vdd).name
        self.cache = StageCache()
        # Structured tracing: callers (the pipeline driver, a profiler) swap
        # in a live Tracer; the default NULL_TRACER keeps the instrumented
        # paths at one attribute read plus a branch.
        self.tracer: TracerBase = NULL_TRACER
        # Dirty-region propagation snapshot plus attribution counters
        # (surfaced through cache_stats() so reported speedups stay
        # attributable to the layer that produced them).
        self._prop: Optional[_PropagationState] = None
        # Candidate-totals template, reusable while the tree content (stage
        # keys) and structure are unchanged between evaluate_candidates calls.
        self._totals_cache: Optional[
            Tuple[int, List[Optional[_StageKey]], _CandidateTotals]
        ] = None
        self._propagations_full = 0
        self._propagations_partial = 0
        self._stages_propagated = 0
        self._stages_total = 0
        self.candidate_batches = 0
        self.candidates_scored = 0
        self.candidate_fallbacks = 0
        # One batched scaling row per (corner, transition) combination.
        self._combos: List[Tuple[str, str]] = []
        driver_scales: List[float] = []
        res_scales: List[float] = []
        cap_scales: List[float] = []
        for corner in corner_list:
            for direction in _TRANSITIONS:
                asym = (
                    self.config.pull_up_factor
                    if direction == RISE
                    else self.config.pull_down_factor
                )
                self._combos.append((corner.name, direction))
                driver_scales.append(corner.driver_scale * asym)
                res_scales.append(corner.wire_res_scale)
                cap_scales.append(corner.wire_cap_scale)
        self._combo_scales = (driver_scales, res_scales, cap_scales)
        # With no corner scaling wire capacitance (the ISPD'09 set), the
        # moment reduction can collapse wire and load caps into one component.
        self._split_caps = any(scale != 1.0 for scale in cap_scales)

    # ------------------------------------------------------------------
    def evaluate(
        self, tree: ClockTree, incremental: Optional[bool] = None
    ) -> EvaluationReport:
        """Run one Clock-Network Evaluation of ``tree`` at every corner.

        With ``incremental`` left at ``None`` the :class:`EvaluatorConfig`
        decides whether the stage cache is used; passing ``False`` forces a
        cold evaluation (identical results, no cache reads or writes).
        """
        tracer = self.tracer
        if not tracer.enabled:
            return self._evaluate_inner(tree, incremental)
        hits_before = self.cache.hits
        misses_before = self.cache.misses
        full_before = self._propagations_full
        partial_before = self._propagations_partial
        stages_before = self._stages_propagated
        with tracer.span("evaluate") as span:
            report = self._evaluate_inner(tree, incremental)
            if span is not None:
                span.count("cache_hits", self.cache.hits - hits_before)
                span.count("cache_misses", self.cache.misses - misses_before)
                span.count("propagations_full", self._propagations_full - full_before)
                span.count(
                    "propagations_partial", self._propagations_partial - partial_before
                )
                span.count(
                    "stages_propagated", self._stages_propagated - stages_before
                )
        return report

    def _evaluate_inner(
        self, tree: ClockTree, incremental: Optional[bool]
    ) -> EvaluationReport:
        self.run_count += 1
        use_cache = self.config.incremental if incremental is None else incremental
        # Driver buffers are read live from the tree: cached stage lists may
        # pre-date a same-site buffer re-sizing.
        topo: Optional[StageTopology] = None
        if use_cache:
            topo = self.cache.topology(tree)
            stages = topo.stages
            keys, drivers = self._stage_keys(tree, stages)
            # (is_sink, has_buffer) per tap: a function of the structure
            # revision (see StageCache.topology), so the cached index is safe.
            tap_flags = topo.tap_flags
        else:
            stages = extract_stages(tree)
            keys = [None] * len(stages)
            drivers = [tree.node(stage.driver_id).buffer for stage in stages]
            tap_flags = {}
            for stage in stages:
                for tap in stage.taps:
                    node = tree.node(tap)
                    tap_flags[tap] = (node.is_sink, node.buffer is not None)
        collect = use_cache and self.config.dirty_region
        recompute: Optional[Set[int]] = None
        prior: Optional[_PropagationState] = None
        if collect and topo is not None:
            recompute, prior = self._dirty_frontier(tree, keys, topo)
        total = len(stages)
        self._stages_total += total
        if recompute is None:
            self._propagations_full += 1
            self._stages_propagated += total
        else:
            self._propagations_partial += 1
            self._stages_propagated += len(recompute)
            # Retained stages are exactly the cache hits the propagation no
            # longer has to look up: credit them so hit rates stay comparable
            # with dirty_region disabled.
            self.cache.hits += total - len(recompute)
        with self.tracer.span("propagate") as prop_span:
            corner_results, fragments = self._propagate_corners(
                tree,
                stages,
                keys,
                drivers,
                tap_flags,
                recompute=recompute,
                prior=prior,
                collect=collect,
            )
            if prop_span is not None:
                prop_span.count("corners", len(self.corners))
                prop_span.count(
                    "stages", total if recompute is None else len(recompute)
                )
        if collect:
            self._prop = _PropagationState(
                structure_revision=tree.structure_revision,
                keys=list(keys),
                fragments=fragments,
            )
        return EvaluationReport(
            corners=corner_results,
            fast_corner=self._fast,
            slow_corner=self._slow,
            engine=self.config.engine,
            slew_limit=self.config.slew_limit,
            total_capacitance=tree.total_capacitance(),
            capacitance_limit=self.capacitance_limit,
            wirelength=tree.total_wirelength(),
            evaluation_index=self.run_count,
        )

    def _propagate_corners(
        self,
        tree: ClockTree,
        stages: List[Stage],
        keys: List[Optional[_StageKey]],
        drivers: List[_Driver],
        tap_flags: Dict[int, Tuple[bool, bool]],
        *,
        recompute: Optional[Set[int]],
        prior: Optional[_PropagationState],
        collect: bool,
    ) -> Tuple[Dict[str, CornerTiming], Dict[str, List[_StageFrag]]]:
        """Analyze and propagate every corner (the ``propagate`` span body)."""
        fragments: Dict[str, List[_StageFrag]] = {}
        corner_results: Dict[str, CornerTiming] = {}
        if self.config.engine in ("elmore", "arnoldi"):
            models: List[Optional[_TapModel]] = [
                None
                if (recompute is not None and index not in recompute)
                else self._tap_model(tree, stage, key)
                for index, (stage, key) in enumerate(zip(stages, keys))
            ]
            for corner in self.corners:
                prior_frags = prior.fragments[corner.name] if prior is not None else None
                timing, frags = self._corner_from_models(
                    stages,
                    models,
                    drivers,
                    tap_flags,
                    corner,
                    recompute=recompute,
                    prior=prior_frags,
                    collect=collect,
                )
                corner_results[corner.name] = timing
                if frags is not None:
                    fragments[corner.name] = frags
        else:
            for corner in self.corners:
                prior_frags = prior.fragments[corner.name] if prior is not None else None
                timing, frags = self._corner_transient(
                    tree,
                    stages,
                    keys,
                    drivers,
                    tap_flags,
                    corner,
                    recompute=recompute,
                    prior=prior_frags,
                    collect=collect,
                )
                corner_results[corner.name] = timing
                if frags is not None:
                    fragments[corner.name] = frags
        return corner_results, fragments

    def cache_stats(self) -> Dict[str, int]:
        """Hit/miss/size statistics of the stage cache plus propagation and
        candidate-batching attribution counters (see the module docstring)."""
        stats = self.cache.stats()
        stats["propagations_full"] = self._propagations_full
        stats["propagations_partial"] = self._propagations_partial
        stats["stages_propagated"] = self._stages_propagated
        stats["stages_total"] = self._stages_total
        stats["candidate_batches"] = self.candidate_batches
        stats["candidates_scored"] = self.candidates_scored
        stats["candidate_fallbacks"] = self.candidate_fallbacks
        return stats

    def clear_cache(self) -> None:
        """Drop all cached stage analyses (results are unaffected)."""
        self.cache.clear()
        self._prop = None
        self._totals_cache = None

    # ------------------------------------------------------------------
    # Batched candidate evaluation
    # ------------------------------------------------------------------
    def evaluate_candidates(
        self, tree: ClockTree, moves: Sequence[Callable[[], int]]
    ) -> CandidateBatch:
        """Score independent candidate moves against the current tree.

        Each ``move`` is a callable that mutates ``tree`` and returns the
        number of edges it changed (0 for a vacuous move).  Every move is
        applied under a journal checkpoint and rolled back before the next
        one, so ``tree`` is returned unchanged; the scores say what *would*
        happen if the move were committed, bit-identical to applying the move
        and calling :meth:`evaluate`.

        With ``candidate_batching`` enabled and an analytical engine, all
        structure-preserving moves are scored in one numpy pass over the
        candidates axis (see the module docstring); moves that change the
        tree structure or a driver's polarity fall back to a full evaluation.
        Otherwise every move is scored by a full evaluation -- same results,
        one evaluation per candidate.
        """
        tracer = self.tracer
        if not tracer.enabled:
            return self._evaluate_candidates_inner(tree, moves)
        with tracer.span("candidate_batch") as span:
            batch = self._evaluate_candidates_inner(tree, moves)
            if span is not None:
                span.count("candidates", len(moves))
                span.count("batched", batch.batched)
                span.count("fallbacks", batch.fallbacks)
        return batch

    def _evaluate_candidates_inner(
        self, tree: ClockTree, moves: Sequence[Callable[[], int]]
    ) -> CandidateBatch:
        if not moves:
            return CandidateBatch(scores=[], batched=0, fallbacks=0)
        cfg = self.config
        batchable = (
            cfg.candidate_batching
            and cfg.incremental
            and cfg.engine in ("elmore", "arnoldi")
        )
        if not batchable:
            return CandidateBatch(
                scores=[
                    self._serial_candidate(tree, index, move)
                    for index, move in enumerate(moves)
                ],
                batched=0,
                fallbacks=0,
            )
        topo = self.cache.topology(tree)
        stages = topo.stages
        keys, drivers = self._stage_keys(tree, stages)
        # Candidate scoring piggybacks on the dirty-region snapshot: with a
        # fragment list for the base tree, only the union of the candidates'
        # dirty closures has to be propagated K-wide and the retained
        # extremes come from the snapshot.  Refresh the snapshot if the tree
        # moved since the last evaluate (cheap -- itself a partial pass).
        prior = self._prop
        if cfg.dirty_region and (
            prior is None
            or prior.structure_revision != tree.structure_revision
            or prior.keys != keys
        ):
            self.evaluate(tree)
            prior = self._prop
        if prior is not None and (
            prior.structure_revision != tree.structure_revision
            or prior.keys != keys
        ):
            prior = None  # snapshot could not be refreshed (dirty_region off)
        base_revision = tree.structure_revision
        cached_totals = self._totals_cache
        if (
            cached_totals is not None
            and cached_totals[0] == base_revision
            and cached_totals[1] == keys
        ):
            totals = cached_totals[2]
        else:
            totals = _CandidateTotals(tree)
            self._totals_cache = (base_revision, keys, totals)
        results: List[Optional[CandidateScore]] = [None] * len(moves)
        captures: List[_CandidateCapture] = []
        fallbacks = 0
        for index, move in enumerate(moves):
            token = tree.checkpoint()
            try:
                changed = move()
                if changed == 0:
                    results[index] = self._vacuous_score(index)
                    continue
                capture = self._capture_candidate(
                    tree, token, index, changed, stages, drivers, base_revision,
                    topo, totals,
                )
                if capture is None:
                    # Structure or driver polarity changed: score honestly
                    # with a full evaluation while the move is applied.
                    fallbacks += 1
                    self.candidate_fallbacks += 1
                    report = self.evaluate(tree)
                    results[index] = self._score_from_report(
                        index, changed, report, batched=False
                    )
                else:
                    captures.append(capture)
            finally:
                tree.rollback_to(token)
        if captures:
            self.candidate_batches += 1
            self.candidates_scored += len(captures)
            # K-wide propagation only has to walk the union of the captured
            # dirty frontiers closed downstream; with a snapshot available the
            # retained remainder is spliced in as scalars.  Without one (the
            # dirty_region toggle is off) the closure is the whole tree.
            union_dirty: Set[int] = set()
            for capture in captures:
                union_dirty.update(capture.dirty_moments)
            if prior is not None:
                closure = self._downstream_closure(union_dirty, topo)
            else:
                closure = list(range(len(stages)))
            base_moments = {
                index: self._stage_base_moments(
                    tree, stages[index], keys[index], self._split_caps, count=False
                )
                for index in closure
            }
            for capture, score in zip(
                captures,
                self._batched_scores(
                    stages,
                    drivers,
                    topo,
                    closure,
                    base_moments,
                    captures,
                    None if prior is None else prior.fragments,
                ),
            ):
                results[capture.index] = score
        scores: List[CandidateScore] = []
        for result in results:
            assert result is not None  # every index filled above
            scores.append(result)
        return CandidateBatch(scores=scores, batched=len(captures), fallbacks=fallbacks)

    def _serial_candidate(
        self, tree: ClockTree, index: int, move: Callable[[], int]
    ) -> CandidateScore:
        token = tree.checkpoint()
        try:
            changed = move()
            if changed == 0:
                return self._vacuous_score(index)
            report = self.evaluate(tree)
            return self._score_from_report(index, changed, report, batched=False)
        finally:
            tree.rollback_to(token)

    def _vacuous_score(self, index: int) -> CandidateScore:
        return CandidateScore(
            index=index,
            changed=0,
            skew=0.0,
            clr=0.0,
            max_latency=0.0,
            worst_slew=0.0,
            total_capacitance=0.0,
            wirelength=0.0,
            slew_limit=self.config.slew_limit,
            capacitance_limit=self.capacitance_limit,
            batched=False,
        )

    def _score_from_report(
        self, index: int, changed: int, report: EvaluationReport, batched: bool
    ) -> CandidateScore:
        return CandidateScore(
            index=index,
            changed=changed,
            skew=report.skew,
            clr=report.clr,
            max_latency=report.max_latency,
            worst_slew=report.worst_slew,
            total_capacitance=report.total_capacitance,
            wirelength=report.wirelength,
            slew_limit=report.slew_limit,
            capacitance_limit=report.capacitance_limit,
            batched=batched,
        )

    def _capture_candidate(
        self,
        tree: ClockTree,
        token: int,
        index: int,
        changed: int,
        stages: List[Stage],
        drivers: List[_Driver],
        base_revision: int,
        topo: StageTopology,
        totals: _CandidateTotals,
    ) -> Optional[_CandidateCapture]:
        """Capture an applied move's dirty stages, or None to force fallback."""
        if tree.structure_revision != base_revision:
            return None
        touched = tree.touched_since(token)
        dirty_stages: Set[int] = set()
        for node_id in touched:
            stage_index = topo.stage_of_edge.get(node_id)
            if stage_index is not None:
                dirty_stages.add(stage_index)
            stage_index = topo.stage_of_driver.get(node_id)
            if stage_index is not None:
                dirty_stages.add(stage_index)
        revisions = tree.node_revisions
        dirty_moments: Dict[int, BaseTapMoments] = {}
        dirty_drivers: Dict[int, _Driver] = {}
        for stage_index in dirty_stages:
            stage = stages[stage_index]
            base_buffer = drivers[stage_index]
            key, buffer = self._stage_key(tree, stage, revisions)
            if (buffer is None) != (base_buffer is None):
                return None
            if (
                buffer is not None
                and base_buffer is not None
                and buffer.inverting != base_buffer.inverting
            ):
                return None
            dirty_moments[stage_index] = self._stage_base_moments(
                tree, stage, key, self._split_caps, count=False
            )
            dirty_drivers[stage_index] = buffer
        total_capacitance, wirelength = totals.candidate_totals(tree, touched)
        return _CandidateCapture(
            index=index,
            changed=changed,
            dirty_moments=dirty_moments,
            dirty_drivers=dirty_drivers,
            total_capacitance=total_capacitance,
            wirelength=wirelength,
        )

    def _batched_scores(
        self,
        stages: List[Stage],
        drivers: List[_Driver],
        topo: StageTopology,
        closure: List[int],
        base_moments: Dict[int, BaseTapMoments],
        captures: List[_CandidateCapture],
        prior_frags: Optional[Dict[str, List[_StageFrag]]],
    ) -> List[CandidateScore]:
        """Score every captured candidate in one batched pass per corner.

        The skew/CLR/latency/slew extraction below mirrors the corresponding
        :class:`EvaluationReport` properties operation for operation, so the
        resulting floats are bit-identical to a full evaluation of each move.
        """
        plan = self._batch_plan(
            stages, drivers, topo, closure, base_moments, captures,
            retained=prior_frags is not None,
        )
        per_corner = {
            corner.name: self._candidate_corner(
                stages,
                drivers,
                corner,
                2 * position,
                plan,
                None if prior_frags is None else prior_frags[corner.name],
            )
            for position, corner in enumerate(self.corners)
        }
        fast = per_corner[self._fast]
        slow = per_corner[self._slow]
        skew = np.maximum(
            fast["max"][RISE] - fast["min"][RISE], fast["max"][FALL] - fast["min"][FALL]
        )
        clr = np.maximum(
            slow["max"][RISE] - fast["min"][RISE], slow["max"][FALL] - fast["min"][FALL]
        )
        max_latency = np.maximum(slow["max"][RISE], slow["max"][FALL])
        worst_slew = per_corner[self.corners[0].name]["slew"]
        for corner in self.corners[1:]:
            worst_slew = np.maximum(worst_slew, per_corner[corner.name]["slew"])
        return [
            CandidateScore(
                index=capture.index,
                changed=capture.changed,
                skew=float(skew[column]),
                clr=float(clr[column]),
                max_latency=float(max_latency[column]),
                worst_slew=float(worst_slew[column]),
                total_capacitance=capture.total_capacitance,
                wirelength=capture.wirelength,
                slew_limit=self.config.slew_limit,
                capacitance_limit=self.capacitance_limit,
                batched=True,
            )
            for column, capture in enumerate(captures)
        ]

    def _downstream_closure(
        self, dirty: Set[int], topo: StageTopology
    ) -> List[int]:
        """Dirty stage indices closed over downstream stages, in stage order.

        The stage list is topological (parents before children), so the
        sorted closure can be propagated by increasing index.
        """
        closure: Set[int] = set()
        stack = list(dirty)
        while stack:
            index = stack.pop()
            if index in closure:
                continue
            closure.add(index)
            stack.extend(topo.children[index])
        return sorted(closure)

    def _batch_plan(
        self,
        stages: List[Stage],
        drivers: List[_Driver],
        topo: StageTopology,
        closure: List[int],
        base_moments: Dict[int, BaseTapMoments],
        captures: List[_CandidateCapture],
        retained: bool,
    ) -> _BatchPlan:
        """Corner-independent precompute shared by every corner's propagation.

        One moment/delay reduction per stage variant covers all (corner,
        transition) rows at once (the same row layout as the cached tap
        models), so the per-corner walks only slice.
        """
        use_d2m = self.config.engine == "arnoldi"
        tap_flags = topo.tap_flags
        plan = _BatchPlan(len(captures), closure)
        n = plan.n
        for index in closure:
            buffer = drivers[index]
            plan.boundary.add(stages[index].driver_id)
            variant_moments: List[BaseTapMoments] = [base_moments[index]]
            variant_of = np.zeros(n, dtype=np.intp)
            for column, capture in enumerate(captures):
                moments = capture.dirty_moments.get(index)
                if moments is not None:
                    variant_of[column] = len(variant_moments)
                    variant_moments.append(moments)
            delays: List[np.ndarray] = []
            sigmas: List[np.ndarray] = []
            for moments in variant_moments:
                m1, m2 = batched_tap_moments(moments, *self._combo_scales)
                delay_rows, sigma_rows = batched_delay_sigma(m1, m2, use_d2m=use_d2m)
                delays.append(delay_rows)
                sigmas.append(sigma_rows)
            plan.delay[index] = np.stack(delays)  # (variants, combos, taps)
            plan.sigma[index] = np.stack(sigmas)
            plan.variant_of[index] = variant_of
            if buffer is None:
                plan.intrinsic[index] = None
            else:
                values = np.empty(n)
                for column, capture in enumerate(captures):
                    driver = capture.dirty_drivers.get(index, buffer)
                    assert driver is not None  # presence is uniform (fallback)
                    values[column] = driver.intrinsic_delay
                plan.intrinsic[index] = values
            tap_ids = base_moments[index].tap_ids
            plan.tap_ids[index] = tap_ids
            plan.sink_cols[index] = [
                col for col, tap in enumerate(tap_ids) if tap_flags[tap][0]
            ]
            plan.buffer_cols[index] = [
                col for col, tap in enumerate(tap_ids) if tap_flags[tap][1]
            ]
        if retained:
            # Retained stages whose outputs feed a closure stage: the only
            # fragments boundary seeding has to scan.
            seen: Set[int] = set()
            for index in closure:
                parent = topo.stage_of_edge.get(stages[index].driver_id)
                if (
                    parent is not None
                    and parent not in plan.closure_set
                    and parent not in seen
                ):
                    seen.add(parent)
                    plan.seed_stages.append(parent)
        return plan

    def _candidate_corner(
        self,
        stages: List[Stage],
        drivers: List[_Driver],
        corner: Corner,
        rise_row: int,
        plan: _BatchPlan,
        prior_frags: Optional[List[_StageFrag]],
    ) -> Dict:
        """Vectorized arrival/slew propagation of all candidates at one corner.

        The candidates axis replaces :meth:`_propagate_corner`'s scalars with
        length-``K`` arrays, exactly like :meth:`_corner_yield` does for
        Monte Carlo samples; the operation order matches the scalar path so
        unit rows keep bit parity.  Only the closure stages (the union of
        the candidates' dirty frontiers, closed downstream) are walked:
        stages outside it time identically for every candidate, so their
        boundary outputs seed the closure inputs and their sink/slew extremes
        enter as scalars read off the snapshot fragments.  That splice is
        bit-exact because the max/min over closure sinks merged with the
        retained extremes equals the global max/min.  Stages a candidate left
        untouched index into the shared base-tree rows; dirty stages get
        their own variant rows.  Driver presence and polarity are uniform
        across candidates by construction (divergent moves fell back), so
        direction tracking stays scalar.
        """
        cfg = self.config
        n = plan.n
        fall_row = rise_row + 1
        closure = plan.closure
        closure_set = plan.closure_set
        stage_delay: Dict[int, np.ndarray] = {}
        stage_sigma: Dict[int, np.ndarray] = {}
        for index in closure:
            variant_of = plan.variant_of[index]
            # Candidate rows [rise x n, fall x n], mirroring _corner_yield.
            stage_delay[index] = np.concatenate(
                (
                    plan.delay[index][variant_of, rise_row, :],
                    plan.delay[index][variant_of, fall_row, :],
                )
            )
            stage_sigma[index] = np.concatenate(
                (
                    plan.sigma[index][variant_of, rise_row, :],
                    plan.sigma[index][variant_of, fall_row, :],
                )
            )

        # Retained contribution: every stage outside the closure times
        # identically for all candidates, so its extremes are scalars.
        ret_max = {t: -np.inf for t in _TRANSITIONS}
        ret_min = {t: np.inf for t in _TRANSITIONS}
        ret_slew = 0.0
        if prior_frags is not None:
            for index, frag in enumerate(prior_frags):
                if index in closure_set:
                    continue
                for per_sink in frag.latency.values():
                    for transition, value in per_sink.items():
                        if value > ret_max[transition]:
                            ret_max[transition] = value
                        if value < ret_min[transition]:
                            ret_min[transition] = value
                for per_tap in frag.tap_slew.values():
                    for value in per_tap.values():
                        if value > ret_slew:
                            ret_slew = value

        root_id = stages[0].driver_id
        max_lat = {t: np.full(n, ret_max[t]) for t in _TRANSITIONS}
        min_lat = {t: np.full(n, ret_min[t]) for t in _TRANSITIONS}
        worst_slew = np.full(n, ret_slew)
        boundary = plan.boundary
        for launch in _TRANSITIONS:
            arrival_at: Dict[int, Union[float, np.ndarray]] = {root_id: 0.0}
            slew_at: Dict[int, Union[float, np.ndarray]] = {
                root_id: cfg.source_slew
            }
            direction_at: Dict[int, str] = {root_id: launch}
            if prior_frags is not None:
                # Closure-boundary inputs come from retained-stage outputs;
                # scalars here broadcast against the K-wide rows below.
                for index in plan.seed_stages:
                    for tap, arrival, slew, output_dir in (
                        prior_frags[index].outputs[launch]
                    ):
                        if tap in boundary:
                            arrival_at[tap] = arrival
                            slew_at[tap] = slew
                            direction_at[tap] = output_dir
            for index in closure:
                stage = stages[index]
                buffer = drivers[index]
                input_arrival = arrival_at[stage.driver_id]
                input_slew = slew_at[stage.driver_id]
                input_dir = direction_at[stage.driver_id]
                if buffer is not None and buffer.inverting:
                    output_dir = FALL if input_dir == RISE else RISE
                else:
                    output_dir = input_dir
                gate_delay: Union[float, np.ndarray]
                stage_intrinsic = plan.intrinsic[index]
                if buffer is None or stage_intrinsic is None:
                    drive_slew = input_slew
                    gate_delay = 0.0
                else:
                    drive_slew = cfg.buffer_slew_regeneration * input_slew
                    gate_delay = (
                        stage_intrinsic * corner.driver_scale
                        + cfg.slew_delay_factor * input_slew
                    )
                row0 = 0 if output_dir == RISE else n
                base_arrival = input_arrival + gate_delay
                if isinstance(base_arrival, np.ndarray):
                    base_arrival = base_arrival[:, None]
                drive_sq = drive_slew * drive_slew
                if isinstance(drive_sq, np.ndarray):
                    drive_sq = drive_sq[:, None]
                delay = stage_delay[index][row0 : row0 + n, :]
                sigma = stage_sigma[index][row0 : row0 + n, :]
                tap_arrival = base_arrival + delay  # (n, taps)
                wire_slew = LN9 * sigma
                tap_slew_value = (wire_slew * wire_slew + drive_sq) ** 0.5
                if tap_slew_value.shape[1]:
                    np.maximum(
                        worst_slew, tap_slew_value.max(axis=1), out=worst_slew
                    )
                cols = plan.sink_cols[index]
                if cols:
                    sinks = tap_arrival[:, cols]
                    np.maximum(
                        max_lat[output_dir], sinks.max(axis=1), out=max_lat[output_dir]
                    )
                    np.minimum(
                        min_lat[output_dir], sinks.min(axis=1), out=min_lat[output_dir]
                    )
                tap_ids = plan.tap_ids[index]
                for col in plan.buffer_cols[index]:
                    tap = tap_ids[col]
                    arrival_at[tap] = tap_arrival[:, col]
                    slew_at[tap] = tap_slew_value[:, col]
                    direction_at[tap] = output_dir
        return {"max": max_lat, "min": min_lat, "slew": worst_slew}

    # ------------------------------------------------------------------
    # Monte Carlo variation evaluation
    # ------------------------------------------------------------------
    def evaluate_yield(
        self,
        tree: ClockTree,
        model: VariationModel,
        samples: int = 1000,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
        skew_limit_ps: float = 7.5,
    ) -> YieldReport:
        """Evaluate ``tree`` under ``samples`` Monte Carlo variation scenarios.

        Per-stage perturbations are drawn from ``model`` and applied on top
        of every evaluator corner; all scenarios are analyzed in batched
        numpy passes over the cached per-stage moment reductions (one
        :func:`~repro.analysis.arnoldi.batched_tap_moments` call per stage
        and corner covers every sample and both transitions at once), so the
        cost per scenario is orders of magnitude below a per-sample
        :meth:`evaluate` loop.  A zero-variance model reproduces the nominal
        evaluation bit-for-bit: sampling returns multipliers of exactly 1.0
        and the arithmetic below mirrors the nominal path operation for
        operation.

        Only the analytical engines can be batched this way; the transient
        engine raises.  ``skew_limit_ps`` sets the yield threshold of the
        returned :class:`~repro.analysis.variation.YieldReport` (the
        ISPD'10-contest-style local skew limit of 7.5 ps by default).
        """
        if self.config.engine not in ("elmore", "arnoldi"):
            raise ValueError(
                "evaluate_yield requires an analytical engine ('elmore' or "
                "'arnoldi'); the transient engine cannot be batched across "
                "variation samples"
            )
        if samples < 1:
            raise ValueError("samples must be >= 1")
        if rng is None:
            # Deterministic by default: an omitted seed falls back to the
            # library-wide base seed rather than OS entropy.
            rng = derive_rng(seed, "evaluate-yield")
        self.yield_run_count += 1
        use_cache = self.config.incremental
        stages, keys, drivers = self._stages_and_keys(tree, use_cache)
        positions = np.array(
            [
                (tree.node(stage.driver_id).position.x, tree.node(stage.driver_id).position.y)
                for stage in stages
            ]
        )
        draws = model.sample(samples, rng, positions=positions)
        split = self._split_caps or model.perturbs_wire_cap
        moments = [
            self._stage_base_moments(tree, stage, key, split)
            for stage, key in zip(stages, keys)
        ]
        tap_flags: Dict[int, Tuple[bool, bool]] = {}
        for stage in stages:
            for tap in stage.taps:
                node = tree.node(tap)
                tap_flags[tap] = (node.is_sink, node.buffer is not None)

        per_corner = {
            corner.name: self._corner_yield(
                stages, moments, drivers, tap_flags, corner, draws, samples
            )
            for corner in self.corners
        }

        fast = per_corner[self._fast]
        slow = per_corner[self._slow]
        skew = np.maximum(
            fast["max"][RISE] - fast["min"][RISE], fast["max"][FALL] - fast["min"][FALL]
        )
        clr = np.maximum(
            slow["max"][RISE] - fast["min"][RISE], slow["max"][FALL] - fast["min"][FALL]
        )
        worst_slew = per_corner[self.corners[0].name]["slew"]
        for corner in self.corners[1:]:
            worst_slew = np.maximum(worst_slew, per_corner[corner.name]["slew"])
        return YieldReport(
            n_samples=samples,
            engine=self.config.engine,
            model=model.describe(),
            skew_limit_ps=skew_limit_ps,
            slew_limit_ps=self.config.slew_limit,
            fast_corner=self._fast,
            slow_corner=self._slow,
            skew_samples=skew,
            clr_samples=clr,
            worst_slew_samples=worst_slew,
        )

    def _corner_yield(
        self,
        stages: List[Stage],
        moments: List[BaseTapMoments],
        drivers: List[_Driver],
        tap_flags: Dict[int, Tuple[bool, bool]],
        corner: Corner,
        draws: VariationSamples,
        n: int,
    ) -> Dict:
        """Vectorized arrival/slew propagation of all samples at one corner.

        The sample axis replaces :meth:`_propagate_corner`'s scalars with
        length-``n`` arrays; the stage loop, inversion tracking and slew
        model are carried over verbatim (and in the same operation order, so
        unit multipliers keep bit parity with the nominal path).  Returns
        running per-sample sink-latency extrema per transition plus the
        per-sample worst tap slew.
        """
        cfg = self.config
        use_d2m = cfg.engine == "arnoldi"
        up_scale = corner.driver_scale * cfg.pull_up_factor
        down_scale = corner.driver_scale * cfg.pull_down_factor
        supply_mult = supply_driver_multiplier(corner.vdd, draws.vdd_shift)
        driver_mult = draws.driver * supply_mult

        # One batched moment pass per stage: rows are [rise x n, fall x n].
        stage_models: List[Tuple[np.ndarray, np.ndarray]] = []
        for index in range(len(stages)):
            stage_driver = driver_mult[:, index]
            d_rows = np.concatenate((up_scale * stage_driver, down_scale * stage_driver))
            r_rows = np.tile(corner.wire_res_scale * draws.wire_res[:, index], 2)
            w_rows = np.tile(corner.wire_cap_scale * draws.wire_cap[:, index], 2)
            m1, m2 = batched_tap_moments(moments[index], d_rows, r_rows, w_rows)
            stage_models.append(batched_delay_sigma(m1, m2, use_d2m=use_d2m))

        root_id = stages[0].driver_id
        max_lat = {t: np.full(n, -np.inf) for t in _TRANSITIONS}
        min_lat = {t: np.full(n, np.inf) for t in _TRANSITIONS}
        worst_slew = np.zeros(n)
        for launch in _TRANSITIONS:
            arrival_at: Dict[int, np.ndarray] = {root_id: np.zeros(n)}
            slew_at: Dict[int, np.ndarray] = {root_id: np.full(n, cfg.source_slew)}
            direction_at: Dict[int, str] = {root_id: launch}
            for index, (stage, buffer) in enumerate(zip(stages, drivers)):
                driver_id = stage.driver_id
                input_arrival = arrival_at[driver_id]
                input_slew = slew_at[driver_id]
                input_dir = direction_at[driver_id]
                if buffer is not None and buffer.inverting:
                    output_dir = FALL if input_dir == RISE else RISE
                else:
                    output_dir = input_dir
                gate_delay: Union[float, np.ndarray]
                if buffer is None:
                    drive_slew = input_slew
                    gate_delay = 0.0
                else:
                    drive_slew = cfg.buffer_slew_regeneration * input_slew
                    gate_delay = (
                        buffer.intrinsic_delay * (corner.driver_scale * driver_mult[:, index])
                        + cfg.slew_delay_factor * input_slew
                    )
                delay, sigma = stage_models[index]
                row0 = 0 if output_dir == RISE else n
                base_arrival = input_arrival + gate_delay
                drive_sq = drive_slew * drive_slew
                for column, tap in enumerate(moments[index].tap_ids):
                    tap_arrival = base_arrival + delay[row0 : row0 + n, column]
                    wire_slew = LN9 * sigma[row0 : row0 + n, column]
                    tap_slew_value = (wire_slew * wire_slew + drive_sq) ** 0.5
                    is_sink, has_buffer = tap_flags[tap]
                    np.maximum(worst_slew, tap_slew_value, out=worst_slew)
                    if is_sink:
                        np.maximum(max_lat[output_dir], tap_arrival, out=max_lat[output_dir])
                        np.minimum(min_lat[output_dir], tap_arrival, out=min_lat[output_dir])
                    if has_buffer:
                        arrival_at[tap] = tap_arrival
                        slew_at[tap] = tap_slew_value
                        direction_at[tap] = output_dir
        return {"max": max_lat, "min": min_lat, "slew": worst_slew}

    # ------------------------------------------------------------------
    # Stage bookkeeping
    # ------------------------------------------------------------------
    def _stages_and_keys(
        self, tree: ClockTree, use_cache: bool
    ) -> Tuple[List[Stage], List[Optional[_StageKey]], List[_Driver]]:
        if not use_cache:
            stages = extract_stages(tree)
            drivers = [tree.node(stage.driver_id).buffer for stage in stages]
            return stages, [None] * len(stages), drivers
        stages = self.cache.stage_list(tree)
        keys, drivers = self._stage_keys(tree, stages)
        return stages, keys, drivers

    def _stage_keys(
        self, tree: ClockTree, stages: List[Stage]
    ) -> Tuple[List[Optional[_StageKey]], List[_Driver]]:
        revisions = tree.node_revisions
        keys: List[Optional[_StageKey]] = []
        drivers: List[_Driver] = []
        for stage in stages:
            key, buffer = self._stage_key(tree, stage, revisions)
            keys.append(key)
            drivers.append(buffer)
        return keys, drivers

    def _stage_key(
        self, tree: ClockTree, stage: Stage, revisions: Dict[int, int]
    ) -> Tuple[_StageKey, _Driver]:
        driver_id = stage.driver_id
        buffer = tree.node(driver_id).buffer
        if buffer is None:
            # The source stage is driven through the source resistance, which
            # is not covered by any node revision.
            head: tuple = (driver_id, revisions[driver_id], tree.source_resistance)
        else:
            head = (driver_id, revisions[driver_id])
        return (head, tuple((edge, revisions[edge]) for edge in stage.edges)), buffer

    def _dirty_frontier(
        self, tree: ClockTree, keys: List[Optional[_StageKey]], topo: StageTopology
    ) -> Tuple[Optional[Set[int]], Optional[_PropagationState]]:
        """Stages to re-propagate, or (None, None) to force a full walk.

        The dirty set is the content-key mismatches against the last
        propagation snapshot, closed over downstream stages (a changed stage
        changes the input arrival/slew of everything below its taps).  The
        complement -- retained stages -- then provably has only retained
        ancestors, which is what makes fragment splicing bit-identical.
        """
        prop = self._prop
        if (
            prop is None
            or prop.structure_revision != tree.structure_revision
            or len(prop.keys) != len(keys)
        ):
            return None, None
        recompute: Set[int] = set()
        stack = [
            index
            for index, (old, new) in enumerate(zip(prop.keys, keys))
            if old != new
        ]
        while stack:
            index = stack.pop()
            if index in recompute:
                continue
            recompute.add(index)
            stack.extend(topo.children[index])
        return recompute, prop

    # ------------------------------------------------------------------
    # Analytical engines: batched per-stage tap models
    # ------------------------------------------------------------------
    def _tap_model(
        self, tree: ClockTree, stage: Stage, key: Optional[_StageKey]
    ) -> _TapModel:
        """Per-stage ``{(corner, transition): {tap: (delay, sigma)}}`` mapping.

        ``delay`` is the wire delay from the driver switching instant and
        ``sigma`` the intrinsic slew scale; both are independent of the input
        transition, which enters only in the final PERI combination during
        propagation -- that is what makes the cached model reusable no matter
        how upstream stages change.
        """
        if key is not None:
            cached = self.cache.tap_model(key)
            if cached is not None:
                return cached
        moments = self._stage_base_moments(tree, stage, key, self._split_caps, count=False)
        m1, m2 = batched_tap_moments(moments, *self._combo_scales)
        delay, sigma = batched_delay_sigma(
            m1, m2, use_d2m=(self.config.engine == "arnoldi")
        )
        model: _TapModel = {}
        for row, combo in enumerate(self._combos):
            delays = delay[row]
            sigmas = sigma[row]
            model[combo] = {
                tap: (delays[column], sigmas[column])
                for column, tap in enumerate(moments.tap_ids)
            }
        if key is not None:
            self.cache.store_tap_model(key, model)
        return model

    def _stage_base_moments(
        self,
        tree: ClockTree,
        stage: Stage,
        key: Optional[_StageKey],
        split: bool,
        count: bool = True,
    ) -> BaseTapMoments:
        """The stage's corner-independent moment reduction, cached by content.

        Shared by the per-corner tap models of :meth:`evaluate`, the Monte
        Carlo batches of :meth:`evaluate_yield` and the candidate batches of
        :meth:`evaluate_candidates`, so whichever runs first pays for the
        numpy reduction and the others reuse it for every stage whose RC
        content is unchanged.
        """
        cache_key = (key, split) if key is not None else None
        if cache_key is not None:
            cached = self.cache.base_moments(cache_key, count=count)
            if cached is not None:
                return cached
        base = build_base_stage_network(tree, stage, self.config.max_segment_length)
        moments = base_tap_moments(base, split_wire_load=split)
        if cache_key is not None:
            self.cache.store_base_moments(cache_key, moments)
        return moments

    def _corner_from_models(
        self,
        stages: List[Stage],
        models: List[Optional[_TapModel]],
        drivers: List[_Driver],
        tap_flags: Dict[int, Tuple[bool, bool]],
        corner: Corner,
        recompute: Optional[Set[int]] = None,
        prior: Optional[List[_StageFrag]] = None,
        collect: bool = False,
    ) -> Tuple[CornerTiming, Optional[List[_StageFrag]]]:
        def stage_timing(
            index: int, stage: Stage, output_dir: str, drive_slew: float
        ) -> Iterator[Tuple[int, float, float]]:
            model = models[index]
            assert model is not None  # retained stages are never re-timed
            drive_sq = drive_slew * drive_slew
            for tap, (delay, sigma) in model[(corner.name, output_dir)].items():
                wire_slew = LN9 * sigma
                yield tap, delay, (wire_slew * wire_slew + drive_sq) ** 0.5

        return self._propagate_corner(
            stages, drivers, tap_flags, corner, stage_timing, recompute, prior, collect
        )

    # ------------------------------------------------------------------
    # Transient (SPICE-substitute) engine
    # ------------------------------------------------------------------
    def _corner_transient(
        self,
        tree: ClockTree,
        stages: List[Stage],
        keys: List[Optional[_StageKey]],
        drivers: List[_Driver],
        tap_flags: Dict[int, Tuple[bool, bool]],
        corner: Corner,
        recompute: Optional[Set[int]] = None,
        prior: Optional[List[_StageFrag]] = None,
        collect: bool = False,
    ) -> Tuple[CornerTiming, Optional[List[_StageFrag]]]:
        def stage_timing(
            index: int, stage: Stage, output_dir: str, drive_slew: float
        ) -> List[Tuple[int, float, float]]:
            timing = self._transient_stage_timing(
                tree, stage, keys[index], corner, output_dir, drive_slew
            )
            return [(tap, timing.delay[tap], timing.slew[tap]) for tap in stage.taps]

        return self._propagate_corner(
            stages, drivers, tap_flags, corner, stage_timing, recompute, prior, collect
        )

    # ------------------------------------------------------------------
    # Shared arrival/slew propagation
    # ------------------------------------------------------------------
    def _propagate_corner(
        self,
        stages: List[Stage],
        drivers: List[_Driver],
        tap_flags: Dict[int, Tuple[bool, bool]],
        corner: Corner,
        stage_timing: _StageTimingFn,
        recompute: Optional[Set[int]] = None,
        prior: Optional[List[_StageFrag]] = None,
        collect: bool = False,
    ) -> Tuple[CornerTiming, Optional[List[_StageFrag]]]:
        """Propagate both launch transitions through the ordered stages.

        ``stage_timing(index, stage, output_dir, drive_slew)`` yields
        ``(tap, delay, slew)`` triples for one stage; everything else --
        inversion tracking, gate delay, slew regeneration, sink/buffer
        bookkeeping -- is engine-independent and lives only here.

        The walk is stage-major with both launch transitions carried side by
        side, so that a stage outside ``recompute`` can be skipped entirely:
        its fragment from ``prior`` (same content key, hence bit-identical
        inputs and outputs) is spliced into the result dicts and its
        downstream state re-seeded from the recorded outputs.  With
        ``recompute=None`` every stage is computed -- a full propagation.
        ``collect=True`` additionally returns the per-stage fragment list for
        the next dirty-region diff.
        """
        cfg = self.config
        root_id = stages[0].driver_id
        latency: Dict[int, Dict[str, float]] = {}
        slew: Dict[int, Dict[str, float]] = {}
        tap_slew: Dict[int, Dict[str, float]] = {}
        arrival_at: Dict[str, Dict[int, float]] = {
            launch: {root_id: 0.0} for launch in _TRANSITIONS
        }
        slew_at: Dict[str, Dict[int, float]] = {
            launch: {root_id: cfg.source_slew} for launch in _TRANSITIONS
        }
        direction_at: Dict[str, Dict[int, str]] = {
            launch: {root_id: launch} for launch in _TRANSITIONS
        }
        frags: Optional[List[_StageFrag]] = [] if collect else None
        for index, (stage, buffer) in enumerate(zip(stages, drivers)):
            if recompute is not None and index not in recompute:
                assert prior is not None
                frag = prior[index]
                latency.update(frag.latency)
                slew.update(frag.slew)
                tap_slew.update(frag.tap_slew)
                for launch in _TRANSITIONS:
                    arrivals = arrival_at[launch]
                    slews = slew_at[launch]
                    directions = direction_at[launch]
                    for tap, tap_arrival, tap_slew_value, output_dir in frag.outputs[
                        launch
                    ]:
                        arrivals[tap] = tap_arrival
                        slews[tap] = tap_slew_value
                        directions[tap] = output_dir
                if frags is not None:
                    frags.append(frag)
                continue
            frag_latency: Dict[int, Dict[str, float]] = {}
            frag_slew: Dict[int, Dict[str, float]] = {}
            frag_tap_slew: Dict[int, Dict[str, float]] = {}
            frag_outputs: Dict[str, List[Tuple[int, float, float, str]]] = {
                RISE: [],
                FALL: [],
            }
            driver_id = stage.driver_id
            for launch in _TRANSITIONS:
                input_arrival = arrival_at[launch][driver_id]
                input_slew = slew_at[launch][driver_id]
                input_dir = direction_at[launch][driver_id]
                if buffer is not None and buffer.inverting:
                    output_dir = FALL if input_dir == RISE else RISE
                else:
                    output_dir = input_dir
                if buffer is None:
                    drive_slew = input_slew
                    gate_delay = 0.0
                else:
                    drive_slew = cfg.buffer_slew_regeneration * input_slew
                    gate_delay = (
                        buffer.intrinsic_delay * corner.driver_scale
                        + cfg.slew_delay_factor * input_slew
                    )
                arrivals = arrival_at[launch]
                slews = slew_at[launch]
                directions = direction_at[launch]
                outputs = frag_outputs[launch]
                for tap, delay, tap_slew_value in stage_timing(
                    index, stage, output_dir, drive_slew
                ):
                    tap_arrival = input_arrival + gate_delay + delay
                    is_sink, has_buffer = tap_flags[tap]
                    frag_tap_slew.setdefault(tap, {})[output_dir] = tap_slew_value
                    if is_sink:
                        frag_latency.setdefault(tap, {})[output_dir] = tap_arrival
                        frag_slew.setdefault(tap, {})[output_dir] = tap_slew_value
                    if has_buffer:
                        arrivals[tap] = tap_arrival
                        slews[tap] = tap_slew_value
                        directions[tap] = output_dir
                        outputs.append((tap, tap_arrival, tap_slew_value, output_dir))
            latency.update(frag_latency)
            slew.update(frag_slew)
            tap_slew.update(frag_tap_slew)
            if frags is not None:
                frags.append(
                    _StageFrag(frag_latency, frag_slew, frag_tap_slew, frag_outputs)
                )
        timing = CornerTiming(corner=corner, latency=latency, slew=slew, tap_slew=tap_slew)
        return timing, frags

    def _transient_stage_timing(
        self,
        tree: ClockTree,
        stage: Stage,
        key: Optional[_StageKey],
        corner: Corner,
        output_dir: str,
        drive_slew: float,
    ) -> StageTiming:
        cfg = self.config
        timing_key: Optional[tuple] = None
        if key is not None:
            # The timing key embeds the raw drive_slew float on purpose: the
            # waveform analysis is a function of the exact input slew, and
            # quantizing the key would change results.  The cost is that any
            # upstream slew wiggle produces a fresh key for every downstream
            # stage ("float-key thrash") -- dirty-region propagation sidesteps
            # the repeated lookups for retained stages, and the measured hit
            # rates before/after are recorded by benchmarks/propagation_smoke.
            timing_key = (key, corner.name, output_dir, drive_slew)
            cached = self.cache.timing(timing_key)
            if cached is not None:
                return cached
        network: Optional[StageNetwork] = None
        network_key: Optional[tuple] = None
        if key is not None:
            network_key = (key, corner.name, output_dir)
            network = self.cache.network(network_key)
        if network is None:
            network = build_stage_network(
                tree,
                stage,
                corner=corner,
                max_segment_length=cfg.max_segment_length,
                rise=(output_dir == RISE),
                pull_up_factor=cfg.pull_up_factor,
                pull_down_factor=cfg.pull_down_factor,
            )
            if network_key is not None:
                self.cache.store_network(network_key, network)
        timing = transient_stage_timing(
            network, drive_slew, vdd=corner.vdd, config=cfg.solver
        )
        if timing_key is not None:
            self.cache.store_timing(timing_key, timing)
        return timing
