"""Timing analysis engines and the clock-network evaluator (SPICE substitute).

The package provides three interchangeable stage-analysis engines --
Elmore (+PERI slew), Arnoldi-style moment matching, and a transient RC
solver -- behind the single :class:`~repro.analysis.evaluator.ClockNetworkEvaluator`
interface used by every optimization pass and benchmark.
"""

from repro.analysis.corners import (
    Corner,
    default_corners,
    driver_scale_for_vdd,
    ispd09_corners,
    nominal_corner,
    supply_driver_multiplier,
)
from repro.analysis.evaluator import (
    ClockNetworkEvaluator,
    CornerTiming,
    EvaluationReport,
    EvaluatorConfig,
)
from repro.analysis.variation import (
    VariationModel,
    VariationSamples,
    YieldReport,
    default_variation_model,
)
from repro.analysis.rcnetwork import Stage, StageNetwork, build_stage_network, extract_stages
from repro.analysis.elmore import elmore_stage_timing, elmore_stage_delays, StageTiming
from repro.analysis.arnoldi import arnoldi_stage_timing, stage_moments
from repro.analysis.spice import TransientSolverConfig, transient_stage_timing

__all__ = [
    "Corner",
    "default_corners",
    "driver_scale_for_vdd",
    "ispd09_corners",
    "nominal_corner",
    "supply_driver_multiplier",
    "VariationModel",
    "VariationSamples",
    "YieldReport",
    "default_variation_model",
    "ClockNetworkEvaluator",
    "CornerTiming",
    "EvaluationReport",
    "EvaluatorConfig",
    "Stage",
    "StageNetwork",
    "build_stage_network",
    "extract_stages",
    "elmore_stage_timing",
    "elmore_stage_delays",
    "StageTiming",
    "arnoldi_stage_timing",
    "stage_moments",
    "TransientSolverConfig",
    "transient_stage_timing",
]
