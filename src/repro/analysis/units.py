"""Unit conventions shared by all timing engines.

The library uses the following numerical units everywhere:

=============  ==========================
quantity        unit
=============  ==========================
length          micrometre (um)
resistance      ohm
capacitance     femtofarad (fF)
time            picosecond (ps)
voltage         volt (V)
=============  ==========================

With these units an RC product ``R[ohm] * C[fF]`` equals ``R*C`` femtoseconds,
i.e. ``R*C*1e-3`` picoseconds; :data:`OHM_FF_TO_PS` captures that factor.  In
the transient solver the nodal equations are scaled consistently by expressing
conductances as ``1000/R`` (see :mod:`repro.analysis.spice`).
"""

OHM_FF_TO_PS = 1e-3
"""Conversion factor: (ohm x fF) -> picoseconds."""

CONDUCTANCE_SCALE = 1000.0
"""Numerical conductance for a resistor of R ohm when C is in fF and t in ps."""

LN9 = 2.1972245773362196
"""ln(9); the 10%-90% transition time of a single-pole response is ln(9)*tau."""

LN2 = 0.6931471805599453
"""ln(2); the 50% crossing of a single-pole response occurs at ln(2)*tau."""
