"""Process/voltage corners used for multi-corner clock evaluation.

The ISPD'09 contest evaluated every network at two supply voltages and scored
the *Clock Latency Range* (CLR): the difference between the greatest sink
latency at 1.0 V and the least sink latency at 1.2 V.  A corner in this
library scales the effective driver resistance (and intrinsic gate delay) to
model the supply dependence of transistor drive strength, and can also scale
wire parasitics to model interconnect process corners.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["Corner", "default_corners", "ispd09_corners", "nominal_corner"]


@dataclass(frozen=True)
class Corner:
    """A single evaluation corner.

    Attributes
    ----------
    name:
        Identifier, e.g. ``"fast_1.2V"``.
    vdd:
        Supply voltage in volts.
    driver_scale:
        Multiplier on buffer output resistance and intrinsic delay relative to
        the nominal (1.2 V) characterization.
    wire_res_scale, wire_cap_scale:
        Multipliers on wire parasitics (interconnect process corner).
    """

    name: str
    vdd: float
    driver_scale: float = 1.0
    wire_res_scale: float = 1.0
    wire_cap_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.vdd <= 0.0:
            raise ValueError("corner supply voltage must be positive")
        if min(self.driver_scale, self.wire_res_scale, self.wire_cap_scale) <= 0.0:
            raise ValueError("corner scale factors must be positive")


_NOMINAL_VDD = 1.2
_VTH = 0.3
_ALPHA = 1.1


def driver_scale_for_vdd(vdd: float, nominal_vdd: float = _NOMINAL_VDD) -> float:
    """Supply-voltage scaling of effective driver resistance.

    Uses the alpha-power-law approximation ``R ~ Vdd / (Vdd - Vth)^alpha``
    normalized to the nominal supply.  The constants are chosen so that a
    1.0 V supply (versus the 1.2 V nominal) slows the buffers by roughly 10%,
    which puts the resulting Clock Latency Range an order of magnitude above
    the post-optimization skew -- the regime the paper's tables exhibit --
    while keeping CLR in the tens of picoseconds for 500 ps-class latencies.
    """
    if vdd <= _VTH:
        raise ValueError(f"supply {vdd} V is below threshold {_VTH} V")

    def _r(v: float) -> float:
        return v / (v - _VTH) ** _ALPHA

    return _r(vdd) / _r(nominal_vdd)


def nominal_corner() -> Corner:
    """The 1.2 V corner used for nominal-skew optimization."""
    return Corner(name="nominal_1.2V", vdd=1.2, driver_scale=1.0)


def ispd09_corners() -> List[Corner]:
    """The two supply corners of the ISPD'09 contest (1.2 V fast, 1.0 V slow)."""
    return [
        Corner(name="fast_1.2V", vdd=1.2, driver_scale=driver_scale_for_vdd(1.2)),
        Corner(name="slow_1.0V", vdd=1.0, driver_scale=driver_scale_for_vdd(1.0)),
    ]


def default_corners() -> List[Corner]:
    """Default corner set: the ISPD'09 pair."""
    return ispd09_corners()
