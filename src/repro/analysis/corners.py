"""Process/voltage corners used for multi-corner clock evaluation.

The ISPD'09 contest evaluated every network at two supply voltages and scored
the *Clock Latency Range* (CLR): the difference between the greatest sink
latency at 1.0 V and the least sink latency at 1.2 V.  A corner in this
library scales the effective driver resistance (and intrinsic gate delay) to
model the supply dependence of transistor drive strength, and can also scale
wire parasitics to model interconnect process corners.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

import numpy as np

__all__ = [
    "Corner",
    "default_corners",
    "ispd09_corners",
    "nominal_corner",
    "driver_scale_for_vdd",
    "supply_driver_multiplier",
]


@dataclass(frozen=True)
class Corner:
    """A single evaluation corner.

    Attributes
    ----------
    name:
        Identifier, e.g. ``"fast_1.2V"``.
    vdd:
        Supply voltage in volts.
    driver_scale:
        Multiplier on buffer output resistance and intrinsic delay relative to
        the nominal (1.2 V) characterization.
    wire_res_scale, wire_cap_scale:
        Multipliers on wire parasitics (interconnect process corner).
    """

    name: str
    vdd: float
    driver_scale: float = 1.0
    wire_res_scale: float = 1.0
    wire_cap_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.vdd <= 0.0:
            raise ValueError("corner supply voltage must be positive")
        if min(self.driver_scale, self.wire_res_scale, self.wire_cap_scale) <= 0.0:
            raise ValueError("corner scale factors must be positive")

    def scaled(
        self,
        voltage: Optional[float] = None,
        wire: Optional[float] = None,
        driver: Optional[float] = None,
        name: Optional[str] = None,
    ) -> "Corner":
        """A derived corner with adjusted supply and/or parasitic scaling.

        ``voltage`` is the new *absolute* supply in volts; the driver scale is
        re-derived through the alpha-power supply law while preserving any
        non-supply drive factor already baked into this corner (so
        ``fast.scaled(voltage=slow.vdd)`` reproduces the slow corner's driver
        scale exactly).  ``wire`` multiplies both wire parasitic scales
        (an interconnect process shift) and ``driver`` applies an extra
        multiplier on drive resistance (a transistor process shift).
        """
        changes: dict = {}
        suffix: List[str] = []
        if voltage is not None:
            process_factor = self.driver_scale / driver_scale_for_vdd(self.vdd)
            changes["vdd"] = voltage
            changes["driver_scale"] = driver_scale_for_vdd(voltage) * process_factor
            suffix.append(f"{voltage:g}V")
        if driver is not None:
            changes["driver_scale"] = changes.get("driver_scale", self.driver_scale) * driver
            suffix.append(f"drv{driver:g}")
        if wire is not None:
            changes["wire_res_scale"] = self.wire_res_scale * wire
            changes["wire_cap_scale"] = self.wire_cap_scale * wire
            suffix.append(f"wire{wire:g}")
        if name is not None:
            changes["name"] = name
        elif suffix:
            changes["name"] = f"{self.name}~{'_'.join(suffix)}"
        return replace(self, **changes)


_NOMINAL_VDD = 1.2
_VTH = 0.3
_ALPHA = 1.1


def driver_scale_for_vdd(vdd: float, nominal_vdd: float = _NOMINAL_VDD) -> float:
    """Supply-voltage scaling of effective driver resistance.

    Uses the alpha-power-law approximation ``R ~ Vdd / (Vdd - Vth)^alpha``
    normalized to the nominal supply.  The constants are chosen so that a
    1.0 V supply (versus the 1.2 V nominal) slows the buffers by roughly 10%,
    which puts the resulting Clock Latency Range an order of magnitude above
    the post-optimization skew -- the regime the paper's tables exhibit --
    while keeping CLR in the tens of picoseconds for 500 ps-class latencies.
    """
    if vdd <= _VTH:
        raise ValueError(f"supply {vdd} V is below threshold {_VTH} V")

    def _r(v: float) -> float:
        return v / (v - _VTH) ** _ALPHA

    return _r(vdd) / _r(nominal_vdd)


def supply_driver_multiplier(vdd: float, vdd_shift: np.ndarray) -> np.ndarray:
    """Vectorized driver-resistance multiplier for per-stage supply shifts.

    ``vdd_shift`` holds additive supply perturbations (volts) around the
    corner supply ``vdd``; the result is the elementwise ratio
    ``R(vdd + shift) / R(vdd)`` of the alpha-power supply law, clamped so a
    large negative draw cannot push the supply to the threshold.  A shift of
    exactly ``0.0`` returns exactly ``1.0`` (bit-for-bit), which is what
    makes zero-variance Monte Carlo reproduce nominal evaluation.
    """
    v = np.maximum(vdd + np.asarray(vdd_shift, dtype=float), _VTH + 0.05)
    scaled = v / (v - _VTH) ** _ALPHA
    return scaled / (vdd / (vdd - _VTH) ** _ALPHA)


def nominal_corner() -> Corner:
    """The 1.2 V corner used for nominal-skew optimization."""
    return Corner(name="nominal_1.2V", vdd=1.2, driver_scale=1.0)


def ispd09_corners() -> List[Corner]:
    """The two supply corners of the ISPD'09 contest (1.2 V fast, 1.0 V slow)."""
    return [
        Corner(name="fast_1.2V", vdd=1.2, driver_scale=driver_scale_for_vdd(1.2)),
        Corner(name="slow_1.0V", vdd=1.0, driver_scale=driver_scale_for_vdd(1.0)),
    ]


def default_corners() -> List[Corner]:
    """Default corner set: the ISPD'09 pair."""
    return ispd09_corners()
