"""Transient RC simulation of clock-tree stages (the SPICE substitute).

The ISPD'09 contest scored networks with ngSPICE/HSPICE.  Neither is available
here, so this module provides the closest pure-Python equivalent that
exercises the same code paths in the optimization flow: a nodal transient
solver for each buffer stage.

Model
-----
* The stage driver (clock source or inverter) is a Thevenin source: an ideal
  ramp from 0 to Vdd with a transition time derived from the driver's input
  slew, in series with the driver's effective output resistance.
* Wires are chains of lumped RC segments (built by
  :mod:`repro.analysis.rcnetwork`), so resistive shielding, far-end slew
  degradation and the effect of wire sizing/snaking are all captured.
* The nodal equations ``C dv/dt + G v = G_drv * Vs(t)`` are integrated with
  the trapezoidal rule at a fixed time step; with a fixed step the system
  matrix is factorized once per stage and reused for every time point, which
  keeps the solver fast enough to sit inside Contango's optimization loop.
* Delay is measured from the 50% crossing of the source ramp to the 50%
  crossing of each tap; slew is the 10%-90% transition time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np
from scipy.linalg import lu_factor, lu_solve

from repro.analysis.elmore import StageTiming, _node_elmore_delays
from repro.analysis.rcnetwork import StageNetwork
from repro.analysis.units import CONDUCTANCE_SCALE

__all__ = ["TransientSolverConfig", "transient_stage_timing"]


@dataclass(frozen=True)
class TransientSolverConfig:
    """Numerical settings of the transient solver.

    Attributes
    ----------
    steps:
        Number of time points per simulation window.
    horizon_factor:
        The simulated window is ``ramp_time + horizon_factor * max Elmore``.
    min_ramp_time:
        Lower bound (ps) on the driver ramp, protecting against a zero input
        slew at the clock source.
    ramp_slew_fraction:
        The driver ramp time is ``ramp_slew_fraction * input_slew`` -- the
        10-90% input transition maps to a full 0-100% ramp slightly longer
        than the measured slew.
    """

    steps: int = 600
    horizon_factor: float = 6.0
    min_ramp_time: float = 5.0
    ramp_slew_fraction: float = 1.25

    def __post_init__(self) -> None:
        if self.steps < 10:
            raise ValueError("transient solver needs at least 10 time steps")
        if self.horizon_factor <= 1.0:
            raise ValueError("horizon_factor must exceed 1")


def transient_stage_timing(
    network: StageNetwork,
    input_slew: float,
    vdd: float = 1.2,
    config: Optional[TransientSolverConfig] = None,
) -> StageTiming:
    """Simulate one stage and return per-tap delay and slew in ps.

    Delay at a tap is the 50%-to-50% time from the Thevenin ramp midpoint to
    the tap voltage; slew is the tap's 10%-90% transition time.  Both are
    independent of ``vdd`` for a linear RC network, but ``vdd`` is accepted so
    that threshold levels are expressed in real volts (useful when inspecting
    waveforms in tests).
    """
    cfg = config or TransientSolverConfig()
    n = network.size
    elmore = _node_elmore_delays(network)
    max_elmore = max(elmore) if elmore else 1.0
    ramp_time = max(cfg.min_ramp_time, cfg.ramp_slew_fraction * input_slew)
    horizon = ramp_time + cfg.horizon_factor * max(max_elmore, 1e-3)
    dt = horizon / cfg.steps

    caps = np.asarray(network.capacitance, dtype=float)
    conductance = np.zeros((n, n), dtype=float)
    g_drv = CONDUCTANCE_SCALE / network.driver_resistance
    conductance[0, 0] += g_drv
    for idx in range(1, n):
        par = network.parent[idx]
        g = CONDUCTANCE_SCALE / network.resistance[idx]
        conductance[idx, idx] += g
        conductance[par, par] += g
        conductance[idx, par] -= g
        conductance[par, idx] -= g

    cap_matrix = np.diag(caps)
    # Trapezoidal integration:  (C/dt + G/2) v_{k+1} = (C/dt - G/2) v_k + (b_k + b_{k+1})/2
    lhs = cap_matrix / dt + conductance / 2.0
    rhs_matrix = cap_matrix / dt - conductance / 2.0
    lu, piv = lu_factor(lhs)

    times = np.linspace(0.0, horizon, cfg.steps + 1)
    source = np.clip(times / ramp_time, 0.0, 1.0) * vdd

    # Fold the factorization into an explicit state recursion
    #   v_{k+1} = A v_k + b * (u_k + u_{k+1}) / 2
    # so that each time step is a single matrix-vector product.
    propagate = lu_solve((lu, piv), rhs_matrix)
    injection = lu_solve((lu, piv), np.eye(n)[:, 0]) * g_drv

    voltages = np.zeros((cfg.steps + 1, n), dtype=float)
    v = np.zeros(n, dtype=float)
    for k in range(cfg.steps):
        v = propagate @ v + injection * ((source[k] + source[k + 1]) / 2.0)
        voltages[k + 1] = v

    source_mid = 0.5 * ramp_time
    delay_map: Dict[int, float] = {}
    slew_map: Dict[int, float] = {}
    for tree_id, idx in network.tap_index.items():
        wave = voltages[:, idx]
        t50 = _crossing_time(times, wave, 0.5 * vdd)
        t10 = _crossing_time(times, wave, 0.1 * vdd)
        t90 = _crossing_time(times, wave, 0.9 * vdd)
        if t50 is None or t10 is None or t90 is None:
            # The window did not capture the full transition; fall back to the
            # Elmore estimate so that the optimization loop can keep going and
            # re-evaluate once the tree improves.
            tau = elmore[idx]
            delay_map[tree_id] = tau
            slew_map[tree_id] = 2.2 * tau + input_slew
            continue
        delay_map[tree_id] = t50 - source_mid
        slew_map[tree_id] = t90 - t10
    return StageTiming(delay=delay_map, slew=slew_map)


def _crossing_time(times: np.ndarray, wave: np.ndarray, level: float) -> Optional[float]:
    """First time the rising waveform crosses ``level`` (linear interpolation)."""
    above = np.nonzero(wave >= level)[0]
    if len(above) == 0:
        return None
    k = above[0]
    if k == 0:
        return float(times[0])
    v0, v1 = wave[k - 1], wave[k]
    t0, t1 = times[k - 1], times[k]
    if v1 == v0:
        return float(t1)
    frac = (level - v0) / (v1 - v0)
    return float(t0 + frac * (t1 - t0))
