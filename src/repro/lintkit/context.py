"""Shared static-analysis context: parsed modules and the project import graph.

:class:`ModuleContext` is everything the rules need about one source file --
the AST with parent links, an import-alias resolution table (``np.random`` ->
``numpy.random``), the dotted module name derived from the package layout on
disk, and the ``# repro: lint-ok[...]`` suppression lines.

:class:`LintProject` spans one lint run: it indexes every parsed module by
dotted name and resolves the intra-project import graph, which is what lets
reachability-scoped rules (wallclock-in-fingerprint-path) ask "is this module
transitively imported by the fingerprint computation?" without any runtime
imports.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["ModuleContext", "LintProject", "module_name_for"]

#: ``# repro: lint-ok`` or ``# repro: lint-ok[rule-a,rule-b]``; trailing
#: justification text after the bracket is encouraged and ignored.
_SUPPRESSION = re.compile(r"#\s*repro:\s*lint-ok(?:\[([^\]]*)\])?")

#: Matches every suppressible rule (a bare ``# repro: lint-ok``).
_ALL_RULES = "*"


def module_name_for(path: Path) -> str:
    """Dotted module name of ``path``, derived from ``__init__.py`` packages.

    Walks up the directory tree as long as each parent is a package, so
    ``src/repro/store/fingerprint.py`` names ``repro.store.fingerprint``
    regardless of where the lint run was rooted.  Files outside any package
    (test fixtures, scripts) keep their bare stem.
    """
    parts: List[str] = []
    if path.stem != "__init__":
        parts.append(path.stem)
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts))


class ModuleContext:
    """One parsed source file plus the resolution tables the rules share."""

    def __init__(self, path: Path, source: str, module: Optional[str] = None) -> None:
        self.path = path
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.module: str = module if module is not None else module_name_for(path)
        self.tree: ast.Module = ast.parse(source, filename=str(path))
        #: Child AST node -> parent AST node, for rules that need enclosure
        #: (registry-drift checks whether a constructor call sits inside a
        #: ``register_*`` call).
        self.parents: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node
        #: Local binding -> fully qualified imported name (``np`` ->
        #: ``numpy``, ``derive_rng`` -> ``repro.seeding.derive_rng``).
        self.imports: Dict[str, str] = {}
        #: Absolute names of every module this file imports (used for the
        #: project import graph; includes ``from X import Y`` targets since
        #: ``Y`` may itself be a module).
        self.imported_modules: Set[str] = set()
        self._collect_imports()
        self._suppressions: Dict[int, FrozenSet[str]] = self._collect_suppressions()

    # ------------------------------------------------------------------
    # Imports
    # ------------------------------------------------------------------
    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imported_modules.add(alias.name)
                    if alias.asname is not None:
                        self.imports[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".", 1)[0]
                        self.imports[root] = root
            elif isinstance(node, ast.ImportFrom):
                base = self._absolute_import_base(node)
                if base is None:
                    continue
                self.imported_modules.add(base)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    qualified = f"{base}.{alias.name}"
                    self.imported_modules.add(qualified)
                    self.imports[alias.asname or alias.name] = qualified

    def _absolute_import_base(self, node: ast.ImportFrom) -> Optional[str]:
        """Resolve a (possibly relative) ``from`` clause to an absolute name."""
        if node.level == 0:
            return node.module
        # Relative import: climb from this module's package.
        parts = self.module.split(".") if self.module else []
        if self.path.stem != "__init__" and parts:
            parts = parts[:-1]
        climb = node.level - 1
        if climb > len(parts):
            return node.module  # over-relative; fall back to the bare name
        if climb:
            parts = parts[:-climb]
        if node.module:
            parts = parts + node.module.split(".")
        return ".".join(parts) if parts else node.module

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Fully qualified name of a ``Name``/``Attribute`` chain, if imported.

        ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
        when the module did ``import numpy as np``; names bound locally (not
        by an import) resolve to ``None``, which keeps call-site rules from
        guessing about local variables.
        """
        attrs: List[str] = []
        while isinstance(node, ast.Attribute):
            attrs.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.imports.get(node.id)
        if base is None:
            return None
        return ".".join([base, *reversed(attrs)]) if attrs else base

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self.parents.get(node)

    # ------------------------------------------------------------------
    # Suppressions
    # ------------------------------------------------------------------
    def _collect_suppressions(self) -> Dict[int, FrozenSet[str]]:
        suppressions: Dict[int, FrozenSet[str]] = {}
        for line_number, text in enumerate(self.lines, 1):
            match = _SUPPRESSION.search(text)
            if match is None:
                continue
            body = match.group(1)
            if body is None:
                rules = frozenset({_ALL_RULES})
            else:
                rules = frozenset(
                    token.strip() for token in body.split(",") if token.strip()
                )
                if not rules:
                    rules = frozenset({_ALL_RULES})
            suppressions[line_number] = rules
        return suppressions

    def suppressed(self, line: int, rule: str) -> bool:
        """True when ``rule`` is silenced on ``line``.

        A suppression comment applies to its own line and -- when the comment
        stands alone -- to the line directly below it, so long statements can
        carry the annotation above themselves.
        """
        for candidate in (line, line - 1):
            rules = self._suppressions.get(candidate)
            if rules is None:
                continue
            if candidate == line - 1 and not self._comment_only(candidate):
                continue
            if _ALL_RULES in rules or rule in rules:
                return True
        return False

    def _comment_only(self, line: int) -> bool:
        text = self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        return text.startswith("#")


class LintProject:
    """All modules of one lint run plus their intra-project import graph."""

    def __init__(self, contexts: Sequence[ModuleContext]) -> None:
        self.contexts: Tuple[ModuleContext, ...] = tuple(contexts)
        self.modules: Dict[str, ModuleContext] = {
            ctx.module: ctx for ctx in contexts if ctx.module
        }
        self._edges: Optional[Dict[str, Set[str]]] = None

    # ------------------------------------------------------------------
    # Import graph
    # ------------------------------------------------------------------
    def _project_module_of(self, imported: str) -> Optional[str]:
        """Map an imported name onto a module in this project, if any.

        ``from repro.cts import tree`` records both ``repro.cts`` and
        ``repro.cts.tree``; ``from repro.seeding import derive_rng`` records
        ``repro.seeding.derive_rng``, whose longest module prefix is
        ``repro.seeding``.
        """
        name = imported
        while name:
            if name in self.modules:
                return name
            if "." not in name:
                return None
            name = name.rsplit(".", 1)[0]
        return None

    @property
    def import_edges(self) -> Dict[str, Set[str]]:
        """Module name -> set of project modules it imports (lazily built)."""
        if self._edges is None:
            edges: Dict[str, Set[str]] = {}
            for ctx in self.contexts:
                if not ctx.module:
                    continue
                targets: Set[str] = set()
                for imported in ctx.imported_modules:
                    resolved = self._project_module_of(imported)
                    if resolved is not None and resolved != ctx.module:
                        targets.add(resolved)
                edges[ctx.module] = targets
            self._edges = edges
        return self._edges

    def reachable_from(self, roots: Iterable[str]) -> Set[str]:
        """Project modules transitively imported by ``roots`` (roots included).

        Roots not present in the project are ignored, so reachability-scoped
        rules degrade gracefully when only a sub-tree is linted.
        """
        edges = self.import_edges
        seen: Set[str] = set()
        stack: List[str] = [root for root in roots if root in self.modules]
        while stack:
            module = stack.pop()
            if module in seen:
                continue
            seen.add(module)
            stack.extend(edges.get(module, ()) - seen)
        return seen
