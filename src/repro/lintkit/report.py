"""Reporters: human-readable text and version-stable JSON.

The JSON report is the CI artifact, so it is deliberately boring: a fixed
``schema`` number, no timestamps, no absolute environment detail, findings
pre-sorted by the engine.  Two runs over an unchanged tree must emit
byte-identical documents -- the lint gate itself obeys the same
reproducibility contract as the run store.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.lintkit.engine import LintResult

__all__ = ["render_text", "render_json", "JSON_SCHEMA_VERSION"]

#: Bump only on breaking shape changes; consumers key on this.
JSON_SCHEMA_VERSION = 1


def render_text(result: LintResult) -> str:
    """One ``path:line:col: severity rule: message`` line per finding."""
    lines: List[str] = [
        f"{f.path}:{f.line}:{f.col}: {f.severity} [{f.rule}] {f.message}"
        for f in result.findings
    ]
    summary = (
        f"{result.files_checked} files checked, "
        f"{len(result.rules_run)} rules, "
        f"{len(result.errors)} errors, {len(result.warnings)} warnings"
    )
    lines.append(summary)
    return "\n".join(lines) + "\n"


def render_json(result: LintResult) -> str:
    """Deterministic JSON document (sorted keys, trailing newline)."""
    document: Dict[str, Any] = {
        "schema": JSON_SCHEMA_VERSION,
        "tool": "repro-lintkit",
        "files_checked": result.files_checked,
        "rules_run": list(result.rules_run),
        "summary": {
            "errors": len(result.errors),
            "warnings": len(result.warnings),
        },
        "findings": [f.to_record() for f in result.findings],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
