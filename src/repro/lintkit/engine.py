"""The lint engine: file collection, rule execution, suppression filtering.

:func:`lint_paths` is the one entry point the CLI and the tests share -- it
collects ``.py`` files deterministically (sorted, ``__pycache__`` skipped),
parses each into a :class:`~repro.lintkit.context.ModuleContext`, builds the
cross-module :class:`~repro.lintkit.context.LintProject`, runs the selected
rules and returns findings in the canonical (path, line, col, rule) order.
Files that fail to parse surface as ``parse-error`` findings rather than
aborting the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.lintkit import rules as _rules  # noqa: F401  (registers the rules)
from repro.lintkit.base import (
    Finding,
    LintRule,
    Severity,
    available_rules,
    resolve_rules,
)
from repro.lintkit.context import LintProject, ModuleContext

__all__ = ["LintSettings", "LintResult", "collect_files", "lint_paths"]

#: Pseudo-rule name used for files the parser rejects.
PARSE_ERROR_RULE = "parse-error"


@dataclass
class LintSettings:
    """Per-run configuration: rule selection, severities and options."""

    #: Rule names to run; ``None`` means every registered rule.
    select: Optional[List[str]] = None
    #: Rule names to drop after selection.
    ignore: List[str] = field(default_factory=list)
    #: rule name -> "warning"/"error", overriding the rule's default.
    severity_overrides: Dict[str, str] = field(default_factory=dict)
    #: rule name -> option mapping merged over the rule's ``defaults``.
    rule_options: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def resolve(self) -> List[LintRule]:
        names = list(self.select) if self.select is not None else available_rules()
        names = [name for name in names if name not in set(self.ignore)]
        return resolve_rules(names)

    def options_for(self, rule: LintRule) -> Mapping[str, Any]:
        merged: Dict[str, Any] = dict(rule.defaults)
        merged.update(self.rule_options.get(rule.name, {}))
        override = self.severity_overrides.get(rule.name)
        if override is not None:
            merged["severity"] = Severity(override).value
        return merged


@dataclass
class LintResult:
    """Everything one run produced, ready for a reporter."""

    findings: List[Finding]
    files_checked: int
    rules_run: List[str]

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == Severity.ERROR.value]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == Severity.WARNING.value]


def collect_files(paths: Iterable[Path]) -> List[Path]:
    """Every ``.py`` file under ``paths``, deterministically ordered.

    Directories are walked recursively (``__pycache__`` pruned); explicit
    file arguments are taken as-is.  Missing paths raise so a typo'd CI
    invocation cannot silently lint nothing.
    """
    collected: List[Path] = []
    for path in paths:
        if path.is_file():
            collected.append(path)
        elif path.is_dir():
            collected.extend(
                candidate
                for candidate in path.rglob("*.py")
                if "__pycache__" not in candidate.parts
            )
        else:
            raise FileNotFoundError(f"lint path does not exist: {path}")
    return sorted(set(collected))


def _parse_contexts(
    files: Iterable[Path],
) -> Tuple[List[ModuleContext], List[Finding]]:
    contexts: List[ModuleContext] = []
    failures: List[Finding] = []
    for path in files:
        source = path.read_text(encoding="utf-8")
        try:
            contexts.append(ModuleContext(path, source))
        except SyntaxError as exc:
            failures.append(
                Finding(
                    path=str(path),
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule=PARSE_ERROR_RULE,
                    message=f"cannot parse: {exc.msg}",
                    severity=Severity.ERROR.value,
                )
            )
    return contexts, failures


def lint_paths(
    paths: Iterable[Path], settings: Optional[LintSettings] = None
) -> LintResult:
    """Run the configured rules over ``paths`` and return sorted findings."""
    settings = settings if settings is not None else LintSettings()
    rules = settings.resolve()
    files = collect_files(Path(p) for p in paths)
    contexts, findings = _parse_contexts(files)
    project = LintProject(contexts)
    for ctx in contexts:
        for rule in rules:
            options = settings.options_for(rule)
            for finding in rule.check(ctx, project, options):
                if ctx.suppressed(finding.line, finding.rule):
                    continue
                findings.append(finding)
    findings.sort()
    return LintResult(
        findings=findings,
        files_checked=len(files),
        rules_run=[rule.name for rule in rules],
    )
