"""repro.lintkit: AST-based invariant linter for the repro codebase.

Machine-checks the invariants the reproducibility story rests on -- seed
discipline, journalled tree mutation, fingerprint purity, pool
picklability, registry completeness and the typed-record contract.  Run it
as ``repro lint src/`` or through :func:`lint_paths`; silence intentional
violations with ``# repro: lint-ok[rule-name]  -- justification``.
"""

from repro.lintkit.base import (
    RULE_REGISTRY,
    Finding,
    LintRule,
    Severity,
    available_rules,
    register_rule,
    resolve_rules,
)
from repro.lintkit.context import LintProject, ModuleContext, module_name_for
from repro.lintkit.engine import (
    LintResult,
    LintSettings,
    collect_files,
    lint_paths,
)
from repro.lintkit.report import JSON_SCHEMA_VERSION, render_json, render_text

__all__ = [
    "Finding",
    "LintRule",
    "Severity",
    "RULE_REGISTRY",
    "register_rule",
    "available_rules",
    "resolve_rules",
    "ModuleContext",
    "LintProject",
    "module_name_for",
    "LintSettings",
    "LintResult",
    "collect_files",
    "lint_paths",
    "render_text",
    "render_json",
    "JSON_SCHEMA_VERSION",
]
