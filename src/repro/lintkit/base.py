"""Core lintkit types: findings, severities, rules and the rule registry.

The registry mirrors the :data:`repro.core.pipeline.PASS_REGISTRY` idiom --
rule classes register themselves under their ``name`` via the
:func:`register_rule` class decorator, and consumers (the engine, the CLI,
the reporters) resolve rules by name.  Each rule carries a default severity
and a ``defaults`` option mapping; both can be overridden per run through
:class:`repro.lintkit.engine.LintSettings` without touching the rule class.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Mapping, Type

if TYPE_CHECKING:  # import cycle: context needs Finding for parse errors
    from repro.lintkit.context import LintProject, ModuleContext

__all__ = [
    "Severity",
    "Finding",
    "LintRule",
    "RULE_REGISTRY",
    "register_rule",
    "available_rules",
    "resolve_rules",
]


class Severity(enum.Enum):
    """How a finding affects the exit code: errors gate, warnings inform."""

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Field order doubles as the deterministic sort order of every report
    (path, then line, then column, then rule), so repeated runs over an
    unchanged tree emit byte-identical output.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: str = Severity.ERROR.value

    def to_record(self) -> Dict[str, Any]:
        """The JSON-reporter shape of this finding."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }


class LintRule:
    """One named, registrable invariant check.

    Subclasses set ``name`` (the registry key), ``description`` (one line,
    shown by ``repro lint --list-rules``), optionally ``default_severity``
    and ``defaults`` -- the rule's option mapping, overridable per run via
    :attr:`repro.lintkit.engine.LintSettings.rule_options`.  ``check``
    yields :class:`Finding` objects for one module; the shared
    :class:`~repro.lintkit.context.LintProject` gives rules cross-module
    context (import graph, reachability) when they need it.
    """

    name: str = ""
    description: str = ""
    default_severity: Severity = Severity.ERROR
    defaults: Mapping[str, Any] = {}

    def check(
        self,
        ctx: "ModuleContext",
        project: "LintProject",
        options: Mapping[str, Any],
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        ctx: "ModuleContext",
        line: int,
        col: int,
        message: str,
        severity: Severity,
    ) -> Finding:
        """Build one finding anchored in ``ctx`` with this rule's name."""
        return Finding(
            path=str(ctx.path),
            line=line,
            col=col,
            rule=self.name,
            message=message,
            severity=severity.value,
        )


#: Registered rule classes, keyed by rule name.
RULE_REGISTRY: Dict[str, Type[LintRule]] = {}


def register_rule(rule_cls: Type[LintRule]) -> Type[LintRule]:
    """Register a rule class under its ``name`` (class-decorator style).

    Raises on a missing or duplicate name so a typo cannot silently shadow
    an existing rule -- the same contract as ``register_pass``.
    """
    name = rule_cls.name
    if not name:
        raise ValueError("a lint rule needs a non-empty 'name' to register")
    if name in RULE_REGISTRY:
        raise ValueError(f"a lint rule named {name!r} is already registered")
    RULE_REGISTRY[name] = rule_cls
    return rule_cls


def available_rules() -> List[str]:
    """Sorted names currently in the registry."""
    return sorted(RULE_REGISTRY)


def resolve_rules(names: List[str]) -> List[LintRule]:
    """Instantiate rules by name; unknown names raise with the valid set."""
    rules: List[LintRule] = []
    for name in names:
        rule_cls = RULE_REGISTRY.get(name)
        if rule_cls is None:
            raise KeyError(
                f"unknown lint rule {name!r}; registered: {available_rules()}"
            )
        rules.append(rule_cls())
    return rules
