"""The domain rules: machine-checked invariants of the repro codebase.

Each rule encodes one invariant the correctness story rests on -- seed
discipline (:mod:`repro.seeding`), journalled tree mutation
(:mod:`repro.cts.tree`), fingerprint purity (:mod:`repro.store.fingerprint`),
process-pool picklability, registry completeness, and the typed-record
contract of :mod:`repro.api.records`.  Rules are registered under kebab-case
names and configured through their ``defaults`` mapping; intentional
violations are annotated in the source with ``# repro: lint-ok[rule-name]``.
"""

from __future__ import annotations

import ast
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.lintkit.base import Finding, LintRule, Severity, register_rule
from repro.lintkit.context import LintProject, ModuleContext

__all__ = [
    "UnseededRngRule",
    "WallclockInFingerprintPathRule",
    "UnjournaledMutationRule",
    "PoolUnpicklableRule",
    "FingerprintCompareFieldRule",
    "RegistryDriftRule",
    "PerfCaseRegisteredRule",
    "RecordRoundtripSymmetryRule",
    "BareDictRecordRule",
    "UntimedWallclockRule",
    "BlockingInAsyncRule",
]


def _option_names(options: Mapping[str, Any], key: str) -> Tuple[str, ...]:
    """A tuple-of-strings option (accepts any iterable of strings)."""
    value = options.get(key, ())
    return tuple(str(item) for item in value)


def _in_allowed_module(ctx: ModuleContext, options: Mapping[str, Any]) -> bool:
    return ctx.module in _option_names(options, "allow_modules")


def _severity(rule: LintRule, options: Mapping[str, Any]) -> Severity:
    raw = options.get("severity")
    return Severity(raw) if isinstance(raw, str) else rule.default_severity


# ----------------------------------------------------------------------
# 1. unseeded-rng
# ----------------------------------------------------------------------
@register_rule
class UnseededRngRule(LintRule):
    """Every RNG must derive from :mod:`repro.seeding`.

    A direct ``random.Random()``, ``random.<fn>()``, ``np.random.*()`` or
    ``default_rng()`` creates a stream the ``--seed`` machinery cannot
    reproduce or isolate per job, silently breaking bit-identical goldens.
    """

    name = "unseeded-rng"
    description = (
        "RNG constructed outside repro.seeding (use derive_rng/derive_seed)"
    )
    defaults: Mapping[str, Any] = {"allow_modules": ("repro.seeding",)}

    def check(
        self,
        ctx: ModuleContext,
        project: LintProject,
        options: Mapping[str, Any],
    ) -> Iterator[Finding]:
        if _in_allowed_module(ctx, options):
            return
        severity = _severity(self, options)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.resolve(node.func)
            if qualified is None:
                continue
            if qualified == "random.Random" or qualified.startswith("random."):
                source = qualified
            elif qualified.startswith("numpy.random."):
                source = qualified
            else:
                continue
            yield self.finding(
                ctx,
                node.lineno,
                node.col_offset,
                f"direct RNG use {source}(); derive deterministic streams "
                "via repro.seeding.derive_rng/derive_seed",
                severity,
            )


# ----------------------------------------------------------------------
# 2. wallclock-in-fingerprint-path
# ----------------------------------------------------------------------
@register_rule
class WallclockInFingerprintPathRule(LintRule):
    """No wall-clock/UUID input may reach the fingerprint computation.

    The run store's content addresses and the canonical instance
    serialization must be pure functions of their inputs; anything time- or
    uuid-dependent in a module transitively imported by the fingerprint
    roots would make equal jobs hash differently across runs.
    """

    name = "wallclock-in-fingerprint-path"
    description = (
        "time/uuid call in a module transitively imported by the "
        "fingerprint computation"
    )
    defaults: Mapping[str, Any] = {
        "roots": ("repro.store.fingerprint", "repro.workloads.format"),
        "forbidden": (
            "time.time",
            "time.time_ns",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
            "uuid.uuid1",
            "uuid.uuid4",
        ),
    }

    def check(
        self,
        ctx: ModuleContext,
        project: LintProject,
        options: Mapping[str, Any],
    ) -> Iterator[Finding]:
        if not ctx.module:
            return
        roots = _option_names(options, "roots")
        if ctx.module not in project.reachable_from(roots):
            return
        forbidden = frozenset(_option_names(options, "forbidden"))
        severity = _severity(self, options)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.resolve(node.func)
            if qualified is None or qualified not in forbidden:
                continue
            yield self.finding(
                ctx,
                node.lineno,
                node.col_offset,
                f"{qualified}() in fingerprint-feeding module {ctx.module}; "
                "content addresses must be pure functions of their inputs",
                severity,
            )


# ----------------------------------------------------------------------
# 3. unjournaled-mutation
# ----------------------------------------------------------------------
@register_rule
class UnjournaledMutationRule(LintRule):
    """Tree-node state must change through the journaling mutator APIs.

    A bare ``node.wire_type = ...`` outside :mod:`repro.cts.tree` bypasses
    revision bumps and checkpoint journaling, so the evaluator's stage cache
    serves stale results and IVC rollback restores the wrong state.  Code
    doing bespoke surgery must call ``tree.journal_node(...)`` first (and
    ``tree.touch(...)`` after), which this rule recognises.
    """

    name = "unjournaled-mutation"
    description = (
        "direct tree-node attribute write outside the journaling mutators"
    )
    defaults: Mapping[str, Any] = {
        "allow_modules": ("repro.cts.tree",),
        "attrs": (
            "buffer",
            "wire_type",
            "snake_length",
            "route",
            "position",
            "parent",
            "children",
            "sink",
        ),
        #: The rule only applies to modules that actually work with the
        #: journaled tree; unrelated classes may reuse attribute names.
        "tree_modules": ("repro.cts.tree",),
    }

    def check(
        self,
        ctx: ModuleContext,
        project: LintProject,
        options: Mapping[str, Any],
    ) -> Iterator[Finding]:
        if _in_allowed_module(ctx, options):
            return
        tree_modules = set(_option_names(options, "tree_modules"))
        if not any(
            imported == module or imported.startswith(module + ".")
            for imported in ctx.imported_modules
            for module in tree_modules
        ):
            return
        attrs = frozenset(_option_names(options, "attrs"))
        severity = _severity(self, options)
        journal_lines = self._journal_call_lines(ctx)
        for node in ast.walk(ctx.tree):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if not isinstance(target, ast.Attribute) or target.attr not in attrs:
                    continue
                receiver = target.value
                if isinstance(receiver, ast.Name) and receiver.id in ("self", "cls"):
                    continue
                if self._journaled_before(ctx, node, journal_lines):
                    continue
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"direct write to .{target.attr} bypasses the journaling "
                    "mutators of repro.cts.tree.ClockTree; use the mutator "
                    "APIs or call journal_node()/touch() around the edit",
                    severity,
                )

    @staticmethod
    def _journal_call_lines(ctx: ModuleContext) -> List[int]:
        lines: List[int] = []
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "journal_node"
            ):
                lines.append(node.lineno)
        return lines

    def _journaled_before(
        self, ctx: ModuleContext, assign: ast.AST, journal_lines: Sequence[int]
    ) -> bool:
        """True when a ``journal_node`` call precedes the write in its function."""
        scope = self._enclosing_function(ctx, assign)
        if scope is None:
            return False
        lineno = getattr(assign, "lineno", 0)
        end = getattr(scope, "end_lineno", None) or lineno
        return any(scope.lineno <= line <= end and line < lineno for line in journal_lines)

    @staticmethod
    def _enclosing_function(
        ctx: ModuleContext, node: ast.AST
    ) -> Optional[ast.FunctionDef]:
        current = ctx.parent(node)
        while current is not None:
            if isinstance(current, ast.FunctionDef):
                return current
            current = ctx.parent(current)
        return None


# ----------------------------------------------------------------------
# 4. pool-unpicklable
# ----------------------------------------------------------------------
@register_rule
class PoolUnpicklableRule(LintRule):
    """Workers handed to the process pool must be picklable by reference.

    Lambdas and nested (closure) functions cannot cross the
    ``ProcessPoolExecutor`` boundary; they fail only at dispatch time, deep
    inside a batch.  Flag them at the ``submit``/``BatchRunner``/
    ``dispatch_jobs`` call site instead.
    """

    name = "pool-unpicklable"
    description = (
        "lambda/nested function handed to ProcessPoolExecutor.submit or a "
        "batch-runner worker slot"
    )
    defaults: Mapping[str, Any] = {
        "runner_calls": ("BatchRunner", "dispatch_jobs"),
        "worker_kwarg": "worker",
    }

    def check(
        self,
        ctx: ModuleContext,
        project: LintProject,
        options: Mapping[str, Any],
    ) -> Iterator[Finding]:
        severity = _severity(self, options)
        runner_calls = frozenset(_option_names(options, "runner_calls"))
        worker_kwarg = str(options.get("worker_kwarg", "worker"))
        nested = self._nested_callables(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            candidates = self._worker_candidates(ctx, node, runner_calls, worker_kwarg)
            for candidate in candidates:
                problem = self._unpicklable(candidate, nested)
                if problem is None:
                    continue
                yield self.finding(
                    ctx,
                    candidate.lineno,
                    candidate.col_offset,
                    f"{problem} cannot be pickled into a worker process; "
                    "pass a module-level function instead",
                    severity,
                )

    def _worker_candidates(
        self,
        ctx: ModuleContext,
        call: ast.Call,
        runner_calls: FrozenSet[str],
        worker_kwarg: str,
    ) -> List[ast.expr]:
        """The argument expressions that must be picklable for this call."""
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr == "submit":
            # pool.submit(fn, *args): the callable and every payload arg
            # cross the process boundary.
            return list(call.args) + [kw.value for kw in call.keywords]
        name: Optional[str] = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in runner_calls:
            candidates = [
                kw.value for kw in call.keywords if kw.arg == worker_kwarg
            ]
            if len(call.args) >= 3:  # positional worker slot of both APIs
                candidates.append(call.args[2])
            return candidates
        return []

    @staticmethod
    def _nested_callables(ctx: ModuleContext) -> Set[str]:
        """Names bound to nested functions or lambdas anywhere in the module."""
        names: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                parent = ctx.parent(node)
                while parent is not None:
                    if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        names.add(node.name)
                        break
                    parent = ctx.parent(parent)
            elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    @staticmethod
    def _unpicklable(candidate: ast.expr, nested: Set[str]) -> Optional[str]:
        if isinstance(candidate, ast.Lambda):
            return "a lambda"
        if isinstance(candidate, ast.Name) and candidate.id in nested:
            return f"nested function {candidate.id!r}"
        return None


# ----------------------------------------------------------------------
# 5. fingerprint-compare-field
# ----------------------------------------------------------------------
@register_rule
class FingerprintCompareFieldRule(LintRule):
    """``compare=False`` dataclass fields must follow the cache conventions.

    Non-compare fields are invisible to ``repro.store.fingerprint`` digests,
    so they must be derived state only: constructible without a caller-
    supplied value (``init=False`` or a default), underscore-named, and
    never serialized by ``to_record()`` -- otherwise two records that digest
    equally could serialize differently.
    """

    name = "fingerprint-compare-field"
    description = (
        "compare=False dataclass field violating the derived-state "
        "conventions (init/default, underscore name, no to_record use)"
    )
    defaults: Mapping[str, Any] = {}

    def check(
        self,
        ctx: ModuleContext,
        project: LintProject,
        options: Mapping[str, Any],
    ) -> Iterator[Finding]:
        severity = _severity(self, options)
        for class_node in ast.walk(ctx.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            if not self._is_dataclass(ctx, class_node):
                continue
            to_record_reads = self._self_attribute_reads(class_node, "to_record")
            for statement in class_node.body:
                if not isinstance(statement, ast.AnnAssign):
                    continue
                if not isinstance(statement.target, ast.Name):
                    continue
                field_call = statement.value
                if not isinstance(field_call, ast.Call):
                    continue
                callee = ctx.resolve(field_call.func)
                callee_name = callee or (
                    field_call.func.id
                    if isinstance(field_call.func, ast.Name)
                    else ""
                )
                if callee_name not in ("field", "dataclasses.field"):
                    continue
                keywords = {
                    kw.arg: kw.value for kw in field_call.keywords if kw.arg
                }
                compare = keywords.get("compare")
                if not (
                    isinstance(compare, ast.Constant) and compare.value is False
                ):
                    continue
                name = statement.target.id
                init = keywords.get("init")
                non_init = isinstance(init, ast.Constant) and init.value is False
                has_default = "default" in keywords or "default_factory" in keywords
                if not (non_init or has_default):
                    yield self.finding(
                        ctx,
                        statement.lineno,
                        statement.col_offset,
                        f"compare=False field {name!r} must set init=False or "
                        "provide a default: derived state cannot be a "
                        "required constructor input",
                        severity,
                    )
                if not name.startswith("_"):
                    yield self.finding(
                        ctx,
                        statement.lineno,
                        statement.col_offset,
                        f"compare=False field {name!r} should be underscore-"
                        "named: it is derived state, not part of the "
                        "record's identity",
                        severity,
                    )
                if name in to_record_reads:
                    yield self.finding(
                        ctx,
                        statement.lineno,
                        statement.col_offset,
                        f"compare=False field {name!r} is serialized by "
                        "to_record(); records that digest equally must "
                        "serialize equally",
                        severity,
                    )

    @staticmethod
    def _is_dataclass(ctx: ModuleContext, class_node: ast.ClassDef) -> bool:
        for decorator in class_node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            resolved = ctx.resolve(target)
            if resolved in ("dataclasses.dataclass",):
                return True
            if isinstance(target, ast.Name) and target.id == "dataclass":
                return True
        return False

    @staticmethod
    def _self_attribute_reads(class_node: ast.ClassDef, method: str) -> Set[str]:
        reads: Set[str] = set()
        for statement in class_node.body:
            if not isinstance(statement, ast.FunctionDef) or statement.name != method:
                continue
            for node in ast.walk(statement):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                ):
                    reads.add(node.attr)
        return reads


# ----------------------------------------------------------------------
# 6. registry-drift
# ----------------------------------------------------------------------
@register_rule
class RegistryDriftRule(LintRule):
    """Every concrete pass/family definition must reach its registry.

    An :class:`~repro.core.pipeline.OptimizationPass` subclass with a
    ``name`` that is never passed to ``register_pass`` (or a
    :class:`~repro.scenarios.base.ScenarioFamily` never handed to
    ``register_family``) is dead weight the CLI and pipelines cannot see --
    usually a forgotten decorator.
    """

    name = "registry-drift"
    description = (
        "OptimizationPass subclass / ScenarioFamily instance never registered"
    )
    defaults: Mapping[str, Any] = {
        #: base class name -> required registrar function name
        "subclass_registrars": {"OptimizationPass": "register_pass"},
        "instance_registrars": {"ScenarioFamily": "register_family"},
    }

    def check(
        self,
        ctx: ModuleContext,
        project: LintProject,
        options: Mapping[str, Any],
    ) -> Iterator[Finding]:
        severity = _severity(self, options)
        subclass_map = dict(options.get("subclass_registrars", {}))
        instance_map = dict(options.get("instance_registrars", {}))
        registered_names = self._registrar_argument_names(
            ctx, set(subclass_map.values()) | set(instance_map.values())
        )
        yield from self._check_subclasses(
            ctx, subclass_map, registered_names, severity
        )
        yield from self._check_instances(
            ctx, instance_map, registered_names, severity
        )

    # -- shared helpers -------------------------------------------------
    @staticmethod
    def _callable_name(ctx: ModuleContext, node: ast.expr) -> Optional[str]:
        """The terminal name of a Name/Attribute reference (``a.b.c`` -> c)."""
        resolved = ctx.resolve(node)
        if resolved is not None:
            return resolved.rsplit(".", 1)[-1]
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return None

    def _registrar_argument_names(
        self, ctx: ModuleContext, registrars: Set[str]
    ) -> Set[str]:
        """Names passed (as ``Name`` args) to any registrar call in the module."""
        names: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if self._callable_name(ctx, node.func) not in registrars:
                continue
            for arg in node.args:
                if isinstance(arg, ast.Name):
                    names.add(arg.id)
        return names

    # -- subclass-style registries (OptimizationPass) -------------------
    def _check_subclasses(
        self,
        ctx: ModuleContext,
        subclass_map: Dict[str, str],
        registered_names: Set[str],
        severity: Severity,
    ) -> Iterator[Finding]:
        if not subclass_map:
            return
        # Local subclasses count as bases too (pass hierarchies).
        base_names: Set[str] = set(subclass_map)
        local_subclasses: Dict[str, ast.ClassDef] = {}
        changed = True
        while changed:
            changed = False
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                if node.name in local_subclasses:
                    continue
                for base in node.bases:
                    if self._callable_name(ctx, base) in base_names:
                        local_subclasses[node.name] = node
                        base_names.add(node.name)
                        changed = True
                        break
        for class_node in local_subclasses.values():
            registrar = self._registrar_for(ctx, class_node, subclass_map)
            if registrar is None:
                continue
            if not self._has_concrete_name(class_node):
                continue  # abstract intermediate: registration needs a name
            if self._decorated_with(ctx, class_node, registrar):
                continue
            if class_node.name in registered_names:
                continue
            yield self.finding(
                ctx,
                class_node.lineno,
                class_node.col_offset,
                f"class {class_node.name} defines a registrable name but is "
                f"never passed to {registrar}(); pipelines and the CLI "
                "cannot see it",
                severity,
            )

    def _registrar_for(
        self,
        ctx: ModuleContext,
        class_node: ast.ClassDef,
        subclass_map: Dict[str, str],
    ) -> Optional[str]:
        """The registrar this class must reach (single-registry codebases)."""
        del ctx, class_node
        # All subclass-style registries share one registrar in this codebase;
        # extendable to per-base lookups when a second registry appears.
        return next(iter(subclass_map.values()), None)

    @staticmethod
    def _has_concrete_name(class_node: ast.ClassDef) -> bool:
        for statement in class_node.body:
            if (
                isinstance(statement, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "name"
                    for t in statement.targets
                )
                and isinstance(statement.value, ast.Constant)
                and statement.value.value
            ):
                return True
        return False

    def _decorated_with(
        self, ctx: ModuleContext, class_node: ast.ClassDef, registrar: str
    ) -> bool:
        for decorator in class_node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            if self._callable_name(ctx, target) == registrar:
                return True
        return False

    # -- instance-style registries (ScenarioFamily) ---------------------
    def _check_instances(
        self,
        ctx: ModuleContext,
        instance_map: Dict[str, str],
        registered_names: Set[str],
        severity: Severity,
    ) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            constructed = self._callable_name(ctx, node.func)
            if constructed not in instance_map:
                continue
            if ctx.resolve(node.func) is None and not self._defined_elsewhere(
                ctx, constructed
            ):
                continue  # local class of the same name, not the registry type
            registrar = instance_map[constructed]
            if self._inside_registrar_call(ctx, node, registrar):
                continue
            assigned = self._assigned_name(ctx, node)
            if assigned is not None and assigned in registered_names:
                continue
            yield self.finding(
                ctx,
                node.lineno,
                node.col_offset,
                f"{constructed}(...) instance is never passed to "
                f"{registrar}(); it is unreachable by spec strings and "
                "sweeps",
                severity,
            )

    @staticmethod
    def _defined_elsewhere(ctx: ModuleContext, name: Optional[str]) -> bool:
        """True when ``name`` is *not* a class defined in this module."""
        if name is None:
            return False
        return not any(
            isinstance(node, ast.ClassDef) and node.name == name
            for node in ast.walk(ctx.tree)
        )

    def _inside_registrar_call(
        self, ctx: ModuleContext, node: ast.AST, registrar: str
    ) -> bool:
        current = ctx.parent(node)
        while current is not None:
            if isinstance(current, ast.Call) and self._callable_name(
                ctx, current.func
            ) == registrar:
                return True
            current = ctx.parent(current)
        return False

    @staticmethod
    def _assigned_name(ctx: ModuleContext, node: ast.AST) -> Optional[str]:
        parent = ctx.parent(node)
        if isinstance(parent, ast.Assign):
            for target in parent.targets:
                if isinstance(target, ast.Name):
                    return target.id
        return None


# ----------------------------------------------------------------------
# 6b. perfcase-registered
# ----------------------------------------------------------------------
@register_rule
class PerfCaseRegisteredRule(RegistryDriftRule):
    """Every concrete :class:`~repro.perf.case.PerfCase` must reach the registry.

    A benchmark case with a concrete ``name`` that is never passed to
    ``register_case`` silently drops out of ``repro perf run`` -- the
    performance ledger stops tracking it and the CI counter gate can no
    longer notice it regressing.  Same machinery as ``registry-drift``,
    scoped to the perf-case registry.
    """

    name = "perfcase-registered"
    description = "concrete PerfCase subclass never passed to register_case"
    defaults: Mapping[str, Any] = {
        "subclass_registrars": {"PerfCase": "register_case"},
        "instance_registrars": {},
    }


# ----------------------------------------------------------------------
# 7. record-roundtrip-symmetry
# ----------------------------------------------------------------------
@register_rule
class RecordRoundtripSymmetryRule(LintRule):
    """``to_record``/``from_record`` pairs must read and write the same keys.

    A key emitted by ``to_record()`` that ``from_record()`` never reads (or
    vice versa) silently drops data across the parse/serialize round trip --
    exactly the drift the bit-identical legacy-record goldens exist to
    prevent.  Literal keys are compared; a side using dynamic access (field
    loops, ``record[name]``) is treated as open and not held against the
    other side.
    """

    name = "record-roundtrip-symmetry"
    description = "to_record()/from_record() literal key sets disagree"
    defaults: Mapping[str, Any] = {}

    def check(
        self,
        ctx: ModuleContext,
        project: LintProject,
        options: Mapping[str, Any],
    ) -> Iterator[Finding]:
        severity = _severity(self, options)
        for class_node in ast.walk(ctx.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            to_def = self._method(class_node, "to_record")
            from_def = self._method(class_node, "from_record")
            if to_def is None or from_def is None:
                continue
            to_keys, to_dynamic = self._written_keys(to_def)
            from_keys, from_dynamic = self._read_keys(from_def)
            if not from_dynamic:
                for key in sorted(to_keys - from_keys):
                    yield self.finding(
                        ctx,
                        to_def.lineno,
                        to_def.col_offset,
                        f"{class_node.name}.to_record() writes key {key!r} "
                        "that from_record() never reads; the round trip "
                        "drops it",
                        severity,
                    )
            if not to_dynamic:
                for key in sorted(from_keys - to_keys):
                    yield self.finding(
                        ctx,
                        from_def.lineno,
                        from_def.col_offset,
                        f"{class_node.name}.from_record() reads key {key!r} "
                        "that to_record() never writes; serialized records "
                        "can never carry it",
                        severity,
                    )

    @staticmethod
    def _method(class_node: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
        for statement in class_node.body:
            if isinstance(statement, ast.FunctionDef) and statement.name == name:
                return statement
        return None

    @staticmethod
    def _written_keys(func: ast.FunctionDef) -> Tuple[Set[str], bool]:
        keys: Set[str] = set()
        dynamic = False
        for node in ast.walk(func):
            if isinstance(node, ast.Dict):
                for key in node.keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        keys.add(key.value)
                    else:
                        dynamic = True
            elif isinstance(node, ast.DictComp):
                dynamic = True
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        slice_node = target.slice
                        if isinstance(slice_node, ast.Constant) and isinstance(
                            slice_node.value, str
                        ):
                            keys.add(slice_node.value)
                        else:
                            dynamic = True
        return keys, dynamic

    @staticmethod
    def _read_keys(func: ast.FunctionDef) -> Tuple[Set[str], bool]:
        keys: Set[str] = set()
        dynamic = False
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "get"
                and node.args
            ):
                first = node.args[0]
                if isinstance(first, ast.Constant) and isinstance(first.value, str):
                    keys.add(first.value)
                else:
                    dynamic = True
            elif isinstance(node, ast.Subscript) and isinstance(
                node.ctx, ast.Load
            ):
                slice_node = node.slice
                if isinstance(slice_node, ast.Constant) and isinstance(
                    slice_node.value, str
                ):
                    keys.add(slice_node.value)
        return keys, dynamic


# ----------------------------------------------------------------------
# 8. bare-dict-record
# ----------------------------------------------------------------------
@register_rule
class BareDictRecordRule(LintRule):
    """Job-result records must go through the typed :mod:`repro.api.records`.

    A hand-rolled dict carrying the record signature keys re-creates the
    cross-module string-key drift PR 5 eliminated; produce a
    ``RunRecord``/``McRecord``/``ErrorRecord`` and call ``to_record()``.
    """

    name = "bare-dict-record"
    description = (
        "hand-rolled result-record dict bypassing the repro.api.records "
        "schemas"
    )
    defaults: Mapping[str, Any] = {
        "allow_modules": ("repro.api.records",),
        "signatures": (
            ("job", "instance", "flow", "engine"),
            ("job", "error"),
        ),
    }

    def check(
        self,
        ctx: ModuleContext,
        project: LintProject,
        options: Mapping[str, Any],
    ) -> Iterator[Finding]:
        if _in_allowed_module(ctx, options):
            return
        severity = _severity(self, options)
        signatures = [
            frozenset(str(key) for key in signature)
            for signature in options.get("signatures", ())
        ]
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Dict):
                continue
            literal_keys = {
                key.value
                for key in node.keys
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
            }
            matched = next(
                (s for s in signatures if s <= literal_keys), None
            )
            if matched is None:
                continue
            yield self.finding(
                ctx,
                node.lineno,
                node.col_offset,
                "dict literal carries the job-record signature keys "
                f"({', '.join(sorted(matched))}); build a typed "
                "repro.api.records record and serialize via to_record()",
                severity,
            )


# ----------------------------------------------------------------------
# 9. untimed-wallclock
# ----------------------------------------------------------------------
@register_rule
class UntimedWallclockRule(LintRule):
    """Timing measurements must flow through :mod:`repro.obs`, not raw timers.

    A bare ``time.perf_counter()`` produces a number that never reaches the
    trace artifact, the ``TraceSummary`` on records, or ``repro profile`` --
    an invisible measurement the observability layer cannot aggregate or
    quarantine from deterministic outputs.  Wrap the region in
    ``tracer.span(...)`` instead; the few legitimate raw-timer sites (batch
    wall-clock totals reported on records, the tracer's own clock) carry a
    ``# repro: lint-ok[untimed-wallclock]`` annotation.
    """

    name = "untimed-wallclock"
    description = (
        "raw monotonic-timer call outside repro.obs (use tracer spans)"
    )
    defaults: Mapping[str, Any] = {
        "allow_modules": (
            "repro.obs",
            "repro.obs.trace",
            "repro.obs.metrics",
        ),
        #: Path components that exempt a file wholesale (benchmark harnesses
        #: measure overhead of the tracer itself, so they need raw timers).
        "allow_path_parts": ("benchmarks",),
        "forbidden": (
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.monotonic",
            "time.monotonic_ns",
        ),
    }

    def check(
        self,
        ctx: ModuleContext,
        project: LintProject,
        options: Mapping[str, Any],
    ) -> Iterator[Finding]:
        if _in_allowed_module(ctx, options):
            return
        allowed_parts = set(_option_names(options, "allow_path_parts"))
        if allowed_parts.intersection(ctx.path.parts):
            return
        forbidden = frozenset(_option_names(options, "forbidden"))
        severity = _severity(self, options)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.resolve(node.func)
            if qualified is None or qualified not in forbidden:
                continue
            yield self.finding(
                ctx,
                node.lineno,
                node.col_offset,
                f"raw timer {qualified}() outside repro.obs; measure the "
                "region with tracer.span(...) so the timing reaches trace "
                "artifacts and repro profile",
                severity,
            )


# ----------------------------------------------------------------------
# 10. blocking-in-async
# ----------------------------------------------------------------------
@register_rule
class BlockingInAsyncRule(LintRule):
    """No synchronous waiting inside ``async def`` bodies.

    One blocking call on the event loop stalls *every* client of the serving
    layer at once: ``time.sleep`` freezes the loop outright, and
    ``Future.result()`` / ``concurrent.futures.wait`` /
    ``Executor.shutdown`` park it behind pool work that may itself need the
    loop to progress (deadlock, not just latency).  Async code must await
    instead -- ``asyncio.sleep``, ``asyncio.wrap_future``, or a
    ``run_in_executor`` bridge for genuinely blocking sections; the few
    sanctioned bridge sites carry a ``# repro: lint-ok[blocking-in-async]``
    annotation.  Nested plain ``def`` bodies are exempt (they are the
    functions a bridge executes *off* the loop), as is any call that is
    directly awaited.
    """

    name = "blocking-in-async"
    description = (
        "blocking wait (time.sleep / Future.result / pool wait) inside async def"
    )
    defaults: Mapping[str, Any] = {
        "forbidden": (
            "time.sleep",
            "concurrent.futures.wait",
            "concurrent.futures.as_completed",
        ),
        #: Method names whose bare-attribute calls block on pool machinery.
        "blocking_methods": ("result", "shutdown"),
    }

    @staticmethod
    def _async_body(func: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
        """Nodes executing in ``func``'s async context (not nested functions)."""
        stack: List[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # a new function scope runs outside this coroutine
            stack.extend(ast.iter_child_nodes(node))

    def check(
        self,
        ctx: ModuleContext,
        project: LintProject,
        options: Mapping[str, Any],
    ) -> Iterator[Finding]:
        forbidden = frozenset(_option_names(options, "forbidden"))
        methods = frozenset(_option_names(options, "blocking_methods"))
        severity = _severity(self, options)
        for func in ast.walk(ctx.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            for node in self._async_body(func):
                if not isinstance(node, ast.Call):
                    continue
                if isinstance(ctx.parents.get(node), ast.Await):
                    continue  # directly awaited -> not a synchronous wait
                qualified = ctx.resolve(node.func)
                if qualified is not None and qualified in forbidden:
                    blocking = f"{qualified}()"
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in methods
                ):
                    blocking = f".{node.func.attr}()"
                else:
                    continue
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"blocking call {blocking} inside async def "
                    f"{func.name!r}; await it off-loop (asyncio.sleep, "
                    "wrap_future, or a run_in_executor bridge)",
                    severity,
                )
