"""The ``repro`` command line (also reachable as ``python -m repro``).

Four subcommands over the :mod:`repro.runner` batch engine:

* ``repro run`` -- expand an instance x flow x engine matrix into jobs, fan
  them across ``--jobs`` worker processes, stream one JSON record per job
  into ``--output-dir``, and print a Table IV-style summary;
* ``repro mc`` -- Monte Carlo variation sweeps: synthesize each instance x
  flow cell, then evaluate its skew yield under ``--samples`` randomized
  supply/process scenarios (batched through the vectorized moment path) with
  a per-job seeded RNG; ``--gated`` switches synthesis to the
  variation-aware pipeline (p95-skew-gated IVC rounds);
* ``repro bench`` -- the runner's own performance smoke: a fixed 4-job
  matrix timed at ``--jobs 1`` and ``--jobs 4``, with the wall-clocks and
  speedup written to ``BENCH_runner.json`` so parallel scaling is tracked
  across PRs;
* ``repro table`` -- re-render saved per-job JSON records as Table IV (and,
  with ``--stages``, per-run Table III stage tables).

Examples::

    python -m repro run --instance ti:200 --instance ispd09:ispd09f22:0.2 \
        --flow contango --flow unoptimized_dme --jobs 4 --output-dir results
    python -m repro run --instance ti:500 --pipeline initial,tbsz,twsz
    python -m repro mc --instance ti:200 --samples 1000 --seed 7 \
        --family correlated --jobs 4 --output-dir mc-results
    python -m repro mc --instance ti:200 --samples 500 --gated
    python -m repro bench --output BENCH_runner.json
    python -m repro table --input results --stages
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.variation import SAMPLING_FAMILIES
from repro.core import available_passes
from repro.runner import (
    BatchRunner,
    JobSpec,
    McJobSpec,
    available_flows,
    run_mc_job_guarded,
    table_iii,
    table_iv,
    table_mc,
)

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Contango reproduction batch runner (DATE'10 clock-network synthesis)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run an instance x flow x engine job matrix")
    run.add_argument(
        "--instance",
        action="append",
        metavar="SPEC",
        help="instance spec (repeatable, required unless --list-passes): "
        "ti:<sinks>, ispd09:<name>[:<scale>], file:<path>",
    )
    run.add_argument(
        "--flow",
        action="append",
        metavar="NAME",
        help=f"flow to run (repeatable); default contango; one of {available_flows()}",
    )
    run.add_argument(
        "--engine",
        action="append",
        metavar="NAME",
        help="evaluation engine (repeatable); default arnoldi (also: spice, elmore)",
    )
    run.add_argument(
        "--pipeline",
        metavar="P1,P2,...",
        help="comma-separated pass-registry names overriding the default "
        "Contango sequence (see 'repro run --list-passes')",
    )
    run.add_argument("--seed", type=int, help="TI-generator seed override")
    run.add_argument("--jobs", type=int, default=1, help="worker processes (default 1)")
    run.add_argument(
        "--output-dir",
        metavar="DIR",
        help="write one <job>.json per completed job into DIR (streamed)",
    )
    run.add_argument(
        "--summary-json",
        metavar="FILE",
        help="write the whole batch (records + wall-clock) as one JSON file",
    )
    run.add_argument(
        "--list-passes",
        action="store_true",
        help="print the registered optimization passes and exit",
    )

    mc = sub.add_parser(
        "mc", help="Monte Carlo skew-yield sweep over an instance x flow x samples matrix"
    )
    mc.add_argument(
        "--instance",
        action="append",
        metavar="SPEC",
        help="instance spec (repeatable): ti:<sinks>, ispd09:<name>[:<scale>], file:<path>",
    )
    mc.add_argument(
        "--flow",
        action="append",
        metavar="NAME",
        help=f"flow to synthesize with (repeatable); default contango; one of {available_flows()}",
    )
    mc.add_argument(
        "--engine",
        default="arnoldi",
        choices=["arnoldi", "elmore"],
        help="analytical evaluation engine used for synthesis and MC (default arnoldi)",
    )
    mc.add_argument(
        "--samples",
        action="append",
        type=int,
        metavar="N",
        help="Monte Carlo scenario count (repeatable for a sample-count sweep); default 1000",
    )
    mc.add_argument(
        "--family",
        default="independent",
        choices=list(SAMPLING_FAMILIES),
        help="variation sampling family (default independent)",
    )
    mc.add_argument(
        "--seed", type=int, default=7,
        help="base seed; per-job generators derive from it deterministically (default 7)",
    )
    mc.add_argument(
        "--skew-limit", type=float, default=7.5, metavar="PS",
        help="skew limit (ps) defining yield (default 7.5, the ISPD'10-style target)",
    )
    mc.add_argument(
        "--gated",
        action="store_true",
        help="synthesize with the variation-aware pipeline (p95-skew-gated IVC "
        "rounds); the gate checks each round with --gate-samples scenarios, "
        "not --samples",
    )
    mc.add_argument(
        "--gate-samples", type=int, metavar="N",
        help="scenario count per gate check during --gated synthesis "
        "(default: the FlowConfig default of 128; the final reported sweep "
        "always uses --samples)",
    )
    mc.add_argument(
        "--pipeline",
        metavar="P1,P2,...",
        help="explicit pass-registry pipeline override (see 'repro run --list-passes')",
    )
    mc.add_argument("--jobs", type=int, default=1, help="worker processes (default 1)")
    mc.add_argument(
        "--output-dir",
        metavar="DIR",
        help="write one <job>.json per completed job into DIR (streamed)",
    )
    mc.add_argument(
        "--summary-json",
        metavar="FILE",
        help="write the whole batch (records + wall-clock) as one JSON file",
    )

    bench = sub.add_parser(
        "bench", help="time a fixed 4-job matrix at --jobs 1 vs --jobs 4"
    )
    bench.add_argument("--sinks", type=int, default=200, help="TI instance size (default 200)")
    bench.add_argument("--matrix", type=int, default=4, help="jobs in the matrix (default 4)")
    bench.add_argument("--workers", type=int, default=4, help="parallel worker count (default 4)")
    bench.add_argument(
        "--output", default="BENCH_runner.json", metavar="FILE",
        help="where to write the speedup record (default BENCH_runner.json)",
    )

    table = sub.add_parser("table", help="render saved per-job JSON as Table IV / III")
    table.add_argument(
        "--input", required=True, metavar="DIR_OR_FILE",
        help="a directory of per-job *.json files, or one such file",
    )
    table.add_argument(
        "--stages", action="store_true", help="also print each run's Table III stage table"
    )
    return parser


# ----------------------------------------------------------------------
def _cmd_run(args: argparse.Namespace) -> int:
    if args.list_passes:
        # Importing the baselines registers their synthesis passes too.
        import repro.baselines  # noqa: F401

        print("\n".join(available_passes()))
        return 0
    if not args.instance:
        print("repro run: at least one --instance is required", file=sys.stderr)
        return 2
    flows = args.flow or ["contango"]
    engines = args.engine or ["arnoldi"]
    pipeline = tuple(p.strip() for p in args.pipeline.split(",") if p.strip()) if args.pipeline else None
    jobs = [
        JobSpec(instance=instance, flow=flow, engine=engine, pipeline=pipeline, seed=args.seed)
        for instance in args.instance
        for flow in flows
        for engine in engines
    ]
    def progress(summary: Dict) -> str:
        return (
            f"skew {summary['skew_ps']:.2f} ps, clr {summary['clr_ps']:.2f} ps"
        )

    return _run_batch(args, jobs, table=table_iv, summary_key="summary", progress=progress)


def _run_batch(
    args: argparse.Namespace,
    jobs: List,
    table: Callable[[List[Dict]], str],
    summary_key: str,
    progress: Callable[[Dict], str],
    worker: Optional[Callable[..., Dict]] = None,
) -> int:
    """Shared batch plumbing of ``repro run`` / ``repro mc``.

    Streams one JSON record per job into ``--output-dir``, prints a progress
    line per completion (``progress`` renders the record's ``summary_key``
    payload), renders the final ``table``, optionally writes the whole batch
    as ``--summary-json``, and maps job failures to exit code 1.
    """
    output_dir: Optional[Path] = Path(args.output_dir) if args.output_dir else None
    if output_dir is not None:
        output_dir.mkdir(parents=True, exist_ok=True)

    def on_result(index: int, record: Dict) -> None:
        if output_dir is not None:
            path = output_dir / f"{record['job']}.json"
            path.write_text(json.dumps(record, indent=1) + "\n")
        if "error" in record:
            print(f"[{index + 1}/{len(jobs)}] {record['job']}: FAILED", file=sys.stderr)
        else:
            print(
                f"[{index + 1}/{len(jobs)}] {record['job']}: "
                f"{progress(record[summary_key])}, {record['wall_clock_s']:.2f} s"
            )

    runner_kwargs = {} if worker is None else {"worker": worker}
    batch = BatchRunner(jobs, max_workers=args.jobs, **runner_kwargs).run(
        on_result=on_result
    )
    print()
    print(table(batch.records))
    print(f"\n{len(jobs)} job(s), {batch.workers} worker(s), "
          f"{batch.wall_clock_s:.2f} s wall-clock")
    if args.summary_json:
        Path(args.summary_json).write_text(
            json.dumps(
                {
                    "jobs": len(jobs),
                    "workers": batch.workers,
                    "wall_clock_s": batch.wall_clock_s,
                    "records": batch.records,
                },
                indent=1,
            )
            + "\n"
        )
    for failure in batch.failures:
        print(f"\njob {failure['job']} failed:\n{failure['error']}", file=sys.stderr)
    return 1 if batch.failures else 0


def _cmd_mc(args: argparse.Namespace) -> int:
    if not args.instance:
        print("repro mc: at least one --instance is required", file=sys.stderr)
        return 2
    flows = args.flow or ["contango"]
    sample_counts = args.samples or [1000]
    pipeline = (
        tuple(p.strip() for p in args.pipeline.split(",") if p.strip())
        if args.pipeline
        else None
    )
    try:
        jobs = [
            McJobSpec(
                instance=instance,
                flow=flow,
                engine=args.engine,
                samples=samples,
                family=args.family,
                seed=args.seed,
                skew_limit_ps=args.skew_limit,
                gated=args.gated,
                gate_samples=args.gate_samples,
                pipeline=pipeline,
            )
            for instance in args.instance
            for flow in flows
            for samples in sample_counts
        ]
    except ValueError as error:
        print(f"repro mc: {error}", file=sys.stderr)
        return 2

    def progress(summary: Dict) -> str:
        return (
            f"p95 skew {summary['skew_p95_ps']:.2f} ps, "
            f"yield {100.0 * summary['skew_yield']:.1f}% "
            f"@ {summary['skew_limit_ps']:g} ps"
        )

    return _run_batch(
        args,
        jobs,
        table=table_mc,
        summary_key="yield",
        progress=progress,
        worker=run_mc_job_guarded,
    )


def _cmd_bench(args: argparse.Namespace) -> int:
    # Distinct seeds make the matrix a realistic mixed workload rather than
    # one instance computed four times.
    jobs = [
        JobSpec(instance=f"ti:{args.sinks}", seed=7 + offset)
        for offset in range(args.matrix)
    ]
    serial = BatchRunner(jobs, max_workers=1).run()
    parallel = BatchRunner(jobs, max_workers=args.workers).run()
    failures = serial.failures + parallel.failures
    payload = {
        "benchmark": f"runner_{args.matrix}job_ti{args.sinks}_arnoldi",
        "jobs": args.matrix,
        "workers": args.workers,
        # Speedup is bounded by the cores actually available; record them so
        # a 1-core box's ~1.0x is not mistaken for a runner regression.
        "cpu_count": os.cpu_count(),
        "serial_wall_clock_s": round(serial.wall_clock_s, 4),
        "parallel_wall_clock_s": round(parallel.wall_clock_s, 4),
        "speedup": round(serial.wall_clock_s / parallel.wall_clock_s, 3)
        if parallel.wall_clock_s > 0
        else None,
        "job_runtimes_s": [
            round(record.get("wall_clock_s", 0.0), 4) for record in serial.records
        ],
        "failures": len(failures),
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    if failures:
        for failure in failures:
            print(f"job {failure['job']} failed:\n{failure['error']}", file=sys.stderr)
        return 1
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    source = Path(args.input)
    paths = sorted(source.glob("*.json")) if source.is_dir() else [source]
    records: List[Dict] = []
    for path in paths:
        record = json.loads(path.read_text())
        if isinstance(record, dict) and "records" in record:  # a --summary-json file
            records.extend(record["records"])
        else:
            records.append(record)
    if not records:
        print(f"no job records found under {source}", file=sys.stderr)
        return 1
    print(table_iv(records))
    if args.stages:
        for record in records:
            if record.get("stage_table"):
                print(f"\n== {record['job']} ==")
                print(table_iii(record))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "mc":
        return _cmd_mc(args)
    if args.command == "bench":
        return _cmd_bench(args)
    return _cmd_table(args)


if __name__ == "__main__":
    raise SystemExit(main())
