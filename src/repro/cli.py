"""The ``repro`` command line (also reachable as ``python -m repro``).

Three subcommands over the :mod:`repro.runner` batch engine:

* ``repro run`` -- expand an instance x flow x engine matrix into jobs, fan
  them across ``--jobs`` worker processes, stream one JSON record per job
  into ``--output-dir``, and print a Table IV-style summary;
* ``repro bench`` -- the runner's own performance smoke: a fixed 4-job
  matrix timed at ``--jobs 1`` and ``--jobs 4``, with the wall-clocks and
  speedup written to ``BENCH_runner.json`` so parallel scaling is tracked
  across PRs;
* ``repro table`` -- re-render saved per-job JSON records as Table IV (and,
  with ``--stages``, per-run Table III stage tables).

Examples::

    python -m repro run --instance ti:200 --instance ispd09:ispd09f22:0.2 \
        --flow contango --flow unoptimized_dme --jobs 4 --output-dir results
    python -m repro run --instance ti:500 --pipeline initial,tbsz,twsz
    python -m repro bench --output BENCH_runner.json
    python -m repro table --input results --stages
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.core import available_passes
from repro.runner import (
    BatchRunner,
    JobSpec,
    available_flows,
    table_iii,
    table_iv,
)

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Contango reproduction batch runner (DATE'10 clock-network synthesis)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run an instance x flow x engine job matrix")
    run.add_argument(
        "--instance",
        action="append",
        metavar="SPEC",
        help="instance spec (repeatable, required unless --list-passes): "
        "ti:<sinks>, ispd09:<name>[:<scale>], file:<path>",
    )
    run.add_argument(
        "--flow",
        action="append",
        metavar="NAME",
        help=f"flow to run (repeatable); default contango; one of {available_flows()}",
    )
    run.add_argument(
        "--engine",
        action="append",
        metavar="NAME",
        help="evaluation engine (repeatable); default arnoldi (also: spice, elmore)",
    )
    run.add_argument(
        "--pipeline",
        metavar="P1,P2,...",
        help="comma-separated pass-registry names overriding the default "
        "Contango sequence (see 'repro run --list-passes')",
    )
    run.add_argument("--seed", type=int, help="TI-generator seed override")
    run.add_argument("--jobs", type=int, default=1, help="worker processes (default 1)")
    run.add_argument(
        "--output-dir",
        metavar="DIR",
        help="write one <job>.json per completed job into DIR (streamed)",
    )
    run.add_argument(
        "--summary-json",
        metavar="FILE",
        help="write the whole batch (records + wall-clock) as one JSON file",
    )
    run.add_argument(
        "--list-passes",
        action="store_true",
        help="print the registered optimization passes and exit",
    )

    bench = sub.add_parser(
        "bench", help="time a fixed 4-job matrix at --jobs 1 vs --jobs 4"
    )
    bench.add_argument("--sinks", type=int, default=200, help="TI instance size (default 200)")
    bench.add_argument("--matrix", type=int, default=4, help="jobs in the matrix (default 4)")
    bench.add_argument("--workers", type=int, default=4, help="parallel worker count (default 4)")
    bench.add_argument(
        "--output", default="BENCH_runner.json", metavar="FILE",
        help="where to write the speedup record (default BENCH_runner.json)",
    )

    table = sub.add_parser("table", help="render saved per-job JSON as Table IV / III")
    table.add_argument(
        "--input", required=True, metavar="DIR_OR_FILE",
        help="a directory of per-job *.json files, or one such file",
    )
    table.add_argument(
        "--stages", action="store_true", help="also print each run's Table III stage table"
    )
    return parser


# ----------------------------------------------------------------------
def _cmd_run(args: argparse.Namespace) -> int:
    if args.list_passes:
        # Importing the baselines registers their synthesis passes too.
        import repro.baselines  # noqa: F401

        print("\n".join(available_passes()))
        return 0
    if not args.instance:
        print("repro run: at least one --instance is required", file=sys.stderr)
        return 2
    flows = args.flow or ["contango"]
    engines = args.engine or ["arnoldi"]
    pipeline = tuple(p.strip() for p in args.pipeline.split(",") if p.strip()) if args.pipeline else None
    jobs = [
        JobSpec(instance=instance, flow=flow, engine=engine, pipeline=pipeline, seed=args.seed)
        for instance in args.instance
        for flow in flows
        for engine in engines
    ]
    output_dir: Optional[Path] = Path(args.output_dir) if args.output_dir else None
    if output_dir is not None:
        output_dir.mkdir(parents=True, exist_ok=True)

    def on_result(index: int, record: Dict) -> None:
        if output_dir is not None:
            path = output_dir / f"{record['job']}.json"
            path.write_text(json.dumps(record, indent=1) + "\n")
        if "error" in record:
            print(f"[{index + 1}/{len(jobs)}] {record['job']}: FAILED", file=sys.stderr)
        else:
            summary = record["summary"]
            print(
                f"[{index + 1}/{len(jobs)}] {record['job']}: "
                f"skew {summary['skew_ps']:.2f} ps, clr {summary['clr_ps']:.2f} ps, "
                f"{record['wall_clock_s']:.2f} s"
            )

    batch = BatchRunner(jobs, max_workers=args.jobs).run(on_result=on_result)
    print()
    print(table_iv(batch.records))
    print(f"\n{len(jobs)} job(s), {batch.workers} worker(s), "
          f"{batch.wall_clock_s:.2f} s wall-clock")
    if args.summary_json:
        Path(args.summary_json).write_text(
            json.dumps(
                {
                    "jobs": len(jobs),
                    "workers": batch.workers,
                    "wall_clock_s": batch.wall_clock_s,
                    "records": batch.records,
                },
                indent=1,
            )
            + "\n"
        )
    for failure in batch.failures:
        print(f"\njob {failure['job']} failed:\n{failure['error']}", file=sys.stderr)
    return 1 if batch.failures else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    # Distinct seeds make the matrix a realistic mixed workload rather than
    # one instance computed four times.
    jobs = [
        JobSpec(instance=f"ti:{args.sinks}", seed=7 + offset)
        for offset in range(args.matrix)
    ]
    serial = BatchRunner(jobs, max_workers=1).run()
    parallel = BatchRunner(jobs, max_workers=args.workers).run()
    failures = serial.failures + parallel.failures
    payload = {
        "benchmark": f"runner_{args.matrix}job_ti{args.sinks}_arnoldi",
        "jobs": args.matrix,
        "workers": args.workers,
        # Speedup is bounded by the cores actually available; record them so
        # a 1-core box's ~1.0x is not mistaken for a runner regression.
        "cpu_count": os.cpu_count(),
        "serial_wall_clock_s": round(serial.wall_clock_s, 4),
        "parallel_wall_clock_s": round(parallel.wall_clock_s, 4),
        "speedup": round(serial.wall_clock_s / parallel.wall_clock_s, 3)
        if parallel.wall_clock_s > 0
        else None,
        "job_runtimes_s": [
            round(record.get("wall_clock_s", 0.0), 4) for record in serial.records
        ],
        "failures": len(failures),
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    if failures:
        for failure in failures:
            print(f"job {failure['job']} failed:\n{failure['error']}", file=sys.stderr)
        return 1
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    source = Path(args.input)
    paths = sorted(source.glob("*.json")) if source.is_dir() else [source]
    records: List[Dict] = []
    for path in paths:
        record = json.loads(path.read_text())
        if isinstance(record, dict) and "records" in record:  # a --summary-json file
            records.extend(record["records"])
        else:
            records.append(record)
    if not records:
        print(f"no job records found under {source}", file=sys.stderr)
        return 1
    print(table_iv(records))
    if args.stages:
        for record in records:
            if record.get("stage_table"):
                print(f"\n== {record['job']} ==")
                print(table_iii(record))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "bench":
        return _cmd_bench(args)
    return _cmd_table(args)


if __name__ == "__main__":
    raise SystemExit(main())
