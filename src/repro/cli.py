"""The ``repro`` command line (also reachable as ``python -m repro``).

Every subcommand is a thin adapter over the typed public API
(:mod:`repro.api`): it parses arguments into a
:class:`~repro.api.jobs.JobMatrix`, runs the expanded jobs through one
:class:`~repro.api.service.SynthesisService`, and renders the streamed typed
records (:mod:`repro.api.records`) as JSON files and text tables.

Six subcommands:

* ``repro run`` -- expand an instance x flow x engine matrix into jobs, fan
  them across ``--jobs`` worker processes, stream one JSON record per job
  into ``--output-dir``, and print a Table IV-style summary;
* ``repro sweep`` -- the scenario lab: expand a scenario family's parameter
  sweep (``--set``/``--sweep`` over :mod:`repro.scenarios` families, plus any
  explicit ``--instance`` specs) times flows and engines, run it through the
  service, and append every completed job to a persistent
  :class:`~repro.store.RunStore` under ``--store`` tagged with ``--run-id``;
* ``repro compare`` -- diff two store selections (``DIR`` or ``DIR@RUN_ID``)
  into a per-scenario skew/CLR/evaluations/wall-clock delta table with
  regression highlighting; ``--fail-on-regression`` turns it into a CI gate;
* ``repro mc`` -- Monte Carlo variation sweeps: synthesize each instance x
  flow cell, then evaluate its skew yield under ``--samples`` randomized
  supply/process scenarios (batched through the vectorized moment path) with
  a per-job seeded RNG; ``--gated`` switches synthesis to the
  variation-aware pipeline (p95-skew-gated IVC rounds);
* ``repro bench`` -- the runner's own performance smoke: a fixed 4-job
  matrix timed at ``--jobs 1`` and ``--jobs 4``, with the wall-clocks and
  speedup written to ``--summary-json`` so parallel scaling is tracked
  across PRs;
* ``repro table`` -- re-render saved per-job JSON records as Table IV (and,
  with ``--stages``, per-run Table III stage tables);
* ``repro profile`` -- run one job under a live :class:`repro.obs.Tracer`
  and print its span tree (per-span total/self times and counters), with
  optional schema-1 trace-artifact (``--json``) and Chrome trace-event
  (``--chrome``, opens in Perfetto) exports;
* ``repro trace`` -- read the compact trace summaries back out of a run
  store selection (``STORE[@RUN_ID]``): top spans by self-time plus the
  merged counters of each traced record; ``--diff OTHER[@RUN_ID]`` turns it
  into a counters-only diff by span path (exit 1 on any difference, the
  ``diff`` convention);
* ``repro perf`` -- the performance ledger: ``perf run`` executes registered
  :mod:`repro.perf` cases and appends schema-versioned entries to an
  append-only ledger (``--ledger``) and/or one merged ``BENCH_all.json``
  (``--output``); ``perf compare`` diffs two ledgers/merged files with a
  hard exact-match gate on deterministic counters and soft IQR-banded gates
  on timings, localizing timing regressions to the moved span subtree;
  ``perf trend`` renders per-case history tables across a ledger.
* ``repro serve`` -- the HTTP/JSON job server: an asyncio scheduler over one
  warm :class:`~repro.api.service.SynthesisService` pool with bounded
  fair queueing, in-flight coalescing of identical submissions and a
  content-addressed result cache over the attached run store.  The serving
  stack (and :mod:`asyncio` itself) is imported only inside this handler,
  so the plain batch commands never load it.

``repro --version`` prints the installed package version.  The JSON output
flags are uniform across subcommands: ``--output-dir DIR`` streams one
``<job>.json`` per completed job, ``--summary-json FILE`` writes the whole
batch as one document.

Examples::

    python -m repro run --instance ti:200 --instance scenario:maze:sinks=64 \
        --flow contango --flow unoptimized_dme --jobs 4 --output-dir results
    python -m repro run --instance ti:500 --pipeline initial,tbsz,twsz
    python -m repro sweep --family banks --set sinks=48 \
        --sweep clusters=4,8,16 --flow contango --jobs 4 \
        --store results/store --run-id nightly
    python -m repro compare results/store@baseline results/store@nightly \
        --fail-on-regression
    python -m repro mc --instance ti:200 --samples 1000 --seed 7 \
        --family correlated --jobs 4 --output-dir mc-results
    python -m repro mc --instance ti:200 --samples 500 --gated
    python -m repro bench --summary-json BENCH_runner.json
    python -m repro table --input results --stages
    python -m repro profile scenario:banks:clusters=8 --flow contango
    python -m repro trace results/store@nightly
    python -m repro trace results/store@baseline --diff results/store@nightly
    python -m repro perf run --ledger benchmarks/perf_ledger --output BENCH_all.json
    python -m repro perf compare benchmarks/perf_ledger perf_candidate \
        --fail-on-counter-regression
    python -m repro perf trend benchmarks/perf_ledger --case evaluator
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.variation import SAMPLING_FAMILIES
from repro.api.jobs import JobMatrix, JobSpec, MonteCarloAxes
from repro.api.records import McRecord, Record, RunRecord
from repro.api.service import JobEvent, SynthesisService
from repro.core import available_passes
from repro.obs import (
    Tracer,
    TraceSummary,
    chrome_trace,
    render_span_tree,
    trace_artifact,
    write_trace,
)
from repro.runner import (
    available_flows,
    render_table,
    run_job,
    table_iii,
    table_iv,
    table_mc,
)
from repro.scenarios import SCENARIO_REGISTRY
from repro.store import (
    COMPARE_COLUMNS,
    COUNTER_COLUMNS,
    CompareTolerances,
    RunStore,
    compare_rows,
    diff_records,
)

__all__ = ["build_parser", "main", "package_version"]


def package_version() -> str:
    """The installed distribution version (falls back to the module version)."""
    from importlib.metadata import PackageNotFoundError, version

    try:
        return version("repro-contango")
    except PackageNotFoundError:  # running from a checkout, not installed
        from repro import __version__

        return __version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Contango reproduction batch runner (DATE'10 clock-network synthesis)",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {package_version()}",
        help="print the installed package version and exit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run an instance x flow x engine job matrix")
    run.add_argument(
        "--instance",
        action="append",
        metavar="SPEC",
        help="instance spec (repeatable, required unless --list-passes): "
        "ti:<sinks>, ispd09:<name>[:<scale>], scenario:<family>[:k=v,...], "
        "file:<path>",
    )
    run.add_argument(
        "--flow",
        action="append",
        metavar="NAME",
        help=f"flow to run (repeatable); default contango; one of {available_flows()}",
    )
    run.add_argument(
        "--engine",
        action="append",
        metavar="NAME",
        help="evaluation engine (repeatable); default arnoldi (also: spice, elmore)",
    )
    run.add_argument(
        "--pipeline",
        metavar="P1,P2,...",
        help="comma-separated pass-registry names overriding the default "
        "Contango sequence (see 'repro run --list-passes')",
    )
    run.add_argument("--seed", type=int, help="TI-generator seed override")
    run.add_argument("--jobs", type=int, default=1, help="worker processes (default 1)")
    run.add_argument(
        "--output-dir",
        metavar="DIR",
        help="write one <job>.json per completed job into DIR (streamed)",
    )
    run.add_argument(
        "--summary-json",
        metavar="FILE",
        help="write the whole batch (records + wall-clock) as one JSON file",
    )
    run.add_argument(
        "--trace",
        action="store_true",
        help="run every job under a tracer and attach its trace summary to "
        "the record (results stay bit-identical; read back with 'repro trace')",
    )
    run.add_argument(
        "--list-passes",
        action="store_true",
        help="print the registered optimization passes and exit",
    )

    sweep = sub.add_parser(
        "sweep",
        help="scenario-lab sweep: scenario family x flow matrix into a persistent run store",
    )
    sweep.add_argument(
        "--family",
        action="append",
        metavar="NAME",
        help="scenario family to sweep (repeatable; see --list-families)",
    )
    sweep.add_argument(
        "--set",
        action="append",
        dest="sets",
        metavar="K=V",
        default=None,
        help="fix a family parameter for every sweep point (repeatable)",
    )
    sweep.add_argument(
        "--sweep",
        action="append",
        dest="sweeps",
        metavar="K=V1,V2,...",
        default=None,
        help="sweep a family parameter over a value list (repeatable; "
        "multiple axes cross-multiply)",
    )
    sweep.add_argument(
        "--instance",
        action="append",
        metavar="SPEC",
        help="extra explicit instance specs to include in the matrix "
        "(repeatable): ti:<sinks>, ispd09:<name>[:<scale>], "
        "scenario:<family>[:k=v,...], file:<path>",
    )
    sweep.add_argument(
        "--flow",
        action="append",
        metavar="NAME",
        help=f"flow to run (repeatable); default contango; one of {available_flows()}",
    )
    sweep.add_argument(
        "--engine",
        action="append",
        metavar="NAME",
        help="evaluation engine (repeatable); default arnoldi (also: spice, elmore)",
    )
    sweep.add_argument("--seed", type=int, help="instance/flow seed override")
    sweep.add_argument("--jobs", type=int, default=1, help="worker processes (default 1)")
    sweep.add_argument(
        "--store",
        metavar="DIR",
        help="run-store directory; every completed job is appended to "
        "DIR/runs.jsonl (required unless --list-families)",
    )
    sweep.add_argument(
        "--run-id",
        metavar="ID",
        help="store tag for this sweep (default: a UTC timestamp tag)",
    )
    sweep.add_argument(
        "--output-dir",
        metavar="DIR",
        help="additionally write one <job>.json per completed job into DIR",
    )
    sweep.add_argument(
        "--summary-json",
        metavar="FILE",
        help="write the whole batch (records + wall-clock) as one JSON file",
    )
    sweep.add_argument(
        "--trace",
        action="store_true",
        help="run every job under a tracer and attach its trace summary to "
        "the stored records (read back with 'repro trace')",
    )
    sweep.add_argument(
        "--list-families",
        action="store_true",
        help="print the registered scenario families with their parameters and exit",
    )

    compare = sub.add_parser(
        "compare",
        help="diff two run-store selections into a per-scenario delta table",
    )
    compare.add_argument(
        "baseline",
        metavar="STORE[@RUN_ID]",
        help="baseline selection: a store directory, optionally @RUN_ID "
        "(default: the latest run; @all selects every record)",
    )
    compare.add_argument(
        "candidate",
        metavar="STORE[@RUN_ID]",
        help="candidate selection, same syntax as the baseline",
    )
    compare.add_argument(
        "--skew-tol", type=float, default=0.05, metavar="PS",
        help="allowed skew increase before a job counts as regressed (default 0.05 ps)",
    )
    compare.add_argument(
        "--clr-tol", type=float, default=0.05, metavar="PS",
        help="allowed CLR increase before a job counts as regressed (default 0.05 ps)",
    )
    compare.add_argument(
        "--evals-tol", type=int, default=None, metavar="N",
        help="also flag jobs whose evaluation count grew by more than N "
        "(default: evaluations reported but not gated)",
    )
    compare.add_argument(
        "--counters",
        action="store_true",
        help="add evaluator-cache and variation-gate counter delta columns "
        "(cache hits/misses, gate checks/rejections)",
    )
    compare.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit 1 when any matched job regressed (or nothing matched at all)",
    )

    mc = sub.add_parser(
        "mc", help="Monte Carlo skew-yield sweep over an instance x flow x samples matrix"
    )
    mc.add_argument(
        "--instance",
        action="append",
        metavar="SPEC",
        help="instance spec (repeatable): ti:<sinks>, ispd09:<name>[:<scale>], "
        "scenario:<family>[:k=v,...], file:<path>",
    )
    mc.add_argument(
        "--flow",
        action="append",
        metavar="NAME",
        help=f"flow to synthesize with (repeatable); default contango; one of {available_flows()}",
    )
    mc.add_argument(
        "--engine",
        default="arnoldi",
        choices=["arnoldi", "elmore"],
        help="analytical evaluation engine used for synthesis and MC (default arnoldi)",
    )
    mc.add_argument(
        "--samples",
        action="append",
        type=int,
        metavar="N",
        help="Monte Carlo scenario count (repeatable for a sample-count sweep); default 1000",
    )
    mc.add_argument(
        "--family",
        default="independent",
        choices=list(SAMPLING_FAMILIES),
        help="variation sampling family (default independent)",
    )
    mc.add_argument(
        "--seed", type=int, default=7,
        help="base seed; per-job generators derive from it deterministically (default 7)",
    )
    mc.add_argument(
        "--skew-limit", type=float, default=7.5, metavar="PS",
        help="skew limit (ps) defining yield (default 7.5, the ISPD'10-style target)",
    )
    mc.add_argument(
        "--gated",
        action="store_true",
        help="synthesize with the variation-aware pipeline (p95-skew-gated IVC "
        "rounds); the gate checks each round with --gate-samples scenarios, "
        "not --samples",
    )
    mc.add_argument(
        "--gate-samples", type=int, metavar="N",
        help="scenario count per gate check during --gated synthesis "
        "(default: the FlowConfig default of 128; the final reported sweep "
        "always uses --samples)",
    )
    mc.add_argument(
        "--pipeline",
        metavar="P1,P2,...",
        help="explicit pass-registry pipeline override (see 'repro run --list-passes')",
    )
    mc.add_argument("--jobs", type=int, default=1, help="worker processes (default 1)")
    mc.add_argument(
        "--output-dir",
        metavar="DIR",
        help="write one <job>.json per completed job into DIR (streamed)",
    )
    mc.add_argument(
        "--summary-json",
        metavar="FILE",
        help="write the whole batch (records + wall-clock) as one JSON file",
    )
    mc.add_argument(
        "--trace",
        action="store_true",
        help="run every job under a tracer and attach its trace summary to "
        "the record (read back with 'repro trace')",
    )

    bench = sub.add_parser(
        "bench", help="time a fixed 4-job matrix at --jobs 1 vs --jobs 4"
    )
    bench.add_argument("--sinks", type=int, default=200, help="TI instance size (default 200)")
    bench.add_argument("--matrix", type=int, default=4, help="jobs in the matrix (default 4)")
    bench.add_argument("--workers", type=int, default=4, help="parallel worker count (default 4)")
    bench.add_argument(
        "--summary-json",
        "--output",
        dest="summary_json",
        default="BENCH_runner.json",
        metavar="FILE",
        help="where to write the speedup record (default BENCH_runner.json; "
        "--output is a deprecated alias)",
    )

    table = sub.add_parser("table", help="render saved per-job JSON as Table IV / III")
    table.add_argument(
        "--input", required=True, metavar="DIR_OR_FILE",
        help="a directory of per-job *.json files, or one such file",
    )
    table.add_argument(
        "--stages", action="store_true", help="also print each run's Table III stage table"
    )

    profile = sub.add_parser(
        "profile", help="run one job under a live tracer and print its span tree"
    )
    profile.add_argument(
        "spec",
        metavar="SPEC",
        help="instance spec: ti:<sinks>, ispd09:<name>[:<scale>], "
        "scenario:<family>[:k=v,...], file:<path>",
    )
    profile.add_argument(
        "--flow",
        default="contango",
        help=f"flow to profile (default contango); one of {available_flows()}",
    )
    profile.add_argument(
        "--engine",
        default="arnoldi",
        help="evaluation engine (default arnoldi; also: spice, elmore)",
    )
    profile.add_argument(
        "--pipeline",
        metavar="P1,P2,...",
        help="explicit pass-registry pipeline override (see 'repro run --list-passes')",
    )
    profile.add_argument("--seed", type=int, help="job seed override")
    profile.add_argument(
        "--json",
        metavar="FILE",
        help="write the full schema-1 trace artifact (sorted-key JSON)",
    )
    profile.add_argument(
        "--chrome",
        metavar="FILE",
        help="write Chrome trace-event JSON (open in chrome://tracing or Perfetto)",
    )

    trace = sub.add_parser(
        "trace", help="print the trace summaries stored in a run-store selection"
    )
    trace.add_argument(
        "selection",
        metavar="STORE[@RUN_ID]",
        help="store selection: a store directory, optionally @RUN_ID "
        "(default: the latest run; @all selects every record)",
    )
    trace.add_argument(
        "--top",
        type=int,
        default=8,
        metavar="N",
        help="span names shown per record, heaviest self-time first (default 8)",
    )
    trace.add_argument(
        "--diff",
        metavar="STORE[@RUN_ID]",
        help="diff the selection's stored span-path counters against this "
        "other selection (counters only, matched by job label; exit 1 on "
        "any difference)",
    )

    perf = sub.add_parser(
        "perf",
        help="benchmark-case registry: run cases, gate regressions, render trends",
    )
    perf_sub = perf.add_subparsers(dest="perf_command", required=True)

    perf_run = perf_sub.add_parser(
        "run", help="run registered perf cases and record their ledger entries"
    )
    perf_run.add_argument(
        "--case",
        action="append",
        metavar="NAME",
        help="case to run (repeatable; default: every registered case, sorted)",
    )
    perf_run.add_argument(
        "--repeats",
        type=int,
        metavar="N",
        help="wall-clock repeats per case (default: each case's own setting; "
        "counters must not depend on it)",
    )
    perf_run.add_argument(
        "--ledger",
        metavar="DIR",
        help="append every entry to the perf ledger at DIR/perf.jsonl",
    )
    perf_run.add_argument(
        "--output",
        metavar="FILE",
        help="write all entries as one merged BENCH_all-style JSON document",
    )
    perf_run.add_argument(
        "--list-cases",
        action="store_true",
        help="print the registered cases with descriptions and exit",
    )

    perf_compare = perf_sub.add_parser(
        "compare",
        help="diff two perf sources: exact counter gate, IQR-banded timing gate",
    )
    perf_compare.add_argument(
        "baseline",
        metavar="SOURCE",
        help="baseline: a ledger directory (latest entry per case) or a "
        "merged perf-run JSON file",
    )
    perf_compare.add_argument(
        "candidate",
        metavar="SOURCE",
        help="candidate source, same forms as the baseline",
    )
    perf_compare.add_argument(
        "--case",
        action="append",
        metavar="NAME",
        help="restrict the comparison to these cases (repeatable)",
    )
    perf_compare.add_argument(
        "--iqr-band",
        type=float,
        default=3.0,
        metavar="K",
        help="timing noise band: flag only beyond median + K*IQR (default 3.0)",
    )
    perf_compare.add_argument(
        "--rel-floor",
        type=float,
        default=0.25,
        metavar="FRAC",
        help="relative noise floor: never flag below median*(1+FRAC) "
        "(default 0.25)",
    )
    perf_compare.add_argument(
        "--abs-floor",
        type=float,
        default=0.005,
        metavar="S",
        help="absolute noise floor in seconds: never flag below median+S "
        "(default 0.005)",
    )
    perf_compare.add_argument(
        "--fail-on-counter-regression",
        action="store_true",
        help="exit 1 when any deterministic counter changed, a check failed, "
        "or a baseline case is missing from the candidate",
    )
    perf_compare.add_argument(
        "--fail-on-timing-regression",
        action="store_true",
        help="exit 1 when any timing escaped its noise bands",
    )

    perf_trend = perf_sub.add_parser(
        "trend", help="render per-case history tables across a perf ledger"
    )
    perf_trend.add_argument(
        "ledger", metavar="DIR", help="perf ledger directory (DIR/perf.jsonl)"
    )
    perf_trend.add_argument(
        "--case",
        action="append",
        metavar="NAME",
        help="case to render (repeatable; default: every case in the ledger)",
    )
    perf_trend.add_argument(
        "--counter",
        action="append",
        metavar="NAME",
        help="counter column to include (repeatable; default: the evaluator "
        "trio present in the entries)",
    )

    serve = sub.add_parser(
        "serve",
        help="serve synthesis jobs over HTTP/JSON (async scheduler + result cache)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve.add_argument(
        "--port", type=int, default=8765,
        help="TCP port; 0 binds an ephemeral port (default 8765)",
    )
    serve.add_argument(
        "--port-file", metavar="FILE",
        help="write the bound port to FILE once the server accepts connections",
    )
    serve.add_argument(
        "--workers", type=int, default=1,
        help="warm synthesis pool size (default 1: in-process execution)",
    )
    serve.add_argument(
        "--store", metavar="DIR",
        help="run-store directory; completed jobs append to DIR/runs.jsonl and "
        "previously stored records are served as cache hits",
    )
    serve.add_argument(
        "--run-id", metavar="ID", help="store tag for served jobs (default serve)"
    )
    serve.add_argument(
        "--max-queue", type=int, default=64,
        help="scheduler queue capacity (default 64)",
    )
    serve.add_argument(
        "--queue-policy", choices=("wait", "reject"), default="wait",
        help="full-queue backpressure: park the submitter or reject with "
        "429 (default wait)",
    )

    lint = sub.add_parser(
        "lint", help="run the repro.lintkit invariant linter over source paths"
    )
    lint.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default src/ if it exists, else .)",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default text; json is version-stable for CI)",
    )
    lint.add_argument(
        "--select", action="append", default=None, metavar="RULE",
        help="run only these rules (repeatable)",
    )
    lint.add_argument(
        "--ignore", action="append", default=None, metavar="RULE",
        help="drop these rules after selection (repeatable)",
    )
    lint.add_argument(
        "--output", metavar="FILE",
        help="also write the report to FILE (the CI artifact)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules with descriptions and exit",
    )
    return parser


# ----------------------------------------------------------------------
def _progress_run(record: Record) -> str:
    assert isinstance(record, RunRecord) and record.summary is not None
    return (
        f"skew {record.summary.skew_ps:.2f} ps, clr {record.summary.clr_ps:.2f} ps"
    )


def _progress_mc(record: Record) -> str:
    assert isinstance(record, McRecord) and record.yield_ is not None
    summary = record.yield_
    return (
        f"p95 skew {summary.skew_p95_ps:.2f} ps, "
        f"yield {100.0 * (summary.skew_yield or 0.0):.1f}% "
        f"@ {summary.skew_limit_ps:g} ps"
    )


def _cmd_run(args: argparse.Namespace) -> int:
    if args.list_passes:
        # Importing the baselines registers their synthesis passes too.
        import repro.baselines  # noqa: F401

        print("\n".join(available_passes()))
        return 0
    if not args.instance:
        print("repro run: at least one --instance is required", file=sys.stderr)
        return 2
    matrix = JobMatrix(
        instances=args.instance,
        flows=args.flow or ["contango"],
        engines=args.engine or ["arnoldi"],
        pipeline=_parse_pipeline(args.pipeline),
        seed=args.seed,
    )
    return _run_batch(args, matrix.expand(), table=table_iv, progress=_progress_run)


def _parse_pipeline(text: Optional[str]) -> Optional[tuple]:
    if not text:
        return None
    return tuple(p.strip() for p in text.split(",") if p.strip())


def _run_batch(
    args: argparse.Namespace,
    jobs: List,
    table: Callable[[Sequence[Record]], str],
    progress: Callable[[Record], str],
    store: Optional[RunStore] = None,
    run_id: str = "service",
) -> int:
    """Shared batch plumbing of ``repro run`` / ``repro sweep`` / ``repro mc``.

    Runs the expanded ``jobs`` through one :class:`SynthesisService`
    (attached to ``store`` when given, so every record is appended under
    ``run_id``), streams one JSON record per job into ``--output-dir``,
    prints a progress line per completion, renders the final ``table``,
    optionally writes the whole batch as ``--summary-json``, and maps job
    failures to exit code 1.
    """
    output_dir: Optional[Path] = Path(args.output_dir) if args.output_dir else None
    if output_dir is not None:
        output_dir.mkdir(parents=True, exist_ok=True)

    def on_event(event: JobEvent) -> None:
        if event.kind != "completed":
            # Liveness only: started events carry no record to write.
            if event.kind == "started":
                print(f"[{event.index + 1}/{len(jobs)}] {event.job.label}: started")
            return
        record = event.record
        assert record is not None  # completed events always carry a record
        if output_dir is not None:
            path = output_dir / f"{record.job}.json"
            path.write_text(json.dumps(record.to_record(), indent=1) + "\n")
        if event.failed:
            print(f"[{event.index + 1}/{len(jobs)}] {record.job}: FAILED", file=sys.stderr)
        else:
            print(
                f"[{event.index + 1}/{len(jobs)}] {record.job}: "
                f"{progress(record)}, {record.wall_clock_s:.2f} s"
            )

    with SynthesisService(
        max_workers=args.jobs,
        store=store,
        run_id=run_id,
        trace=getattr(args, "trace", False),
    ) as service:
        batch = service.run(jobs, on_event=on_event)
    print()
    print(table(batch.records))
    print(f"\n{len(jobs)} job(s), {batch.workers} worker(s), "
          f"{batch.wall_clock_s:.2f} s wall-clock")
    if args.summary_json:
        Path(args.summary_json).write_text(
            json.dumps(
                {
                    "jobs": len(jobs),
                    "workers": batch.workers,
                    "wall_clock_s": batch.wall_clock_s,
                    "records": [record.to_record() for record in batch.records],
                },
                indent=1,
            )
            + "\n"
        )
    for failure in batch.failures:
        print(f"\njob {failure.job} failed:\n{failure.error}", file=sys.stderr)
    return 1 if batch.failures else 0


def _parse_assignments(items: Optional[List[str]], option: str) -> Dict[str, str]:
    """Parse repeated ``K=V`` command-line values into a dict."""
    parsed: Dict[str, str] = {}
    for item in items or []:
        key, eq, value = item.partition("=")
        if not eq or not key or not value:
            raise ValueError(f"{option} expects K=V, got {item!r}")
        if key in parsed:
            raise ValueError(f"duplicate {option} for parameter {key!r}")
        parsed[key] = value
    return parsed


def _list_families() -> None:
    for name in sorted(SCENARIO_REGISTRY):
        family = SCENARIO_REGISTRY[name]
        print(f"{name}: {family.description}")
        for param in family.params:
            bounds = ""
            if param.minimum is not None or param.maximum is not None:
                lo = "" if param.minimum is None else f"{param.minimum:g}"
                hi = "" if param.maximum is None else f"{param.maximum:g}"
                bounds = f" [{lo}..{hi}]"
            print(f"    {param.name}={param.default}{bounds}  {param.doc}")


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.list_families:
        _list_families()
        return 0
    if not args.family and not args.instance:
        print(
            "repro sweep: at least one --family or --instance is required",
            file=sys.stderr,
        )
        return 2
    if not args.store:
        print("repro sweep: --store DIR is required", file=sys.stderr)
        return 2
    try:
        matrix = JobMatrix(
            instances=args.instance or [],
            families=args.family or [],
            fixed=_parse_assignments(args.sets, "--set"),
            sweeps={
                key: [v for v in value.split(",") if v]
                for key, value in _parse_assignments(args.sweeps, "--sweep").items()
            },
            flows=args.flow or ["contango"],
            engines=args.engine or ["arnoldi"],
            seed=args.seed,
        )
        # Expanding up front surfaces unknown families/parameters as clean
        # CLI errors before any store or service is touched.
        jobs = matrix.expand()
    except (KeyError, ValueError) as error:
        print(f"repro sweep: {error}", file=sys.stderr)
        return 2

    store = RunStore(args.store)
    run_id = args.run_id or datetime.now(timezone.utc).strftime("sweep-%Y%m%dT%H%M%SZ")
    try:
        # Fail fast: a bad --run-id must not surface as a crash on the first
        # store append after minutes of synthesis.
        RunStore.check_run_id(run_id)
    except ValueError as error:
        print(f"repro sweep: {error}", file=sys.stderr)
        return 2

    code = _run_batch(
        args,
        jobs,
        table=table_iv,
        progress=_progress_run,
        store=store,
        run_id=run_id,
    )
    print(f"\nstored {len(jobs)} record(s) under run id {run_id!r} in {store.path}")
    return code


def _resolve_selection(selection: str) -> List[Dict]:
    """Load the records a ``STORE[@RUN_ID]`` selection names.

    The run id follows the *last* ``@``; a selection whose prefix is not a
    store but which names one as a whole is treated as a plain path, so
    directories containing ``@`` stay addressable.
    """
    path, sep, run_id = selection.rpartition("@")
    if not sep or (not RunStore(path).path.exists() and RunStore(selection).path.exists()):
        path, run_id = selection, ""
    store = RunStore(path)
    if not store.path.exists():
        raise ValueError(f"no run store at {store.path}")
    if run_id == "all":
        return store.records()
    if not run_id:
        run_id = store.latest_run_id() or ""
    records = store.records(run_id=run_id)
    if not records:
        raise ValueError(
            f"run id {run_id!r} matches nothing in {store.path}; "
            f"available: {store.run_ids()}"
        )
    return records


def _cmd_compare(args: argparse.Namespace) -> int:
    try:
        baseline = _resolve_selection(args.baseline)
        candidate = _resolve_selection(args.candidate)
    except ValueError as error:
        print(f"repro compare: {error}", file=sys.stderr)
        return 2
    result = diff_records(
        baseline,
        candidate,
        CompareTolerances(
            skew_ps=args.skew_tol, clr_ps=args.clr_tol, evaluations=args.evals_tol
        ),
    )
    columns = COMPARE_COLUMNS
    if args.counters:
        # Keep the flag column last; counters slot in just before it.
        columns = COMPARE_COLUMNS[:-1] + COUNTER_COLUMNS + COMPARE_COLUMNS[-1:]
    print(render_table(compare_rows(result, counters=args.counters), columns))
    print(
        f"\n{len(result.rows)} matched job(s), "
        f"{len(result.regressions)} regression(s), "
        f"{len(result.only_baseline)} baseline-only, "
        f"{len(result.only_candidate)} candidate-only"
    )
    for failure in result.candidate_failures:
        print(
            f"FAILED in candidate: {failure.instance} "
            f"[{failure.flow}/{failure.engine}]",
            file=sys.stderr,
        )
    for row in result.regressions:
        print(
            f"REGRESSION {row.instance} [{row.flow}/{row.engine}]: "
            f"skew {row.d_skew_ps:+.3f} ps, clr {row.d_clr_ps:+.3f} ps, "
            f"evals {row.d_evaluations:+d}",
            file=sys.stderr,
        )
    if args.fail_on_regression and not result.rows:
        print("repro compare: no matched jobs to gate on", file=sys.stderr)
        return 1
    if args.fail_on_regression and result.only_baseline:
        # A candidate that silently dropped (or errored on) baseline jobs has
        # not re-validated them; partial coverage must not pass the gate.
        missing = ", ".join(
            str(record.instance) for record in result.only_baseline
        )
        print(
            f"repro compare: {len(result.only_baseline)} baseline job(s) "
            f"missing from the candidate: {missing}",
            file=sys.stderr,
        )
        return 1
    if args.fail_on_regression and result.regressions:
        return 1
    return 0


def _cmd_mc(args: argparse.Namespace) -> int:
    if not args.instance:
        print("repro mc: at least one --instance is required", file=sys.stderr)
        return 2
    try:
        matrix = JobMatrix(
            instances=args.instance,
            flows=args.flow or ["contango"],
            engines=[args.engine],
            pipeline=_parse_pipeline(args.pipeline),
            seed=args.seed,
            monte_carlo=MonteCarloAxes(
                samples=tuple(args.samples or [1000]),
                family=args.family,
                skew_limit_ps=args.skew_limit,
                gated=args.gated,
                gate_samples=args.gate_samples,
            ),
        )
        jobs = matrix.expand()  # surfaces spec validation as clean CLI errors
    except ValueError as error:
        print(f"repro mc: {error}", file=sys.stderr)
        return 2

    return _run_batch(args, jobs, table=table_mc, progress=_progress_mc)


def _aggregate_cache_stats(stats_iter) -> Dict[str, int]:
    """Sum per-run integer evaluator cache counters into one dict."""
    totals: Dict[str, int] = {}
    for stats in stats_iter:
        for key, value in (stats or {}).items():
            if isinstance(value, int):
                totals[key] = totals.get(key, 0) + value
    return totals


def _cmd_bench(args: argparse.Namespace) -> int:
    # Distinct seeds make the matrix a realistic mixed workload rather than
    # one instance computed four times.
    jobs = [
        JobSpec(instance=f"ti:{args.sinks}", seed=7 + offset)
        for offset in range(args.matrix)
    ]
    with SynthesisService(max_workers=1) as service:
        serial = service.run(jobs)
    with SynthesisService(max_workers=args.workers) as service:
        parallel = service.run(jobs)
    failures = serial.failures + parallel.failures
    cpu_count = os.cpu_count() or 1
    payload = {
        "benchmark": f"runner_{args.matrix}job_ti{args.sinks}_arnoldi",
        "jobs": args.matrix,
        "workers": args.workers,
        # Speedup is bounded by the cores actually available; record them so
        # a 1-core box's ~1.0x is not mistaken for a runner regression.
        "cpu_count": cpu_count,
        # On a single-core box parallel ~= serial by construction; flag the
        # measurement so downstream gates skip it instead of failing on it.
        "speedup_meaningful": cpu_count > 1,
        "serial_wall_clock_s": round(serial.wall_clock_s, 4),
        "parallel_wall_clock_s": round(parallel.wall_clock_s, 4),
        "speedup": round(serial.wall_clock_s / parallel.wall_clock_s, 3)
        if parallel.wall_clock_s > 0
        else None,
        "job_runtimes_s": [
            round(record.wall_clock_s or 0.0, 4)
            for record in serial.records
            if isinstance(record, RunRecord)
        ],
        # Aggregated evaluator cache/dirty-region counters across the serial
        # runs -- the evidence trail for incremental-evaluation speedups.
        "evaluator_cache": _aggregate_cache_stats(
            record.evaluator_cache
            for record in serial.records
            if isinstance(record, RunRecord)
        ),
        "failures": len(failures),
    }
    Path(args.summary_json).write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    if cpu_count == 1:
        print(
            "bench: single-CPU host -- speedup is not meaningful "
            "(speedup_meaningful=false in the record)",
            file=sys.stderr,
        )
    if failures:
        for failure in failures:
            print(f"job {failure.job} failed:\n{failure.error}", file=sys.stderr)
        return 1
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    source = Path(args.input)
    paths = sorted(source.glob("*.json")) if source.is_dir() else [source]
    records: List[Dict] = []
    for path in paths:
        record = json.loads(path.read_text())
        if isinstance(record, dict) and "records" in record:  # a --summary-json file
            records.extend(record["records"])
        else:
            records.append(record)
    if not records:
        print(f"no job records found under {source}", file=sys.stderr)
        return 1
    print(table_iv(records))
    if args.stages:
        for record in records:
            if record.get("stage_table"):
                print(f"\n== {record['job']} ==")
                print(table_iii(record))
    return 0


_TRACE_COLUMNS = (
    ("name", "span", "s"),
    ("count", "count", "d"),
    ("total_s", "total[s]", ".4f"),
    ("self_s", "self[s]", ".4f"),
)


def _cmd_profile(args: argparse.Namespace) -> int:
    spec = JobSpec(
        instance=args.spec,
        flow=args.flow,
        engine=args.engine,
        pipeline=_parse_pipeline(args.pipeline),
        seed=args.seed,
    )
    tracer = Tracer()
    try:
        record = run_job(spec, tracer=tracer)
    except Exception as error:  # surface job failures as CLI errors, not tracebacks
        print(f"repro profile: {spec.label}: {error}", file=sys.stderr)
        return 1
    print(render_span_tree(tracer))
    total = tracer.total_s()
    self_sum = sum(span.self_s for span in tracer.spans())
    wall = record.wall_clock_s or 0.0
    print(
        f"\n{record.job}: wall-clock {wall:.3f} s, traced {total:.3f} s "
        f"(self-time sum {self_sum:.3f} s), "
        f"{sum(1 for _ in tracer.spans())} span(s)"
    )
    meta = {
        "instance": spec.instance,
        "flow": spec.flow,
        "engine": spec.engine,
        "label": spec.label,
        "seed": spec.seed,
    }
    artifact = trace_artifact(tracer, meta=meta)
    if args.json:
        write_trace(args.json, artifact)
        print(f"trace artifact: {args.json}")
    if args.chrome:
        Path(args.chrome).write_text(
            json.dumps(chrome_trace(artifact), indent=1, sort_keys=True) + "\n"
        )
        print(f"chrome trace: {args.chrome}")
    return 0


def _trace_paths(record: Dict) -> Dict[str, Dict[str, int]]:
    """Per-span-path counters of one traced record.

    Records stored before the ``paths`` field existed fall back to their
    merged counters under the ``*`` pseudo-path, so old baselines stay
    diffable (at merged granularity).
    """
    summary = TraceSummary.from_record(record["trace"])
    if summary.paths:
        return summary.paths
    if summary.counters:
        return {"*": dict(summary.counters)}
    return {}


def _cmd_trace_diff(args: argparse.Namespace) -> int:
    from repro.perf.compare import COUNTER_COLUMNS as PERF_COUNTER_COLUMNS
    from repro.perf.compare import diff_path_counters

    try:
        base_records = _resolve_selection(args.selection)
        cand_records = _resolve_selection(args.diff)
    except ValueError as error:
        print(f"repro trace: {error}", file=sys.stderr)
        return 2

    def by_job(records: List[Dict]) -> Dict[str, Dict]:
        return {
            str(record.get("job")): record
            for record in records
            if isinstance(record, dict) and record.get("trace")
        }

    base_jobs, cand_jobs = by_job(base_records), by_job(cand_records)
    if not base_jobs or not cand_jobs:
        print(
            "repro trace: both selections need traced records to diff",
            file=sys.stderr,
        )
        return 2

    differs = False
    for job in sorted(set(base_jobs) - set(cand_jobs)):
        print(f"only in baseline: {job}", file=sys.stderr)
        differs = True
    for job in sorted(set(cand_jobs) - set(base_jobs)):
        print(f"only in candidate: {job}", file=sys.stderr)
        differs = True
    for job in sorted(set(base_jobs) & set(cand_jobs)):
        try:
            diffs = diff_path_counters(
                _trace_paths(base_jobs[job]), _trace_paths(cand_jobs[job])
            )
        except (TypeError, ValueError) as error:
            print(f"repro trace: {job}: {error}", file=sys.stderr)
            return 2
        print(f"== {job} ==")
        if diffs:
            differs = True
            print(render_table([d.to_row() for d in diffs], PERF_COUNTER_COLUMNS))
        else:
            print("span-path counters identical")
        print()
    return 1 if differs else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.diff:
        return _cmd_trace_diff(args)
    try:
        records = _resolve_selection(args.selection)
    except ValueError as error:
        print(f"repro trace: {error}", file=sys.stderr)
        return 2
    traced = [r for r in records if isinstance(r, dict) and r.get("trace")]
    if not traced:
        print(
            "repro trace: no traced records in the selection; run jobs with "
            "tracing on (repro profile, or SynthesisService(trace=True))",
            file=sys.stderr,
        )
        return 1
    for record in traced:
        try:
            summary = TraceSummary.from_record(record["trace"])
        except (TypeError, ValueError) as error:
            print(f"repro trace: {record.get('job')}: {error}", file=sys.stderr)
            continue
        print(f"== {record.get('job')} ==")
        print(
            f"schema {summary.schema}, {summary.spans} span(s), "
            f"traced {summary.total_s:.3f} s"
        )
        print(render_table(summary.top[: args.top], _TRACE_COLUMNS))
        if summary.counters:
            packed = ", ".join(
                f"{key}={value}" for key, value in sorted(summary.counters.items())
            )
            print(f"counters: {packed}")
        print()
    return 0


def _cmd_perf_run(args: argparse.Namespace) -> int:
    from repro.perf import PerfLedger, available_cases, resolve_cases, run_case
    from repro.perf.case import CASE_REGISTRY, PERF_SCHEMA

    if args.list_cases:
        for name in available_cases():
            print(f"{name:16s} {CASE_REGISTRY[name].description}")
        return 0
    try:
        cases = resolve_cases(args.case)
    except KeyError as error:
        print(f"repro perf run: {error}", file=sys.stderr)
        return 2

    ledger = PerfLedger(args.ledger) if args.ledger else None
    entries: Dict[str, Dict] = {}
    failed_checks: List[str] = []
    # Sorted execution order keeps the merged document independent of the
    # --case flag order (the ledger-determinism contract).
    for case in sorted(cases, key=lambda c: c.name):
        entry = run_case(case, repeats=args.repeats, package_version=package_version())
        entries[case.name] = entry
        checks = list(entry["checks"]) + list(entry["timings"]["checks"])
        for check in checks:
            if not check["ok"]:
                failed_checks.append(f"{case.name}: {check['name']}: {check['detail']}")
        wall = entry["timings"]["wall_clock_s"]
        print(
            f"{case.name}: wall {wall['median']:.3f} s (IQR {wall['iqr']:.3f}, "
            f"n={wall['n']}), {len(entry['counters'])} counter(s), "
            f"{sum(1 for c in checks if c['ok'])}/{len(checks)} check(s) ok"
        )
        if ledger is not None:
            ledger.append(entry)
    if ledger is not None:
        print(f"ledger: {ledger.path} ({len(ledger)} entr(y/ies))")
    if args.output:
        payload = {
            "schema": PERF_SCHEMA,
            "kind": "perf-batch",
            "package_version": package_version(),
            "cases": {name: entries[name] for name in sorted(entries)},
        }
        Path(args.output).write_text(
            json.dumps(payload, indent=1, sort_keys=True) + "\n"
        )
        print(f"merged record: {args.output}")
    for failure in failed_checks:
        print(f"FAILED CHECK {failure}", file=sys.stderr)
    return 1 if failed_checks else 0


def _load_perf_entries(source: str) -> Dict[str, Dict]:
    """Latest entry per case from a ledger directory or a merged JSON file."""
    from repro.perf import PerfLedger
    from repro.perf.case import PERF_SCHEMA

    path = Path(source)
    if path.is_file():
        payload = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(payload, dict) or payload.get("kind") != "perf-batch":
            raise ValueError(f"{source} is not a merged perf-run document")
        schema = payload.get("schema")
        if not isinstance(schema, int) or schema > PERF_SCHEMA:
            raise ValueError(
                f"{source}: schema {schema!r} is newer than supported "
                f"version {PERF_SCHEMA}"
            )
        return dict(payload.get("cases", {}))
    ledger = PerfLedger(source)
    if not ledger.path.exists():
        raise ValueError(f"no perf ledger at {ledger.path}")
    entries: Dict[str, Dict] = {}
    for case in ledger.cases():
        latest = ledger.latest(case)
        assert latest is not None  # cases() only names present cases
        entries[case] = latest
    return entries


def _cmd_perf_compare(args: argparse.Namespace) -> int:
    from repro.perf.compare import (
        COUNTER_COLUMNS as PERF_COUNTER_COLUMNS,
        TIMING_COLUMNS,
        TimingBands,
        compare_entries,
    )

    try:
        base_entries = _load_perf_entries(args.baseline)
        cand_entries = _load_perf_entries(args.candidate)
    except (ValueError, json.JSONDecodeError) as error:
        print(f"repro perf compare: {error}", file=sys.stderr)
        return 2
    selected = args.case or sorted(set(base_entries) | set(cand_entries))
    bands = TimingBands(
        k_iqr=args.iqr_band, rel_floor=args.rel_floor, abs_floor_s=args.abs_floor
    )

    counter_regressions: List[str] = []
    timing_regressions: List[str] = []
    compared = 0
    for name in selected:
        base, cand = base_entries.get(name), cand_entries.get(name)
        if base is None or cand is None:
            side = "baseline" if base is None else "candidate"
            print(f"{name}: missing from the {side}", file=sys.stderr)
            if cand is None:
                # Coverage gap: the candidate never re-measured this case.
                counter_regressions.append(name)
            continue
        try:
            comparison = compare_entries(base, cand, bands)
        except ValueError as error:
            print(f"repro perf compare: {name}: {error}", file=sys.stderr)
            return 2
        compared += 1
        for note in comparison.notes:
            print(f"{name}: note: {note}")
        if comparison.counter_regression:
            counter_regressions.append(name)
            print(f"== {name}: COUNTER REGRESSION ==")
            if comparison.counter_diffs:
                print(
                    render_table(
                        [d.to_row() for d in comparison.counter_diffs],
                        PERF_COUNTER_COLUMNS,
                    )
                )
            for check in comparison.failed_checks:
                print(f"failed check: {check}")
        if comparison.timing_regression:
            timing_regressions.append(name)
            print(f"== {name}: timing regression ==")
            print(
                render_table(
                    [f.to_row() for f in comparison.timing_flags], TIMING_COLUMNS
                )
            )
            sources = ", ".join(f.path for f in comparison.timing_sources)
            print(f"localized to: {sources}")
        if not comparison.counter_regression and not comparison.timing_regression:
            print(f"{name}: ok (counters exact, timings within bands)")

    print(
        f"\n{compared} case(s) compared, {len(counter_regressions)} counter "
        f"regression(s), {len(timing_regressions)} timing regression(s)"
    )
    if args.fail_on_counter_regression and compared == 0:
        print("repro perf compare: no common cases to gate on", file=sys.stderr)
        return 1
    if args.fail_on_counter_regression and counter_regressions:
        return 1
    if args.fail_on_timing_regression and timing_regressions:
        return 1
    return 0


def _cmd_perf_trend(args: argparse.Namespace) -> int:
    from repro.perf import PerfLedger, trend_columns, trend_rows

    ledger = PerfLedger(args.ledger)
    if not ledger.path.exists():
        print(f"repro perf trend: no perf ledger at {ledger.path}", file=sys.stderr)
        return 2
    try:
        cases = args.case or ledger.cases()
    except ValueError as error:
        print(f"repro perf trend: {error}", file=sys.stderr)
        return 2
    if not cases:
        print(f"repro perf trend: {ledger.path} is empty", file=sys.stderr)
        return 1
    for name in cases:
        rows, counters = trend_rows(ledger, name, args.counter)
        print(f"== {name} ==")
        if rows:
            print(render_table(rows, trend_columns(counters)))
        else:
            print("no entries")
        print()
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    if args.perf_command == "run":
        return _cmd_perf_run(args)
    if args.perf_command == "compare":
        return _cmd_perf_compare(args)
    return _cmd_perf_trend(args)


def _cmd_serve(args: argparse.Namespace) -> int:
    # The serving stack (and asyncio itself) loads only inside this handler:
    # run/sweep/mc and the rest of the CLI never import it.
    import asyncio

    from repro.serve import run_app

    store = RunStore(args.store) if args.store else None
    run_id = args.run_id or "serve"

    def ready(port: int) -> None:
        print(f"repro serve: listening on http://{args.host}:{port}", flush=True)

    with SynthesisService(
        max_workers=args.workers, store=store, run_id=run_id
    ) as service:
        try:
            asyncio.run(
                run_app(
                    service,
                    host=args.host,
                    port=args.port,
                    max_queue=args.max_queue,
                    policy=args.queue_policy,
                    port_file=args.port_file,
                    ready=ready,
                )
            )
        except KeyboardInterrupt:
            print("repro serve: shutting down")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lintkit import (
        RULE_REGISTRY,
        LintSettings,
        lint_paths,
        render_json,
        render_text,
    )

    if args.list_rules:
        for name in sorted(RULE_REGISTRY):
            rule = RULE_REGISTRY[name]()
            print(f"{name:32s} {rule.default_severity.value:8s} {rule.description}")
        return 0
    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        default = Path("src")
        paths = [default if default.is_dir() else Path(".")]
    settings = LintSettings(select=args.select, ignore=args.ignore or [])
    try:
        result = lint_paths(paths, settings)
    except (FileNotFoundError, KeyError) as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    report = render_json(result) if args.format == "json" else render_text(result)
    if args.output:
        Path(args.output).write_text(report, encoding="utf-8")
    print(report, end="")
    return 1 if result.errors else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "mc":
        return _cmd_mc(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "perf":
        return _cmd_perf(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "lint":
        return _cmd_lint(args)
    return _cmd_table(args)


if __name__ == "__main__":
    raise SystemExit(main())
