"""Composite-inverter buffer-insertion sweep (Section IV-C of the paper).

Contango's initial inverter insertion re-runs the fast van Ginneken DP with a
series of composite inverters of increasing strength (e.g. 8x, 16x, 24x small
inverters) and keeps the *strongest* configuration that still fits within 90%
of the capacitance (power) limit -- the remaining 10% is reserved for the
later, more accurate optimizations (wiresizing, wiresnaking, buffer sizing).
Strong drivers minimize insertion delay, which both reduces the CLR objective
and shrinks the exposure of the tree to supply-voltage variations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.buffering.vanginneken import BufferInsertionResult, VanGinnekenInserter
from repro.cts.bufferlib import BufferType
from repro.cts.tree import ClockTree
from repro.geometry.obstacles import ObstacleSet
from repro.geometry.point import Point
from repro.geometry.rect import Rect

__all__ = ["BufferSizingSweepResult", "CandidateOutcome", "insert_buffers_with_sizing"]


@dataclass
class CandidateOutcome:
    """Summary of one candidate composite buffer tried by the sweep."""

    buffer: BufferType
    buffer_count: int
    total_capacitance: float
    capacitance_utilization: Optional[float]
    worst_delay_estimate: float
    slew_feasible: bool
    within_power_budget: bool


@dataclass
class BufferSizingSweepResult:
    """Result of the composite-inverter sweep."""

    tree: ClockTree
    chosen: Optional[CandidateOutcome]
    outcomes: List[CandidateOutcome] = field(default_factory=list)

    @property
    def chosen_buffer(self) -> Optional[BufferType]:
        return self.chosen.buffer if self.chosen is not None else None


def insert_buffers_with_sizing(
    tree: ClockTree,
    candidates: Sequence[BufferType],
    capacitance_limit: Optional[float] = None,
    power_reserve: float = 0.10,
    slew_limit: float = 100.0,
    slew_margin: float = 0.70,
    station_spacing: float = 250.0,
    obstacles: Optional[ObstacleSet] = None,
    die: Optional[Rect] = None,
    legality: Optional[Callable[[Point], bool]] = None,
    max_options: int = 32,
) -> BufferSizingSweepResult:
    """Buffer the tree with the strongest composite inverter fitting the budget.

    The input ``tree`` is not modified; the returned result carries a buffered
    clone built with the selected candidate.  Candidates are evaluated in the
    given order; the chosen one is the strongest (lowest output resistance)
    among those that are slew-feasible and stay within
    ``(1 - power_reserve) * capacitance_limit`` total capacitance.  If no
    candidate satisfies both constraints, the slew-feasible candidate with the
    smallest capacitance is chosen; failing that, the one with the smallest
    worst-case delay.
    """
    if not candidates:
        raise ValueError("at least one composite buffer candidate is required")
    if not 0.0 <= power_reserve < 1.0:
        raise ValueError("power_reserve must be in [0, 1)")

    budget = None
    if capacitance_limit is not None:
        budget = (1.0 - power_reserve) * capacitance_limit

    outcomes: List[CandidateOutcome] = []
    buffered_trees: List[ClockTree] = []
    for candidate in candidates:
        working = tree.clone()
        inserter = VanGinnekenInserter(
            buffer=candidate,
            slew_limit=slew_limit,
            slew_margin=slew_margin,
            station_spacing=station_spacing,
            obstacles=obstacles,
            die=die,
            legality=legality,
            max_options=max_options,
        )
        insertion: BufferInsertionResult = inserter.insert(working, apply=True)
        total_cap = working.total_capacitance()
        utilization = (
            total_cap / capacitance_limit if capacitance_limit is not None else None
        )
        outcome = CandidateOutcome(
            buffer=candidate,
            buffer_count=insertion.buffer_count,
            total_capacitance=total_cap,
            capacitance_utilization=utilization,
            worst_delay_estimate=insertion.worst_delay_estimate,
            slew_feasible=insertion.slew_feasible,
            within_power_budget=(budget is None or total_cap <= budget),
        )
        outcomes.append(outcome)
        buffered_trees.append(working)

    chosen_index = _choose(outcomes)
    return BufferSizingSweepResult(
        tree=buffered_trees[chosen_index],
        chosen=outcomes[chosen_index],
        outcomes=outcomes,
    )


def _choose(outcomes: Sequence[CandidateOutcome]) -> int:
    """Pick the strongest feasible candidate (see :func:`insert_buffers_with_sizing`)."""
    feasible = [
        i
        for i, outcome in enumerate(outcomes)
        if outcome.slew_feasible and outcome.within_power_budget
    ]
    if feasible:
        return min(feasible, key=lambda i: outcomes[i].buffer.output_res)
    slew_ok = [i for i, outcome in enumerate(outcomes) if outcome.slew_feasible]
    if slew_ok:
        return min(slew_ok, key=lambda i: outcomes[i].total_capacitance)
    return min(
        range(len(outcomes)), key=lambda i: outcomes[i].worst_delay_estimate
    )
