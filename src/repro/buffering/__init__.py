"""Buffer (inverter) insertion for clock trees.

* :mod:`repro.buffering.candidates` -- legal buffer-station generation along
  tree edges and the slew-driven maximum-load model.
* :mod:`repro.buffering.vanginneken` -- the van Ginneken dynamic program with
  non-dominated option pruning (the "fast buffer insertion" of the paper).
* :mod:`repro.buffering.fast_buffering` -- the composite-inverter sweep that
  re-runs the DP with increasingly strong parallel inverters and keeps the
  strongest solution within the power budget (Section IV-C).
"""

from repro.buffering.candidates import (
    BufferStation,
    enumerate_stations,
    max_drivable_capacitance,
)
from repro.buffering.vanginneken import BufferInsertionResult, VanGinnekenInserter
from repro.buffering.fast_buffering import (
    BufferSizingSweepResult,
    insert_buffers_with_sizing,
)

__all__ = [
    "BufferStation",
    "enumerate_stations",
    "max_drivable_capacitance",
    "BufferInsertionResult",
    "VanGinnekenInserter",
    "BufferSizingSweepResult",
    "insert_buffers_with_sizing",
]
