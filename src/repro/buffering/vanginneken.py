"""Van Ginneken-style buffer insertion with non-dominated option pruning.

The dynamic program walks the clock tree bottom-up, maintaining at every point
a small set of non-dominated *options* ``(cap, req, tau)``:

* ``cap`` -- capacitance seen looking downstream from the point,
* ``req`` -- required time (the negative of the worst accumulated delay to any
  downstream sink), the quantity van Ginneken maximizes,
* ``tau`` -- worst Elmore delay from the point to any downstream tap through
  the *unbuffered* region below it, used to estimate the output slew a buffer
  placed at this point would produce.

Candidate insertion points are the legal stations enumerated by
:mod:`repro.buffering.candidates` plus the internal tree nodes.  A single
buffer type is used per run -- Contango's composite-inverter sweep simply
re-runs the DP with different parallel compositions (see
:mod:`repro.buffering.fast_buffering`).

With one buffer type and pruned option lists the run time is within a small
factor of the O(n log n) algorithm of Shi & Li that the paper adopts, while
remaining straightforward to verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.units import LN9, OHM_FF_TO_PS
from repro.buffering.candidates import BufferStation, enumerate_stations
from repro.cts.bufferlib import BufferType
from repro.cts.tree import ClockTree
from repro.cts.wirelib import WireType
from repro.geometry.obstacles import ObstacleSet
from repro.geometry.point import Point
from repro.geometry.rect import Rect

__all__ = ["Option", "BufferInsertionResult", "VanGinnekenInserter"]


@dataclass(frozen=True)
class Option:
    """One non-dominated buffering solution for a subtree."""

    cap: float
    req: float
    tau: float
    nbuffers: int = 0
    site: Optional[Tuple[str, object]] = None
    derived_from: Tuple["Option", ...] = ()

    def dominates(self, other: "Option") -> bool:
        """True when this option is at least as good as ``other`` in every metric."""
        no_worse = (
            self.cap <= other.cap + 1e-12
            and self.req >= other.req - 1e-12
            and self.tau <= other.tau + 1e-12
        )
        strictly = (
            self.cap < other.cap - 1e-12
            or self.req > other.req + 1e-12
            or self.tau < other.tau - 1e-12
        )
        return no_worse and strictly


@dataclass
class BufferInsertionResult:
    """Outcome of one buffer-insertion run."""

    buffer: BufferType
    buffer_count: int
    worst_delay_estimate: float
    slew_feasible: bool
    node_sites: List[int] = field(default_factory=list)
    station_sites: List[BufferStation] = field(default_factory=list)


class VanGinnekenInserter:
    """Insert one buffer type into a clock tree, minimizing worst Elmore delay."""

    def __init__(
        self,
        buffer: BufferType,
        slew_limit: float = 100.0,
        slew_margin: float = 0.70,
        station_spacing: float = 250.0,
        obstacles: Optional[ObstacleSet] = None,
        die: Optional[Rect] = None,
        legality: Optional[Callable[[Point], bool]] = None,
        max_options: int = 32,
    ) -> None:
        if max_options < 4:
            raise ValueError("max_options must be at least 4")
        self.buffer = buffer
        self.slew_limit = slew_limit
        self.slew_margin = slew_margin
        self.station_spacing = station_spacing
        self.obstacles = obstacles
        self.die = die
        self.legality = legality
        self.max_options = max_options

    # ------------------------------------------------------------------
    def insert(self, tree: ClockTree, apply: bool = True) -> BufferInsertionResult:
        """Run the DP on ``tree`` and (optionally) apply the chosen buffering."""
        stations = enumerate_stations(
            tree,
            spacing=self.station_spacing,
            obstacles=self.obstacles,
            die=self.die,
            legality=self.legality,
        )
        options_at: Dict[int, List[Option]] = {}
        edge_top: Dict[int, List[Option]] = {}

        for node in tree.postorder():
            if node.is_sink:
                options_at[node.node_id] = [
                    Option(cap=tree.node_load_capacitance(node.node_id), req=0.0, tau=0.0)
                ]
            else:
                merged = self._merge_children(
                    [edge_top[child] for child in node.children]
                )
                if node.parent is not None and self._node_is_legal(tree, node.node_id):
                    merged = self._with_buffered_variants(
                        merged, ("node", node.node_id)
                    )
                options_at[node.node_id] = self._prune(merged)
            if node.parent is not None:
                edge_top[node.node_id] = self._propagate_edge(
                    tree, node.node_id, options_at[node.node_id], stations[node.node_id]
                )

        best = self._select_root_option(tree, options_at[tree.root_id])
        node_sites, station_sites = self._traceback(best)
        if apply:
            self._apply(tree, node_sites, station_sites)
        root_delay = -best.req + tree.source_resistance * best.cap * OHM_FF_TO_PS
        return BufferInsertionResult(
            buffer=self.buffer,
            buffer_count=best.nbuffers,
            worst_delay_estimate=root_delay,
            slew_feasible=self._source_slew_ok(tree, best),
            node_sites=node_sites,
            station_sites=station_sites,
        )

    # ------------------------------------------------------------------
    # DP building blocks
    # ------------------------------------------------------------------
    def _node_is_legal(self, tree: ClockTree, node_id: int) -> bool:
        position = tree.node(node_id).position
        if self.legality is not None:
            return self.legality(position)
        if self.die is not None and not self.die.contains_point(position):
            return False
        if self.obstacles is not None and self.obstacles.blocks_point(position):
            return False
        return True

    def _merge_children(self, option_lists: Sequence[List[Option]]) -> List[Option]:
        if not option_lists:
            return [Option(cap=0.0, req=0.0, tau=0.0)]
        current = option_lists[0]
        for other in option_lists[1:]:
            combined: List[Option] = []
            for a in current:
                for b in other:
                    combined.append(
                        Option(
                            cap=a.cap + b.cap,
                            req=min(a.req, b.req),
                            tau=max(a.tau, b.tau),
                            nbuffers=a.nbuffers + b.nbuffers,
                            derived_from=(a, b),
                        )
                    )
            current = self._prune(combined)
        return current

    def _propagate_edge(
        self,
        tree: ClockTree,
        edge_node: int,
        options: List[Option],
        stations: List[BufferStation],
    ) -> List[Option]:
        node = tree.node(edge_node)
        wire = node.wire_type
        length = node.edge_length()
        current = list(options)
        walked = 0.0
        for station in stations:
            current = [
                self._extend_wire(opt, wire, station.distance_from_child - walked)
                for opt in current
            ]
            walked = station.distance_from_child
            if station.legal:
                current = self._with_buffered_variants(current, ("station", station))
            current = self._prune(current)
        current = [self._extend_wire(opt, wire, length - walked) for opt in current]
        return self._prune(current)

    def _extend_wire(self, option: Option, wire: Optional[WireType], length: float) -> Option:
        if wire is None or length <= 0.0:
            return option
        res = wire.resistance(length)
        cap = wire.capacitance(length)
        delay = res * (cap / 2.0 + option.cap) * OHM_FF_TO_PS
        return Option(
            cap=option.cap + cap,
            req=option.req - delay,
            tau=option.tau + delay,
            nbuffers=option.nbuffers,
            derived_from=(option,),
        )

    def _with_buffered_variants(
        self, options: List[Option], site: Tuple[str, object]
    ) -> List[Option]:
        buffered: List[Option] = []
        tau_budget = self.slew_margin * self.slew_limit / LN9
        for opt in options:
            slew = LN9 * (self.buffer.output_res * opt.cap * OHM_FF_TO_PS + opt.tau)
            if slew > self.slew_margin * self.slew_limit and opt.tau <= tau_budget:
                # The slew problem is caused by accumulated capacitance, which a
                # buffer placed further down could have fixed -- other options
                # cover that, so this variant is not needed.  When ``tau`` alone
                # already exceeds the budget the violation is unavoidable (an
                # unbufferable span, e.g. a wire crossing a large blockage); a
                # buffer is still allowed here so the damage stays contained
                # instead of poisoning every option up to the root.
                continue
            gate_delay = (
                self.buffer.intrinsic_delay
                + self.buffer.output_res * opt.cap * OHM_FF_TO_PS
            )
            buffered.append(
                Option(
                    cap=self.buffer.input_cap,
                    req=opt.req - gate_delay,
                    tau=0.0,
                    nbuffers=opt.nbuffers + 1,
                    site=site,
                    derived_from=(opt,),
                )
            )
        return options + buffered

    def _prune(self, options: List[Option]) -> List[Option]:
        if len(options) <= 1:
            return options
        ordered = sorted(options, key=lambda o: (o.cap, -o.req, o.tau))
        kept: List[Option] = []
        for candidate in ordered:
            if any(existing.dominates(candidate) for existing in kept):
                continue
            kept.append(candidate)
        if len(kept) > self.max_options:
            # Downsample along the capacitance axis.  The low-cap (heavily
            # buffered) end of the frontier must survive -- its value only
            # becomes visible higher up the tree, when upstream wire and the
            # source resistance multiply against the accumulated cap -- so an
            # overflow cut by required time alone would be systematically
            # wrong.  Even spacing keeps both frontier ends and a
            # representative middle.
            step = (len(kept) - 1) / (self.max_options - 1)
            indices = sorted({round(i * step) for i in range(self.max_options)})
            kept = [kept[i] for i in indices]
        return kept

    def _select_root_option(self, tree: ClockTree, options: List[Option]) -> Option:
        def total_delay(opt: Option) -> float:
            return -opt.req + tree.source_resistance * opt.cap * OHM_FF_TO_PS

        feasible = [opt for opt in options if self._source_slew_ok(tree, opt)]
        pool = feasible if feasible else options
        return min(pool, key=total_delay)

    def _source_slew_ok(self, tree: ClockTree, option: Option) -> bool:
        slew = LN9 * (tree.source_resistance * option.cap * OHM_FF_TO_PS + option.tau)
        return slew <= self.slew_margin * self.slew_limit

    # ------------------------------------------------------------------
    # Traceback and application
    # ------------------------------------------------------------------
    def _traceback(self, best: Option) -> Tuple[List[int], List[BufferStation]]:
        node_sites: List[int] = []
        station_sites: List[BufferStation] = []
        stack = [best]
        while stack:
            option = stack.pop()
            if option.site is not None:
                kind, payload = option.site
                if kind == "node":
                    node_sites.append(payload)
                else:
                    station_sites.append(payload)
            stack.extend(option.derived_from)
        return node_sites, station_sites

    def _apply(
        self,
        tree: ClockTree,
        node_sites: Sequence[int],
        station_sites: Sequence[BufferStation],
    ) -> None:
        for node_id in node_sites:
            tree.place_buffer(node_id, self.buffer)
        by_edge: Dict[int, List[BufferStation]] = {}
        for station in station_sites:
            by_edge.setdefault(station.edge_node, []).append(station)
        for edge_node, stations in by_edge.items():
            stations.sort(key=lambda s: s.fraction_from_parent)
            previous_fraction = 0.0
            for station in stations:
                local_fraction = (station.fraction_from_parent - previous_fraction) / (
                    1.0 - previous_fraction
                )
                local_fraction = min(max(local_fraction, 1e-6), 1.0 - 1e-6)
                new_node = tree.split_edge(edge_node, local_fraction)
                tree.place_buffer(new_node, self.buffer)
                previous_fraction = station.fraction_from_parent
        tree.validate()
