"""Candidate buffer stations and the slew-driven maximum-load model.

Buffer insertion operates on a discretized set of *stations*: points along
every tree edge (plus the tree nodes themselves) where an inverter may be
placed.  The SoC obstacle model makes station legality non-trivial -- a point
inside a macro is not a legal buffer site even though the wire above it is
legal -- so stations carry their own legality flag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.analysis.units import LN9, OHM_FF_TO_PS
from repro.cts.bufferlib import BufferType
from repro.cts.tree import ClockTree
from repro.geometry.obstacles import ObstacleSet
from repro.geometry.point import Point
from repro.geometry.rect import Rect

__all__ = ["BufferStation", "enumerate_stations", "max_drivable_capacitance"]


def max_drivable_capacitance(
    buffer: BufferType,
    slew_limit: float,
    wire_delay_to_worst_tap: float = 0.0,
    margin: float = 0.9,
) -> float:
    """Largest downstream capacitance ``buffer`` may drive within the slew limit.

    The single-pole estimate of the far-tap slew is
    ``ln(9) * (R_out * C_down + tau_wire)`` where ``tau_wire`` is the Elmore
    delay from the buffer output to the worst tap through the unbuffered wire.
    Solving for ``C_down`` with a safety margin gives the cap budget used both
    by the insertion DP and by the obstacle-avoidance subtree test.
    """
    if slew_limit <= 0.0:
        raise ValueError("slew limit must be positive")
    if not 0.0 < margin <= 1.0:
        raise ValueError("margin must be in (0, 1]")
    budget = margin * slew_limit / LN9 - wire_delay_to_worst_tap
    if budget <= 0.0:
        return 0.0
    return budget / (buffer.output_res * OHM_FF_TO_PS)


@dataclass(frozen=True)
class BufferStation:
    """A candidate buffer location on the edge above ``edge_node``.

    ``distance_from_child`` is measured along the edge's electrical length
    (route plus snaking) starting at the child end, because the insertion DP
    sweeps each edge bottom-up.  ``fraction_from_parent`` is the same position
    expressed as the split fraction expected by
    :meth:`repro.cts.tree.ClockTree.split_edge`.
    """

    edge_node: int
    distance_from_child: float
    fraction_from_parent: float
    position: Point
    legal: bool


def enumerate_stations(
    tree: ClockTree,
    spacing: float = 250.0,
    obstacles: Optional[ObstacleSet] = None,
    die: Optional[Rect] = None,
    legality: Optional[Callable[[Point], bool]] = None,
) -> Dict[int, List[BufferStation]]:
    """Enumerate buffer stations on every edge of ``tree``.

    Stations are placed every ``spacing`` micrometres of electrical length,
    ordered from the child end toward the parent.  The returned dictionary
    maps each edge (by its child node id) to its stations; edges shorter than
    ``spacing`` get no interior station (the tree nodes themselves are always
    available to the DP as insertion points).
    """
    if spacing <= 0.0:
        raise ValueError("station spacing must be positive")

    def _is_legal(point: Point) -> bool:
        if legality is not None:
            return legality(point)
        if die is not None and not die.contains_point(point):
            return False
        if obstacles is not None and obstacles.blocks_point(point):
            return False
        return True

    stations: Dict[int, List[BufferStation]] = {}
    for node in tree.nodes():
        if node.parent is None:
            continue
        length = node.edge_length()
        edge_stations: List[BufferStation] = []
        if length > spacing:
            count = int(length // spacing)
            for k in range(1, count + 1):
                dist = k * spacing
                if dist >= length:
                    break
                fraction_from_parent = 1.0 - dist / length
                position = _position_along_route(node.route, node.route_length() * fraction_from_parent)
                edge_stations.append(
                    BufferStation(
                        edge_node=node.node_id,
                        distance_from_child=dist,
                        fraction_from_parent=fraction_from_parent,
                        position=position,
                        legal=_is_legal(position),
                    )
                )
        stations[node.node_id] = edge_stations
    return stations


def _position_along_route(route: List[Point], distance_from_start: float) -> Point:
    """Point at a given arc-length from the start of a polyline route."""
    if len(route) < 2:
        return route[0]
    remaining = max(distance_from_start, 0.0)
    for a, b in zip(route, route[1:]):
        seg = a.manhattan_to(b)
        if seg >= remaining and seg > 0.0:
            t = remaining / seg
            return Point(a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t)
        remaining -= seg
    return route[-1]
