"""The shared Improvement- & Violation-Checking (IVC) transaction engine.

Every Contango optimization pass follows the same accept/rollback discipline
(Figure 1 of the paper): snapshot the current solution, apply a batch of
moves, re-evaluate the network, and keep the batch only if the objective
improved without violating the slew or capacitance constraints.  The seed
reproduction re-implemented that loop in every pass; this module owns it
once:

* :class:`Transaction` -- a context manager over the tree's journal-revision
  checkpoints (:meth:`~repro.cts.tree.ClockTree.checkpoint` /
  :meth:`~repro.cts.tree.ClockTree.rollback_to`), so a rejected round costs
  O(touched nodes) instead of an O(n) clone and keeps the evaluator's
  stage-cache identity;
* :func:`ivc_round` -- one transactional round: checkpoint, propose,
  evaluate, triage (slew violation / capacitance limit / no improvement),
  commit or roll back;
* :class:`IvcEngine` -- the full pass lifecycle: baseline handling, the
  round loop with retry-at-reduced-aggressiveness after rejections, note
  bookkeeping, and :class:`~repro.core.tuning.PassResult` accounting.

A pass built on the engine supplies only its *proposal* (which moves to try
this round, scaled by :attr:`IvcState.aggressiveness`) and keeps zero
snapshot/rollback/accept code of its own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Protocol, Sequence

from repro.analysis.evaluator import (
    CandidateScore,
    ClockNetworkEvaluator,
    EvaluationReport,
)
from repro.core.tuning import PassResult, objective_value
from repro.cts.tree import ClockTree
from repro.obs import METRICS

__all__ = [
    "REASON_SLEW",
    "REASON_CAPACITANCE",
    "REASON_NO_IMPROVEMENT",
    "IvcGate",
    "Transaction",
    "IvcState",
    "IvcOutcome",
    "default_constraints",
    "capacitance_cap_constraints",
    "ivc_round",
    "IvcEngine",
]

REASON_SLEW = "slew violation"
REASON_CAPACITANCE = "capacitance limit exceeded"
REASON_NO_IMPROVEMENT = "no improvement"

#: A constraint triage: maps a candidate report to a rejection reason, or
#: ``None`` when the candidate satisfies every constraint.
Constraints = Callable[[EvaluationReport], Optional[str]]

class IvcGate(Protocol):
    """Optional acceptance-gate protocol of :func:`ivc_round`.

    See :class:`repro.core.variation.VariationGate` for the canonical
    implementation.  ``prime(tree, report)`` is called once before a pass's
    round loop; ``check(tree, report)`` runs only for rounds that already
    satisfied constraints *and* improved the objective -- with the tree
    still in candidate state -- and returns a rejection reason or ``None``;
    ``commit()`` is called after the round is accepted.  Gates are
    deliberately last in the triage order because they may be expensive (the
    variation gate runs a Monte Carlo evaluation per check).
    """

    def prime(self, tree: ClockTree, report: EvaluationReport) -> None:
        ...

    def check(self, tree: ClockTree, report: EvaluationReport) -> Optional[str]:
        ...

    def commit(self) -> None:
        ...


class Transaction:
    """Scoped wrapper around one :meth:`ClockTree.checkpoint` transaction.

    Commits on clean ``with``-exit, rolls back when the body raises, and
    exposes explicit :meth:`commit` / :meth:`rollback` for control flow that
    decides the outcome mid-body (the IVC triage).  Either call closes the
    transaction; later calls are no-ops.
    """

    def __init__(self, tree: ClockTree) -> None:
        self._tree = tree
        self._token: Optional[int] = None

    def __enter__(self) -> "Transaction":
        self._token = self._tree.checkpoint()
        return self

    def commit(self) -> None:
        """Accept the mutations made since the transaction opened."""
        if self._token is not None:
            self._tree.release(self._token)
            self._token = None

    def rollback(self) -> None:
        """Undo the mutations made since the transaction opened."""
        if self._token is not None:
            self._tree.rollback_to(self._token)
            self._token = None

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.rollback()
        else:
            self.commit()
        return False


def default_constraints(report: EvaluationReport) -> Optional[str]:
    """The paper's violation checks: tap slews, then the evaluator's cap limit."""
    if report.has_slew_violation:
        return REASON_SLEW
    if not report.within_capacitance_limit:
        return REASON_CAPACITANCE
    return None


def capacitance_cap_constraints(limit: Optional[float]) -> Constraints:
    """Violation checks with an explicit capacitance cap.

    Buffer sizing borrows capacitance against its own budget rather than the
    evaluator's, so it triages against the limit it was handed.
    """

    def check(report: EvaluationReport) -> Optional[str]:
        if report.has_slew_violation:
            return REASON_SLEW
        if limit is not None and report.total_capacitance > limit:
            return "over capacitance limit"
        return None

    return check


@dataclass
class IvcState:
    """Per-round state handed to a pass's proposal callback.

    ``iteration`` is the 1-based attempt counter (rejected rounds included);
    ``aggressiveness`` starts at 1.0 and is multiplied by the engine's decay
    after every rejected round, so a proposal that scales its move budget by
    it automatically retries with smaller steps; ``report`` is the evaluation
    of the last *accepted* state.
    """

    report: EvaluationReport
    iteration: int = 0
    aggressiveness: float = 1.0
    consecutive_rejections: int = 0


@dataclass
class IvcOutcome:
    """Result of one :func:`ivc_round`."""

    accepted: bool
    changed: int
    report: Optional[EvaluationReport]
    reason: Optional[str]


def ivc_round(
    tree: ClockTree,
    evaluator: ClockNetworkEvaluator,
    propose: Callable[[], int],
    *,
    objective: str,
    best_objective: float,
    constraints: Optional[Constraints] = None,
    gate: Optional[IvcGate] = None,
) -> IvcOutcome:
    """Run one transactional IVC round on ``tree``.

    Opens a checkpoint, calls ``propose`` (which mutates the tree and returns
    the number of moves it applied), and triages the result:

    * zero moves -- the round is vacuous; any stray edits are rolled back and
      no evaluation is spent (``report`` is ``None``);
    * a violated constraint or a non-improving objective -- the round is
      rolled back and the rejection ``reason`` reported;
    * a round that would be accepted but fails the optional acceptance
      ``gate`` (see the gate protocol note above; e.g. the Monte Carlo
      p95-skew check of :class:`repro.core.variation.VariationGate`) is
      likewise rolled back;
    * otherwise the round commits, ``report`` carries the new evaluation and
      the gate (when present) is told to promote its reference.

    The tree is restored exactly (content *and* journal revisions) on
    rollback, so the evaluator's stage cache still recognises every stage of
    the restored state.
    """
    tracer = evaluator.tracer
    if not tracer.enabled:
        return _ivc_round_inner(
            tree,
            evaluator,
            propose,
            objective=objective,
            best_objective=best_objective,
            constraints=constraints,
            gate=gate,
        )
    with tracer.span("ivc_round") as span:
        outcome = _ivc_round_inner(
            tree,
            evaluator,
            propose,
            objective=objective,
            best_objective=best_objective,
            constraints=constraints,
            gate=gate,
        )
        if span is not None:
            span.count("changed", outcome.changed)
            span.count("accepted" if outcome.accepted else "rejected")
    return outcome


def _ivc_round_inner(
    tree: ClockTree,
    evaluator: ClockNetworkEvaluator,
    propose: Callable[[], int],
    *,
    objective: str,
    best_objective: float,
    constraints: Optional[Constraints] = None,
    gate: Optional[IvcGate] = None,
) -> IvcOutcome:
    check = constraints or default_constraints
    with Transaction(tree) as txn:
        changed = propose()
        if changed == 0:
            txn.rollback()
            return IvcOutcome(accepted=False, changed=0, report=None, reason=None)
        candidate = evaluator.evaluate(tree)
        reason = check(candidate)
        if reason is None and objective_value(candidate, objective) >= best_objective:
            reason = REASON_NO_IMPROVEMENT
        if reason is None and gate is not None:
            reason = gate.check(tree, candidate)
        if reason is not None:
            txn.rollback()
            return IvcOutcome(accepted=False, changed=changed, report=candidate, reason=reason)
    if gate is not None:
        gate.commit()
    return IvcOutcome(accepted=True, changed=changed, report=candidate, reason=None)


class IvcEngine:
    """Owns one optimization pass's complete IVC lifecycle.

    Construction resolves the baseline (evaluating the tree only when the
    caller did not hand one over) and opens the
    :class:`~repro.core.tuning.PassResult`; :meth:`run` drives the round loop
    with the shared rejection policy; :meth:`abort` / :meth:`finish` close
    the result record.  ``engine.report`` always holds the evaluation of the
    last accepted state and is threaded into the result as ``final_report``.
    """

    def __init__(
        self,
        name: str,
        tree: ClockTree,
        evaluator: ClockNetworkEvaluator,
        *,
        objective: str,
        baseline: Optional[EvaluationReport] = None,
        constraints: Optional[Constraints] = None,
        gate: Optional[IvcGate] = None,
    ) -> None:
        self.tree = tree
        self.evaluator = evaluator
        self.objective = objective
        self.constraints = constraints or default_constraints
        self.gate = gate
        self._evals_before = evaluator.run_count
        self.report = baseline if baseline is not None else evaluator.evaluate(tree)
        initial_summary = self.report.summary()
        self.result = PassResult(
            name=name,
            improved=False,
            rounds=0,
            edges_changed=0,
            initial=initial_summary,
            final=initial_summary,
            evaluations_used=0,
        )

    # ------------------------------------------------------------------
    def abort(self, note: str) -> PassResult:
        """Close the pass before its loop starts (nothing to optimize on)."""
        self.result.notes.append(note)
        return self.finish()

    def finish(self) -> PassResult:
        """Seal the result record against the last accepted report."""
        self.result.final = self.report.summary()
        self.result.final_report = self.report
        self.result.evaluations_used = self.evaluator.run_count - self._evals_before
        return self.result

    # ------------------------------------------------------------------
    def run(
        self,
        propose: Callable[[IvcState], int],
        *,
        max_rounds: int,
        empty_note: Optional[str] = None,
        max_consecutive_rejections: int = 3,
        rejection_decay: float = 0.5,
        reject_note: str = "round rejected: {reason}",
    ) -> PassResult:
        """Drive up to ``max_rounds`` IVC rounds of ``propose`` and finish.

        A rejected round is rolled back, noted (``reject_note`` may reference
        ``{reason}`` and ``{iteration}``), and retried with the state's
        aggressiveness multiplied by ``rejection_decay`` -- a rejected batch
        usually means the pass's impact model overreached, not that no
        improving move exists, so retrying at lower aggressiveness recovers
        part of the head-room (the paper simply moves on).  The loop stops
        after ``max_consecutive_rejections`` rejections in a row, or on the
        first vacuous round (``empty_note`` records why).
        """
        state = IvcState(report=self.report)
        best_objective = objective_value(self.report, self.objective)
        if self.gate is not None:
            self.gate.prime(self.tree, self.report)
        for attempt in range(1, max_rounds + 1):
            state.iteration = attempt
            state.report = self.report
            outcome = ivc_round(
                self.tree,
                self.evaluator,
                lambda: propose(state),
                objective=self.objective,
                best_objective=best_objective,
                constraints=self.constraints,
                gate=self.gate,
            )
            if outcome.changed == 0:
                if empty_note is not None:
                    self.result.notes.append(empty_note)
                break
            if not outcome.accepted:
                self.result.notes.append(
                    reject_note.format(reason=outcome.reason, iteration=state.iteration)
                )
                METRICS.count("ivc.rounds_rejected")
                state.consecutive_rejections += 1
                state.aggressiveness *= rejection_decay
                if state.consecutive_rejections >= max_consecutive_rejections:
                    break
                continue
            METRICS.count("ivc.rounds_accepted")
            state.consecutive_rejections = 0
            self.report = outcome.report
            best_objective = objective_value(outcome.report, self.objective)
            self.result.rounds += 1
            self.result.edges_changed += outcome.changed
            self.result.improved = True
        return self.finish()

    # ------------------------------------------------------------------
    def run_batched(
        self,
        propose: Callable[[IvcState], int],
        *,
        max_rounds: int,
        candidate_scales: Sequence[float] = (1.0, 0.5, 0.25),
        empty_note: Optional[str] = None,
        max_consecutive_rejections: int = 3,
        rejection_decay: float = 0.5,
        reject_note: str = "round rejected: {reason}",
    ) -> PassResult:
        """Drive IVC rounds that score K candidate proposals per round.

        Each round calls ``propose`` once per entry of ``candidate_scales``,
        with the state's aggressiveness multiplied by that scale, and scores
        all candidates in one
        :meth:`~repro.analysis.evaluator.ClockNetworkEvaluator.evaluate_candidates`
        batch (one numpy pass when candidate batching is enabled; the same
        scores via serial evaluations when it is not -- the evaluator switch
        is the A/B toggle, this loop is oblivious to it).  The best candidate
        that satisfies the constraints and improves the objective is then
        re-applied through :func:`ivc_round`, which re-evaluates it
        authoritatively and runs the acceptance gate -- so the committed
        report never depends on the batched scoring path.  ``propose`` must
        therefore be deterministic for a given state: the winning move is
        replayed after its scoring rollback.

        Rejection bookkeeping (notes, aggressiveness decay, the consecutive
        rejection cap, the vacuous-round stop) matches :meth:`run`.
        """
        if not candidate_scales:
            raise ValueError("candidate_scales must not be empty")
        state = IvcState(report=self.report)
        best_objective = objective_value(self.report, self.objective)
        if self.gate is not None:
            self.gate.prime(self.tree, self.report)
        for attempt in range(1, max_rounds + 1):
            state.iteration = attempt
            state.report = self.report
            moves = [
                self._scaled_move(propose, state, scale) for scale in candidate_scales
            ]
            batch = self.evaluator.evaluate_candidates(self.tree, moves)
            if all(score.changed == 0 for score in batch):
                if empty_note is not None:
                    self.result.notes.append(empty_note)
                break
            viable: List[CandidateScore] = [
                score
                for score in batch
                if score.changed > 0
                and self.constraints(score) is None  # type: ignore[arg-type]
                and objective_value(score, self.objective) < best_objective
            ]
            if viable:
                winner = min(
                    viable,
                    key=lambda score: (
                        objective_value(score, self.objective),
                        score.index,
                    ),
                )
                outcome = ivc_round(
                    self.tree,
                    self.evaluator,
                    moves[winner.index],
                    objective=self.objective,
                    best_objective=best_objective,
                    constraints=self.constraints,
                    gate=self.gate,
                )
                if outcome.changed == 0:
                    # A non-deterministic propose went vacuous on replay;
                    # treat it like any other vacuous round.
                    if empty_note is not None:
                        self.result.notes.append(empty_note)
                    break
            else:
                # Every candidate was triaged away: report the first real
                # candidate's reason, mirroring a rejected ivc_round.
                reason: Optional[str] = REASON_NO_IMPROVEMENT
                for score in batch:
                    if score.changed > 0:
                        reason = (
                            self.constraints(score)  # type: ignore[arg-type]
                            or REASON_NO_IMPROVEMENT
                        )
                        break
                outcome = IvcOutcome(
                    accepted=False,
                    changed=max(score.changed for score in batch),
                    report=None,
                    reason=reason,
                )
            if not outcome.accepted:
                self.result.notes.append(
                    reject_note.format(reason=outcome.reason, iteration=state.iteration)
                )
                METRICS.count("ivc.rounds_rejected")
                state.consecutive_rejections += 1
                state.aggressiveness *= rejection_decay
                if state.consecutive_rejections >= max_consecutive_rejections:
                    break
                continue
            METRICS.count("ivc.rounds_accepted")
            state.consecutive_rejections = 0
            self.report = outcome.report
            best_objective = objective_value(outcome.report, self.objective)
            self.result.rounds += 1
            self.result.edges_changed += outcome.changed
            self.result.improved = True
        return self.finish()

    @staticmethod
    def _scaled_move(
        propose: Callable[[IvcState], int], state: IvcState, scale: float
    ) -> Callable[[], int]:
        """One candidate move: ``propose`` at a scaled aggressiveness."""

        def move() -> int:
            candidate_state = IvcState(
                report=state.report,
                iteration=state.iteration,
                aggressiveness=state.aggressiveness * scale,
                consecutive_rejections=state.consecutive_rejections,
            )
            return propose(candidate_state)

        return move
