"""The variation-aware IVC acceptance gate (Monte Carlo p95-skew check).

Contango's IVC step accepts a round of tuning moves when the *nominal*
objective improves without violating constraints -- but a move that trims
nominal skew can widen the skew *distribution* under supply/process
variation (a snake tuned to cancel a nominal mismatch, say, overshoots at a
perturbed corner).  The :class:`VariationGate` closes that gap: plugged into
:func:`repro.core.ivc.ivc_round`, it runs a seeded Monte Carlo yield
evaluation (:meth:`~repro.analysis.evaluator.ClockNetworkEvaluator.evaluate_yield`)
on every round that would otherwise be accepted and rejects the round when
the p95 skew regresses beyond a tolerance -- "improves nominal skew but
regresses p95 skew" is exactly the failure mode it screens out.

Every check re-uses the same derived RNG seed, so candidate and reference
distributions are compared under **common random numbers**: as long as a
round preserves the stage decomposition (all the wire passes do), the same
variation scenarios are replayed against both trees, which removes sampling
noise from the accept/reject decision; a round that changes the stage count
(trunk-buffer insertion) shifts the per-stage draw alignment and is compared
unpaired, so a nonzero ``tolerance_ps`` is advisable when gating such
passes.  Either way the gate is deterministic for a given ``--seed``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.evaluator import ClockNetworkEvaluator, EvaluationReport
from repro.analysis.variation import VariationModel
from repro.cts.tree import ClockTree
from repro.seeding import derive_rng

__all__ = ["REASON_P95_REGRESSION", "VariationGate"]

REASON_P95_REGRESSION = "p95 skew regression under variation"


class VariationGate:
    """Rejects IVC rounds whose Monte Carlo p95 skew regresses.

    The gate implements the optional hook protocol of
    :func:`repro.core.ivc.ivc_round`:

    * :meth:`prime` establishes the reference p95 from the incoming
      (last-accepted) tree before a pass's round loop starts;
    * :meth:`check` evaluates the candidate tree (called only for rounds
      that already passed constraints and improved the nominal objective)
      and returns a rejection reason or ``None``;
    * :meth:`commit` promotes the last checked candidate's p95 to the new
      reference once the round is accepted.

    One gate instance is shared by every variation-aware pass of a pipeline,
    so the reference threads through the flow exactly like the baseline
    evaluation report does.
    """

    def __init__(
        self,
        evaluator: ClockNetworkEvaluator,
        model: VariationModel,
        samples: int = 128,
        seed: Optional[int] = None,
        tolerance_ps: float = 0.0,
        skew_limit_ps: float = 7.5,
    ) -> None:
        if samples < 2:
            raise ValueError("the variation gate needs at least 2 samples")
        if tolerance_ps < 0.0:
            raise ValueError("tolerance_ps must be non-negative")
        self.evaluator = evaluator
        self.model = model
        self.samples = samples
        self.seed = seed
        self.tolerance_ps = tolerance_ps
        self.skew_limit_ps = skew_limit_ps
        self.reference_p95: Optional[float] = None
        self._pending_p95: Optional[float] = None
        self.checks = 0
        self.rejections = 0

    # ------------------------------------------------------------------
    def _p95(self, tree: ClockTree) -> float:
        # A fresh generator per evaluation replays the identical scenario set
        # (common random numbers): the comparison below is paired, not noisy.
        rng = derive_rng(self.seed, "variation-gate")
        report = self.evaluator.evaluate_yield(
            tree,
            self.model,
            samples=self.samples,
            rng=rng,
            skew_limit_ps=self.skew_limit_ps,
        )
        return report.skew_p95

    # -- ivc_round hook protocol ---------------------------------------
    def prime(self, tree: ClockTree, report: EvaluationReport) -> None:
        """Establish the reference distribution from the last accepted tree.

        Always re-evaluated: an ungated pass may have run (and changed the
        tree) since the last gated one, and a stale reference would wave
        through real p95 regressions.  Under common random numbers an
        unchanged tree reproduces the previous reference exactly, so
        re-priming in an all-gated pipeline costs one cheap batched
        evaluation and changes nothing.
        """
        self.reference_p95 = self._p95(tree)
        self._pending_p95 = None

    def check(self, tree: ClockTree, report: EvaluationReport) -> Optional[str]:
        """Screen a candidate that improved the nominal objective."""
        self.checks += 1
        p95 = self._p95(tree)
        if self.reference_p95 is not None and p95 > self.reference_p95 + self.tolerance_ps:
            self.rejections += 1
            self._pending_p95 = None
            return (
                f"{REASON_P95_REGRESSION} "
                f"({p95:.3f} ps > {self.reference_p95:.3f} ps reference)"
            )
        self._pending_p95 = p95
        return None

    def commit(self) -> None:
        """Promote the last accepted candidate's p95 to the new reference."""
        if self._pending_p95 is not None:
            self.reference_p95 = self._pending_p95
            self._pending_p95 = None

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """JSON-able bookkeeping for flow results and logs."""
        return {
            "checks": self.checks,
            "rejections": self.rejections,
            "samples": self.samples,
            "tolerance_ps": self.tolerance_ps,
            "reference_p95_ps": self.reference_p95,
            "model": self.model.describe(),
        }
