"""Bottom-level fine-tuning (Section IV-G of the paper).

After the two top-down skew-reduction phases the remaining skew is only a few
picoseconds, which is below the trust region of the coarse top-down moves.
Bottom-level tuning therefore edits only the wires *directly connected to
sinks*, where the slack of exactly one sink is affected by each move and the
impact can be predicted most accurately.  Both bottom-level wiresizing and
bottom-level wiresnaking are applied in each round, and the pass stops when a
SPICE-style re-evaluation no longer improves (the typical gain is small in
absolute terms but a significant fraction of the remaining skew -- and it is
eventually limited by rise/fall divergence of the corner sinks, which the
result notes report).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.evaluator import ClockNetworkEvaluator, EvaluationReport
from repro.core.ivc import IvcEngine, IvcGate, IvcState
from repro.core.slack import compute_sink_slacks
from repro.core.tuning import (
    PassResult,
    calibrate_downsize_model,
    calibrate_snake_model,
    stage_slew_headroom,
)
from repro.cts.tree import ClockTree
from repro.cts.wirelib import WireLibrary

__all__ = ["bottom_level_fine_tuning", "rise_fall_divergence"]


def rise_fall_divergence(report: EvaluationReport) -> bool:
    """True when the slowest/fastest sinks differ between rise and fall.

    The paper observes that once skew drops under ~5 ps the corner sinks of
    the two transitions usually diverge, at which point slowing a fast rising
    sink starts hurting falling skew and further improvement stalls.
    """
    timing = report.nominal
    rise = {s: v["rise"] for s, v in timing.latency.items()}
    fall = {s: v["fall"] for s, v in timing.latency.items()}
    rise_extremes = (max(rise, key=rise.get), min(rise, key=rise.get))
    fall_extremes = (max(fall, key=fall.get), min(fall, key=fall.get))
    return rise_extremes != fall_extremes


def bottom_level_fine_tuning(
    tree: ClockTree,
    evaluator: ClockNetworkEvaluator,
    wirelib: WireLibrary,
    baseline: Optional[EvaluationReport] = None,
    objective: str = "skew",
    corners: Optional[Sequence[str]] = None,
    unit_length: float = 5.0,
    max_rounds: int = 12,
    safety: float = 0.95,
    min_slack: float = 0.25,
    gate: Optional[IvcGate] = None,
    candidate_scales: Optional[Sequence[float]] = None,
) -> PassResult:
    """Run bottom-level wiresizing + wiresnaking on ``tree`` in place.

    ``min_slack`` (ps) is the smallest per-sink slow-down slack worth spending;
    anything below it is within evaluation noise.  ``gate`` is an optional
    IVC acceptance gate (see :class:`repro.core.variation.VariationGate`).
    ``candidate_scales`` switches the loop to batched best-of-K rounds (one
    candidate per scale, see :meth:`~repro.core.ivc.IvcEngine.run_batched`);
    ``None`` keeps the classic one-proposal-per-round loop.
    """
    engine = IvcEngine(
        "bottom_level_fine_tuning",
        tree,
        evaluator,
        objective=objective,
        baseline=baseline,
        gate=gate,
    )
    sink_edges = [s.node_id for s in tree.sinks()]
    probe_edges = _independent_probe_edges(tree, sink_edges, count=5)
    snake_model = calibrate_snake_model(
        tree, evaluator, engine.report, unit_length, edge_ids=probe_edges
    )
    downsize_model = calibrate_downsize_model(
        tree, evaluator, wirelib, engine.report, edge_ids=probe_edges
    )
    if snake_model is None:
        return engine.abort("bottom-level snake impact model could not be calibrated")

    def propose(state: IvcState) -> int:
        slacks = compute_sink_slacks(state.report, corners=corners)
        headroom = stage_slew_headroom(tree, state.report)
        snake_model.refresh(tree)
        if downsize_model is not None:
            downsize_model.refresh(tree)
        return _tune_sink_edges(
            tree,
            wirelib,
            slacks.slow,
            headroom,
            snake_model,
            downsize_model,
            unit_length,
            safety * state.aggressiveness,
            min_slack,
        )

    if candidate_scales is not None:
        result = engine.run_batched(
            propose,
            max_rounds=max_rounds,
            candidate_scales=tuple(candidate_scales),
            empty_note="no sink edge had usable slack left",
        )
    else:
        result = engine.run(
            propose, max_rounds=max_rounds, empty_note="no sink edge had usable slack left"
        )
    if rise_fall_divergence(engine.report):
        result.notes.append("rise/fall corner sinks diverged; further gains limited")
    return result


def _independent_probe_edges(tree: ClockTree, sink_edges, count: int):
    """A few sink edges with distinct parents, used for sensitivity calibration."""
    chosen = []
    seen_parents = set()
    for node_id in sorted(sink_edges, key=lambda n: -tree.node(n).edge_length()):
        parent = tree.node(node_id).parent
        if parent in seen_parents:
            continue
        seen_parents.add(parent)
        chosen.append(node_id)
        if len(chosen) >= count:
            break
    return chosen


def _tune_sink_edges(
    tree: ClockTree,
    wirelib: WireLibrary,
    slow_slack,
    slew_headroom,
    snake_model,
    downsize_model,
    unit_length: float,
    safety: float,
    min_slack: float,
) -> int:
    """Apply one round of per-sink slow-down moves; returns edges touched."""
    changed = 0
    for sink in tree.sinks():
        node_id = sink.node_id
        slack = slow_slack.get(node_id, 0.0)
        if slack < min_slack:
            continue
        budget = min(safety * slack, slew_headroom.max_delay(node_id))
        node = tree.node(node_id)
        # Prefer downsizing when the whole-edge impact fits in the budget;
        # otherwise (or additionally) spend the remainder on snaking units.
        if (
            downsize_model is not None
            and node.wire_type is not None
            and wirelib.can_downsize(node.wire_type)
            and node.edge_length() > 0.0
        ):
            predicted = downsize_model.predicted_delay(tree, wirelib, node_id)
            if 0.0 < predicted <= budget:
                tree.set_wire_type(node_id, wirelib.narrower(node.wire_type))
                slew_headroom.consume_delay(node_id, predicted)
                budget -= predicted
                changed += 1
        max_length = snake_model.length_for_delay(tree, node_id, budget)
        units = int(max_length // unit_length)
        if units > 0:
            extra = units * unit_length
            predicted = snake_model.delay_for_length(tree, node_id, extra)
            tree.add_snake(node_id, extra)
            slew_headroom.consume_delay(node_id, predicted)
            changed += 1
    return changed
