"""Slow-down and speed-up slacks for clock trees (Section III of the paper).

Definitions 1 and 2 of the paper introduce, for every sink ``s`` and every
tree edge ``e``:

* slow-down slack  ``Slack_slow(s) = Tmax - T(s)``  /  ``Slack_slow(e) = min over downstream sinks``,
* speed-up slack   ``Slack_fast(s) = T(s) - Tmin``  /  ``Slack_fast(e) = min over downstream sinks``,

the amounts by which a sink (edge) may be unilaterally slowed down (sped up)
without increasing the clock skew.  Lemma 1 gives the O(n) propagation of sink
slacks to edge slacks, Lemma 2 the monotonicity along root-to-sink paths, and
Proposition 1 the per-edge budgets ``Delta(e) = Slack(e) - Slack(parent(e))``
whose application drives every skew optimization in Contango: slowing each
edge down by exactly ``Delta_slow(e)`` produces a zero-skew tree.

Slacks are computed per transition (rise/fall) and, optionally, per corner;
edge slacks take the minimum so that a tuning move is safe for every
transition and corner simultaneously (Section III-B, last paragraph).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.evaluator import EvaluationReport
from repro.cts.tree import ClockTree

__all__ = ["SinkSlacks", "SlackAnnotation", "compute_sink_slacks", "annotate_tree_slacks"]


@dataclass(frozen=True)
class SinkSlacks:
    """Per-sink slow-down and speed-up slacks (already minimized over transitions)."""

    slow: Dict[int, float]
    fast: Dict[int, float]

    def worst_sink(self) -> int:
        """The sink with zero slow-down slack (the slowest sink)."""
        return min(self.slow, key=lambda node_id: self.slow[node_id])

    def fastest_sink(self) -> int:
        """The sink with zero speed-up slack (the fastest sink)."""
        return min(self.fast, key=lambda node_id: self.fast[node_id])


@dataclass
class SlackAnnotation:
    """Edge slacks and per-edge budgets for a specific tree and timing report.

    All dictionaries are keyed by the *child* node id of the edge (the
    convention used throughout :mod:`repro.cts.tree`).  The root carries a
    pseudo-entry with zero slack so that ``delta`` is defined for top edges.
    """

    sink: SinkSlacks
    edge_slow: Dict[int, float] = field(default_factory=dict)
    edge_fast: Dict[int, float] = field(default_factory=dict)
    delta_slow: Dict[int, float] = field(default_factory=dict)
    delta_fast: Dict[int, float] = field(default_factory=dict)

    def normalized_edge_slow(self) -> Dict[int, float]:
        """Edge slow-down slacks scaled to [0, 1] (used for the Figure 3 gradient)."""
        if not self.edge_slow:
            return {}
        peak = max(self.edge_slow.values())
        if peak <= 0.0:
            return {node_id: 0.0 for node_id in self.edge_slow}
        return {node_id: value / peak for node_id, value in self.edge_slow.items()}


def compute_sink_slacks(
    report: EvaluationReport,
    corners: Optional[Sequence[str]] = None,
    transitions: Iterable[str] = ("rise", "fall"),
) -> SinkSlacks:
    """Compute per-sink slacks from an evaluation report (Definition 1).

    ``corners`` selects which corners participate; by default only the
    nominal (fast) corner is used, which matches the nominal-skew optimization
    steps.  Passing several corners yields the conservative multi-corner
    slacks of Section III-B: the minimum over corners of the per-corner slack.
    """
    corner_names = list(corners) if corners is not None else [report.fast_corner]
    transition_list = list(transitions)
    slow: Dict[int, float] = {}
    fast: Dict[int, float] = {}
    for corner_name in corner_names:
        timing = report.corners[corner_name]
        for transition in transition_list:
            latencies = {
                sink_id: values[transition] for sink_id, values in timing.latency.items()
            }
            tmax = max(latencies.values())
            tmin = min(latencies.values())
            for sink_id, latency in latencies.items():
                slow_slack = tmax - latency
                fast_slack = latency - tmin
                slow[sink_id] = min(slow.get(sink_id, float("inf")), slow_slack)
                fast[sink_id] = min(fast.get(sink_id, float("inf")), fast_slack)
    return SinkSlacks(slow=slow, fast=fast)


def annotate_tree_slacks(
    tree: ClockTree,
    report: EvaluationReport,
    corners: Optional[Sequence[str]] = None,
    transitions: Iterable[str] = ("rise", "fall"),
) -> SlackAnnotation:
    """Propagate sink slacks to every edge (Lemma 1) and compute the deltas (Prop. 1)."""
    sink_slacks = compute_sink_slacks(report, corners=corners, transitions=transitions)
    annotation = SlackAnnotation(sink=sink_slacks)

    downstream = tree.downstream_sinks_map()
    for node in tree.nodes():
        sinks_below = downstream[node.node_id]
        if not sinks_below:
            continue
        annotation.edge_slow[node.node_id] = min(
            sink_slacks.slow[s] for s in sinks_below
        )
        annotation.edge_fast[node.node_id] = min(
            sink_slacks.fast[s] for s in sinks_below
        )

    for node in tree.nodes():
        if node.node_id not in annotation.edge_slow:
            continue
        if node.parent is None:
            # The root "edge" has, by Lemma 1, the global minimum slack, which
            # is always zero; keep it explicit for delta computation below.
            continue
        parent_slow = annotation.edge_slow.get(node.parent, 0.0)
        parent_fast = annotation.edge_fast.get(node.parent, 0.0)
        annotation.delta_slow[node.node_id] = (
            annotation.edge_slow[node.node_id] - parent_slow
        )
        annotation.delta_fast[node.node_id] = (
            annotation.edge_fast[node.node_id] - parent_fast
        )
    return annotation
