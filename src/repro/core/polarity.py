"""Sink-polarity correction (Section IV-D, Proposition 2 of the paper).

The fast buffer-insertion algorithm ignores inverter polarity, so roughly half
of the sinks end up receiving an inverted clock.  Contango repairs this with a
bottom-up marking pass: a node is *marked* when every sink below it needs a
polarity flip but its parent's subtree does not (i.e. the node is a maximal
uniformly-inverted subtree root).  Placing one inverter at every marked node
corrects all sinks, never stacks more than one corrective inverter on any
root-to-sink path, and -- because the marked nodes form the unique minimal
antichain covering the inverted sinks -- uses the minimum possible number of
inverters (Proposition 2).  Two naive strategies from the paper's discussion
are also provided for comparison (they motivate Table II).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.buffering.candidates import max_drivable_capacitance
from repro.cts.bufferlib import BufferType
from repro.cts.tree import ClockTree, TreeNode

__all__ = ["PolarityCorrectionResult", "count_inverted_sinks", "correct_sink_polarity"]


@dataclass
class PolarityCorrectionResult:
    """Outcome of one polarity-correction run."""

    strategy: str
    inverted_sinks_before: int
    inverted_sinks_after: int
    inverters_added: int
    corrected_nodes: List[int] = field(default_factory=list)


def count_inverted_sinks(tree: ClockTree) -> int:
    """Number of sinks whose delivered polarity differs from the required one."""
    return len(tree.wrong_polarity_sinks())


def correct_sink_polarity(
    tree: ClockTree,
    inverter: BufferType,
    strategy: str = "subtree",
    slew_limit: float = 100.0,
    stronger_inverters: Optional[Sequence[BufferType]] = None,
) -> PolarityCorrectionResult:
    """Correct all inverted sinks of ``tree`` in place.

    Strategies
    ----------
    ``"per-sink"``
        Place one inverter immediately above every inverted sink (the simple
        patch the paper mentions first; adds ~n/2 inverters on average).
    ``"subtree"``
        The bottom-up marking algorithm of Proposition 2 (minimal count).

    ``stronger_inverters`` optionally provides larger composites; when a
    marked subtree's capacitance exceeds what ``inverter`` can drive within
    the slew limit, the smallest sufficient composite from this list is used
    instead, keeping the correction slew-clean.
    """
    if not inverter.inverting:
        raise ValueError("polarity correction requires an inverting buffer")
    before = count_inverted_sinks(tree)
    if before == 0:
        return PolarityCorrectionResult(
            strategy=strategy,
            inverted_sinks_before=0,
            inverted_sinks_after=0,
            inverters_added=0,
        )

    if strategy == "per-sink":
        corrected = _correct_per_sink(tree, inverter)
    elif strategy == "subtree":
        corrected = _correct_subtrees(
            tree, inverter, slew_limit, list(stronger_inverters or [])
        )
    else:
        raise ValueError(f"unknown polarity-correction strategy {strategy!r}")

    after = count_inverted_sinks(tree)
    return PolarityCorrectionResult(
        strategy=strategy,
        inverted_sinks_before=before,
        inverted_sinks_after=after,
        inverters_added=len(corrected),
        corrected_nodes=corrected,
    )


# ----------------------------------------------------------------------
def _correct_per_sink(tree: ClockTree, inverter: BufferType) -> List[int]:
    corrected: List[int] = []
    for sink in tree.wrong_polarity_sinks():
        corrected.append(_insert_inverter_above(tree, sink.node_id, inverter))
    return corrected


def _correct_subtrees(
    tree: ClockTree,
    inverter: BufferType,
    slew_limit: float,
    stronger: List[BufferType],
) -> List[int]:
    polarities = tree.sink_polarities()

    # A subtree is "uniformly wrong" when every sink below needs a flip,
    # "uniformly right" when none does; anything else is mixed.
    WRONG, RIGHT, MIXED = 1, 0, 2
    state: Dict[int, int] = {}
    for node in tree.postorder():
        if node.is_sink:
            wrong = polarities[node.node_id] != node.sink.required_polarity
            state[node.node_id] = WRONG if wrong else RIGHT
            continue
        child_states = {state[c] for c in node.children}
        if child_states == {WRONG}:
            state[node.node_id] = WRONG
        elif child_states == {RIGHT}:
            state[node.node_id] = RIGHT
        else:
            state[node.node_id] = MIXED

    marked: List[int] = []
    for node in tree.preorder():
        if state[node.node_id] != WRONG:
            continue
        parent = tree.parent_of(node.node_id)
        if parent is None or state[parent.node_id] != WRONG:
            marked.append(node.node_id)

    corrected: List[int] = []
    for node_id in marked:
        chosen = _pick_inverter(tree, node_id, inverter, slew_limit, stronger)
        corrected.append(_insert_inverter_above(tree, node_id, chosen, drive_subtree=True))
    return corrected


def _pick_inverter(
    tree: ClockTree,
    node_id: int,
    inverter: BufferType,
    slew_limit: float,
    stronger: List[BufferType],
) -> BufferType:
    """Choose the smallest inverter that can drive the marked subtree cleanly.

    The relevant load is the *stage* the new inverter will drive: the wires
    and pins below the insertion point up to (and including) the next buffer
    inputs, not the whole electrical subtree.
    """
    load = tree.node_load_capacitance(node_id)
    stack = [] if tree.node(node_id).has_buffer else list(tree.node(node_id).children)
    while stack:
        current = tree.node(stack.pop())
        load += tree.edge_capacitance(current.node_id)
        load += tree.node_load_capacitance(current.node_id)
        if not current.has_buffer:
            stack.extend(current.children)
    candidates = [inverter] + sorted(stronger, key=lambda b: b.total_cap)
    for candidate in candidates:
        if load <= max_drivable_capacitance(candidate, slew_limit):
            return candidate
    return candidates[-1]


def _insert_inverter_above(
    tree: ClockTree,
    node_id: int,
    inverter: BufferType,
    drive_subtree: bool = False,
    stub_length: float = 1.0,
) -> int:
    """Insert an inverter that flips the polarity of ``node_id``'s subtree.

    When the node is an internal node without a buffer the inverter is placed
    directly on it (a buffer at a node drives everything below it).  Sinks,
    buffered nodes and the root child case are handled by splitting the parent
    edge just above the node and placing the inverter on the new node.
    """
    node = tree.node(node_id)
    if drive_subtree and not node.is_sink and not node.has_buffer:
        tree.place_buffer(node_id, inverter)
        return node_id
    if node.parent is None:
        raise ValueError("cannot insert a polarity-correcting inverter above the root")
    length = node.edge_length()
    if length <= stub_length:
        fraction = 0.5
    else:
        fraction = 1.0 - stub_length / length
    new_node = tree.split_edge(node_id, fraction)
    tree.place_buffer(new_node, inverter)
    return new_node
