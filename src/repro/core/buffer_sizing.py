"""Iterative buffer sizing with capacitance borrowing (Section IV-I of the paper).

Stronger buffers reduce insertion delay and, with it, the network's exposure
to supply-voltage variation (the CLR objective) -- but every upsizing costs
input/output capacitance against the power limit and risks slew violations on
the upstream stage.  Contango therefore sizes buffers in a carefully bounded
loop:

* at iteration ``i`` the selected buffers grow by at most
  ``p_i = 100 / (i + 3)`` percent (25%, 20%, 16.7%, ...),
* the trunk chain is sized first (it affects all sinks equally, so skew is
  preserved), then the first few levels of branches below the trunk,
* capacitance spent above is *borrowed back* by downsizing the bottom-level
  buffers (those driving only sinks), keeping the total within the limit,
* every iteration runs through the shared IVC engine: it is accepted only if
  the objective improves without slew violations and within the capacitance
  budget; a rejected iteration is rolled back and retried with the growth
  step halved (a rejection usually means the step overshot the slew
  headroom, not that no beneficial upsizing exists).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.analysis.evaluator import ClockNetworkEvaluator, EvaluationReport
from repro.core.buffer_sliding import find_trunk_chain
from repro.core.ivc import IvcEngine, IvcGate, IvcState, capacitance_cap_constraints
from repro.core.tuning import PassResult
from repro.cts.tree import ClockTree

__all__ = [
    "buffer_depths",
    "bottom_level_buffers",
    "iterative_buffer_sizing",
]


def buffer_depths(tree: ClockTree) -> Dict[int, int]:
    """Number of buffered ancestors (inclusive of the node itself) per buffered node."""
    depths: Dict[int, int] = {}
    counts: Dict[int, int] = {}
    for node in tree.preorder():
        inherited = 0 if node.parent is None else counts[node.parent]
        own = inherited + (1 if node.has_buffer else 0)
        counts[node.node_id] = own
        if node.has_buffer:
            depths[node.node_id] = own
    return depths


def bottom_level_buffers(tree: ClockTree) -> List[int]:
    """Buffered nodes with no buffered descendants (they drive only sinks/wire)."""
    has_buffered_descendant: Dict[int, bool] = {}
    for node in tree.postorder():
        flag = False
        for child in node.children:
            child_node = tree.node(child)
            if child_node.has_buffer or has_buffered_descendant[child]:
                flag = True
        has_buffered_descendant[node.node_id] = flag
    return [
        node.node_id
        for node in tree.nodes()
        if node.has_buffer and not has_buffered_descendant[node.node_id]
    ]


def iterative_buffer_sizing(
    tree: ClockTree,
    evaluator: ClockNetworkEvaluator,
    capacitance_limit: Optional[float] = None,
    baseline: Optional[EvaluationReport] = None,
    objective: str = "clr",
    levels_after_branch: int = 4,
    max_iterations: int = 8,
    min_bottom_scale: float = 0.6,
    max_consecutive_rejections: int = 3,
    gate: Optional[IvcGate] = None,
    candidate_scales: Optional[Sequence[float]] = None,
) -> PassResult:
    """Iteratively upsize trunk (and upper-branch) buffers on ``tree`` in place.

    ``max_consecutive_rejections`` bounds the retry-with-halved-growth policy
    inherited from the IVC engine; ``1`` reproduces the historical
    stop-on-first-rejection behavior.  ``gate`` is an optional IVC acceptance
    gate (see :class:`repro.core.variation.VariationGate`).
    ``candidate_scales`` switches the loop to batched best-of-K rounds (one
    growth step per scale, see :meth:`~repro.core.ivc.IvcEngine.run_batched`);
    ``None`` keeps the classic one-proposal-per-round loop.
    """
    engine = IvcEngine(
        "iterative_buffer_sizing",
        tree,
        evaluator,
        objective=objective,
        baseline=baseline,
        constraints=capacitance_cap_constraints(capacitance_limit),
        gate=gate,
    )
    if not tree.buffers():
        return engine.abort("tree has no buffers to size")

    def propose(state: IvcState) -> int:
        growth = 1.0 + state.aggressiveness / (state.iteration + 3)
        return _apply_sizing_step(
            tree,
            growth,
            levels_after_branch,
            capacitance_limit,
            min_bottom_scale,
        )

    if candidate_scales is not None:
        return engine.run_batched(
            propose,
            max_rounds=max_iterations,
            candidate_scales=tuple(candidate_scales),
            empty_note="no buffer eligible for upsizing",
            max_consecutive_rejections=max_consecutive_rejections,
            reject_note="iteration {iteration} rejected: {reason}",
        )
    return engine.run(
        propose,
        max_rounds=max_iterations,
        empty_note="no buffer eligible for upsizing",
        max_consecutive_rejections=max_consecutive_rejections,
        reject_note="iteration {iteration} rejected: {reason}",
    )


# ----------------------------------------------------------------------
def _apply_sizing_step(
    tree: ClockTree,
    growth: float,
    levels_after_branch: int,
    capacitance_limit: Optional[float],
    min_bottom_scale: float,
) -> int:
    """Upsize trunk + upper-branch buffers by ``growth``; borrow capacitance if needed."""
    trunk_nodes: Set[int] = {
        node_id for node_id in find_trunk_chain(tree) if tree.node(node_id).has_buffer
    }
    depths = buffer_depths(tree)
    trunk_depth = max((depths[n] for n in trunk_nodes), default=0)
    upper_branch = {
        node_id
        for node_id, depth in depths.items()
        if node_id not in trunk_nodes and depth <= trunk_depth + levels_after_branch
    }
    bottom = set(bottom_level_buffers(tree)) - trunk_nodes - upper_branch

    touched = 0
    for node_id in trunk_nodes | upper_branch:
        node = tree.node(node_id)
        tree.place_buffer(node_id, node.buffer.scaled(growth))
        touched += 1
    if touched == 0:
        return 0

    if capacitance_limit is not None:
        overshoot = tree.total_capacitance() - capacitance_limit
        if overshoot > 0.0 and bottom:
            _borrow_capacitance(tree, bottom, overshoot, min_bottom_scale)
    return touched


def _borrow_capacitance(
    tree: ClockTree, bottom: Set[int], overshoot: float, min_scale: float
) -> None:
    """Downsize bottom-level buffers to recover ``overshoot`` fF of capacitance."""
    bottom_caps = {node_id: tree.node(node_id).buffer.total_cap for node_id in bottom}
    total_bottom = sum(bottom_caps.values())
    if total_bottom <= 0.0:
        return
    scale = max(1.0 - overshoot / total_bottom, min_scale)
    if scale >= 1.0:
        return
    for node_id in bottom:
        node = tree.node(node_id)
        tree.place_buffer(node_id, node.buffer.scaled(scale))
