"""Buffer sliding and interleaving on the tree trunk (Section IV-H of the paper).

DME trees for a boundary clock source contain a long *trunk*: the wire from
the source to the geometric centre of the sinks, after which the tree branches
out.  The trunk contributes a third to a half of the total sink latency and is
shared by every sink, so strengthening its buffer chain improves robustness to
supply variation (CLR) with almost no effect on skew.  Before upsizing,
Contango first re-arranges the trunk inverters:

* *sliding* an inverter up the trunk reduces the wire capacitance its
  predecessor must drive, creating headroom for upsizing without slew
  violations, and
* *interleaving* inserts an extra inverter when two inverters end up too far
  apart after sliding.

This module implements both as a single robust operation: the trunk inverters
are re-spaced uniformly with a pitch bounded by the slew-free span of the
chosen composite inverter, and an extra inverter is added whenever the pitch
bound requires it.  Polarity is preserved by keeping the number of trunk
inverters the same parity as before (interleaving adds inverters in pairs when
needed).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis.evaluator import ClockNetworkEvaluator, EvaluationReport
from repro.buffering.candidates import max_drivable_capacitance
from repro.core.ivc import IvcEngine, IvcGate, IvcState
from repro.core.tuning import PassResult
from repro.cts.bufferlib import BufferType
from repro.cts.tree import ClockTree

__all__ = ["find_trunk_chain", "trunk_buffer_nodes", "slide_and_interleave_trunk"]


def find_trunk_chain(tree: ClockTree) -> List[int]:
    """Node ids of the trunk: the single-child chain from the root to the first branch.

    The returned list starts with the root id and ends with the first node
    that has more than one child (or with a sink for degenerate trees).  Edges
    between consecutive entries form the trunk wires.
    """
    chain = [tree.root_id]
    current = tree.root
    while len(current.children) == 1:
        child = tree.node(current.children[0])
        chain.append(child.node_id)
        if child.is_sink:
            break
        current = child
    return chain


def trunk_buffer_nodes(tree: ClockTree) -> List[int]:
    """Ids of trunk nodes that currently carry a buffer."""
    return [node_id for node_id in find_trunk_chain(tree) if tree.node(node_id).has_buffer]


def slide_and_interleave_trunk(
    tree: ClockTree,
    evaluator: ClockNetworkEvaluator,
    buffer: Optional[BufferType] = None,
    baseline: Optional[EvaluationReport] = None,
    objective: str = "clr",
    slew_limit: Optional[float] = None,
    spacing_margin: float = 0.85,
    gate: Optional[IvcGate] = None,
    candidate_scales: Optional[Sequence[float]] = None,
) -> PassResult:
    """Re-space (and possibly add) trunk inverters; accept only if it helps.

    The pass runs as a single round of the shared IVC engine: it rebuilds the
    trunk buffer chain with uniform pitch inside a tree transaction,
    re-evaluates, and rolls back unless the objective (CLR by default)
    improved without introducing slew violations -- the standard IVC step.
    ``gate`` is an optional IVC acceptance gate (see
    :class:`repro.core.variation.VariationGate`).

    ``candidate_scales`` is accepted for pipeline-level uniformity with the
    other passes but deliberately ignored: the single respacing proposal does
    not read the state's aggressiveness, so K scaled candidates would be K
    identical moves and batching them buys nothing.
    """
    del candidate_scales  # single-shot, aggressiveness-independent proposal
    engine = IvcEngine(
        "trunk_buffer_sliding",
        tree,
        evaluator,
        objective=objective,
        baseline=baseline,
        gate=gate,
    )
    chain = find_trunk_chain(tree)
    if len(chain) < 2:
        return engine.abort("tree has no trunk to rebalance")

    existing_buffers = trunk_buffer_nodes(tree)
    chosen_buffer = buffer or _dominant_trunk_buffer(tree, existing_buffers)
    if chosen_buffer is None:
        return engine.abort("no trunk buffers and no buffer type supplied")

    limit = slew_limit if slew_limit is not None else evaluator.config.slew_limit

    def propose(state: IvcState) -> int:
        return _respace_trunk_buffers(tree, chain, chosen_buffer, limit, spacing_margin)

    return engine.run(
        propose,
        max_rounds=1,
        reject_note="trunk rebalancing rejected by IVC",
    )


# ----------------------------------------------------------------------
def _dominant_trunk_buffer(
    tree: ClockTree, buffer_nodes: Sequence[int]
) -> Optional[BufferType]:
    if buffer_nodes:
        # Use the strongest buffer already present on the trunk.
        return min(
            (tree.node(n).buffer for n in buffer_nodes), key=lambda b: b.output_res
        )
    buffers = tree.buffers()
    if not buffers:
        return None
    return min((n.buffer for n in buffers), key=lambda b: b.output_res)


def _respace_trunk_buffers(
    tree: ClockTree,
    chain: List[int],
    buffer: BufferType,
    slew_limit: float,
    spacing_margin: float,
) -> int:
    """Uniformly re-space the trunk buffer chain; returns the new buffer count."""
    edges = chain[1:]
    total_length = sum(tree.node(n).edge_length() for n in edges)
    if total_length <= 0.0:
        return 0

    wire = tree.node(edges[0]).wire_type
    unit_cap = wire.unit_capacitance if wire is not None else 0.2
    drivable = max_drivable_capacitance(buffer, slew_limit)
    max_span = max((drivable - buffer.input_cap) / unit_cap * spacing_margin, 50.0)

    previous_count = sum(1 for n in edges if tree.node(n).has_buffer)
    needed = max(int(total_length // max_span), 1)
    count = max(previous_count, needed)
    # Preserve the trunk's inversion parity so sink polarities stay correct.
    if buffer.inverting and (count - previous_count) % 2 == 1:
        count += 1

    for node_id in edges:
        if tree.node(node_id).has_buffer:
            tree.remove_buffer(node_id)

    targets = [total_length * (i + 1) / (count + 1) for i in range(count)]
    _place_along_chain(tree, edges, targets, buffer)
    return count


def _place_along_chain(
    tree: ClockTree, edges: List[int], targets: List[float], buffer: BufferType
) -> None:
    """Place a buffer at each arc-length target measured along the chain edges."""
    # Group targets by the chain edge that contains them.
    spans: List[Tuple[int, float, float]] = []
    walked = 0.0
    for node_id in edges:
        length = tree.node(node_id).edge_length()
        spans.append((node_id, walked, walked + length))
        walked += length

    per_edge = {}
    for target in targets:
        for node_id, lo, hi in spans:
            if lo <= target <= hi and hi > lo:
                per_edge.setdefault(node_id, []).append((target - lo) / (hi - lo))
                break

    for node_id, fractions in per_edge.items():
        fractions.sort()
        previous = 0.0
        for fraction in fractions:
            local = (fraction - previous) / (1.0 - previous)
            local = min(max(local, 1e-6), 1.0 - 1e-6)
            new_node = tree.split_edge(node_id, local)
            tree.place_buffer(new_node, buffer)
            previous = fraction
