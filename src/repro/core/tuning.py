"""Shared machinery for the SPICE-driven tuning passes.

Every Contango optimization pass follows the same Improvement- &
Violation-Checking (IVC) discipline from Figure 1 of the paper:

1. snapshot the current solution,
2. apply a batch of tuning moves sized by the slack budgets,
3. re-evaluate the network (one CNE = one "SPICE run"),
4. keep the change only if the objective improved and no slew violation
   appeared; otherwise roll back and stop.

This module holds the pieces those passes share:

* :class:`PassResult` -- the per-pass outcome record,
* :func:`objective_value` -- the scalar objectives (skew / CLR / combined),
* :class:`SlewBudget` -- per-stage slew headroom bookkeeping, so that a batch
  of slow-down moves cannot jointly push a stage past the slew limit,
* the calibrated wire-delay models of Sections IV-E/IV-F: the impact of
  downsizing or snaking an edge is predicted analytically from the edge's
  stage-local downstream capacitance and then scaled by a correction factor
  measured with a single evaluation of a few independently perturbed mid-tree
  edges (the paper's ``Tws`` / ``Twn`` calibration runs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.evaluator import ClockNetworkEvaluator, EvaluationReport
from repro.analysis.units import OHM_FF_TO_PS
from repro.cts.tree import ClockTree
from repro.cts.wirelib import WireLibrary

__all__ = [
    "PassResult",
    "SlewBudget",
    "DownsizeModel",
    "SnakeModel",
    "objective_value",
    "select_independent_middle_edges",
    "stage_local_downstream_capacitance",
    "stage_slew_headroom",
    "calibrate_downsize_model",
    "calibrate_snake_model",
]


@dataclass
class PassResult:
    """Outcome of one optimization pass."""

    name: str
    improved: bool
    rounds: int
    edges_changed: int
    initial: Dict[str, float]
    final: Dict[str, float]
    evaluations_used: int
    notes: List[str] = field(default_factory=list)
    #: Evaluation of the tree as the pass left it (the last accepted state).
    #: Threaded into the next pass as its ``baseline`` so consecutive passes
    #: never re-evaluate an unchanged tree.
    final_report: Optional[EvaluationReport] = None

    @property
    def skew_reduction(self) -> float:
        return self.initial.get("skew_ps", 0.0) - self.final.get("skew_ps", 0.0)

    @property
    def clr_reduction(self) -> float:
        return self.initial.get("clr_ps", 0.0) - self.final.get("clr_ps", 0.0)


def objective_value(report: EvaluationReport, objective: str) -> float:
    """Scalar objective extracted from an evaluation report.

    ``"skew"`` and ``"clr"`` select the respective metric; ``"combined"``
    weighs CLR with the nominal skew, which is useful for acceptance tests of
    passes that should improve one without wrecking the other.
    """
    if objective == "skew":
        return report.skew
    if objective == "clr":
        return report.clr
    if objective == "combined":
        return report.clr + report.skew
    raise ValueError(f"unknown objective {objective!r}")


# ----------------------------------------------------------------------
# Stage-local capacitance and slew headroom
# ----------------------------------------------------------------------
def stage_local_downstream_capacitance(tree: ClockTree) -> Dict[int, float]:
    """Capacitance seen by extra resistance inserted into each edge.

    For the edge above node ``v`` this is half of the edge's own wire
    capacitance plus everything hanging below ``v`` *within the same buffer
    stage*: downstream wire, sink pins, and the input pins of the next-stage
    buffers.  Buffers isolate their subtrees, so capacitance beyond them does
    not load the edge.
    """
    caps: Dict[int, float] = {}
    for node in tree.postorder():
        local = tree.node_load_capacitance(node.node_id)
        local += 0.5 * tree.edge_capacitance(node.node_id)
        if not node.has_buffer:
            for child in node.children:
                local += caps[child] + 0.5 * tree.edge_capacitance(child)
        caps[node.node_id] = local
    return caps


class SlewBudget:
    """Per-stage slew headroom bookkeeping for slow-down tuning moves.

    Slowing an edge down (narrower wire, snaking) degrades the transition at
    every tap of the *stage* containing that edge, so a tuning move is only
    safe while the stage's worst tap slew stays comfortably below the limit.
    The budget starts at ``slew_limit - worst tap slew of the stage`` (worst
    over corners and transitions) and every accepted move consumes an estimate
    of its slew impact, so several edges of the same stage cannot jointly blow
    the limit even though each one individually would fit.
    """

    #: conversion from added stage delay (ps) to added tap slew (ps); a
    #: single-pole stage has slew = ln(9) * tau, so the ratio is ~2.2.
    DELAY_TO_SLEW = 2.2

    def __init__(self, edge_to_stage: Dict[int, int], headroom: Dict[int, float]) -> None:
        self._edge_to_stage = edge_to_stage
        self._headroom = headroom

    def available(self, edge_id: int) -> float:
        """Remaining slew headroom (ps) of the stage containing ``edge_id``."""
        stage = self._edge_to_stage.get(edge_id)
        if stage is None:
            return float("inf")
        return self._headroom[stage]

    def allows_delay(self, edge_id: int, added_delay: float, guard: float = 1.6) -> bool:
        """True when slowing ``edge_id`` by ``added_delay`` ps keeps its stage safe."""
        return self.available(edge_id) >= guard * self.DELAY_TO_SLEW * added_delay

    def consume_delay(self, edge_id: int, added_delay: float) -> None:
        """Charge the stage of ``edge_id`` for a move adding ``added_delay`` ps."""
        stage = self._edge_to_stage.get(edge_id)
        if stage is None:
            return
        self._headroom[stage] -= self.DELAY_TO_SLEW * added_delay

    def max_delay(self, edge_id: int, guard: float = 1.6) -> float:
        """Largest added delay (ps) the stage of ``edge_id`` can still absorb."""
        available = self.available(edge_id)
        if available == float("inf"):
            return float("inf")
        return max(available / (guard * self.DELAY_TO_SLEW), 0.0)


def stage_slew_headroom(tree: ClockTree, report: EvaluationReport) -> SlewBudget:
    """Build the :class:`SlewBudget` of ``tree`` from an evaluation report."""
    from repro.analysis.rcnetwork import extract_stages  # local import to avoid cycles

    edge_to_stage: Dict[int, int] = {}
    headroom: Dict[int, float] = {}
    for stage_index, stage in enumerate(extract_stages(tree)):
        worst = 0.0
        for timing in report.corners.values():
            for tap in stage.taps:
                per_tap = timing.tap_slew.get(tap)
                if per_tap:
                    worst = max(worst, max(per_tap.values()))
        headroom[stage_index] = report.slew_limit - worst
        for edge in stage.edges:
            edge_to_stage[edge] = stage_index
    return SlewBudget(edge_to_stage, headroom)


# ----------------------------------------------------------------------
# Calibrated wire-delay models (Tws / Twn)
# ----------------------------------------------------------------------
@dataclass
class DownsizeModel:
    """Predicts the latency impact of switching one edge to a narrower wire."""

    calibration: float
    stage_cap: Dict[int, float]

    def refresh(self, tree: ClockTree) -> None:
        """Recompute the stage-local loads after the tree has been edited."""
        self.stage_cap = stage_local_downstream_capacitance(tree)

    def predicted_delay(self, tree: ClockTree, wirelib: WireLibrary, node_id: int) -> float:
        """Estimated worst-sink latency increase (ps) of downsizing the edge."""
        node = tree.node(node_id)
        if node.wire_type is None or not wirelib.can_downsize(node.wire_type):
            return 0.0
        narrower = wirelib.narrower(node.wire_type)
        delta_res = (narrower.unit_resistance - node.wire_type.unit_resistance) * node.edge_length()
        load = self.stage_cap.get(node_id, 0.0)
        return self.calibration * delta_res * load * OHM_FF_TO_PS


@dataclass
class SnakeModel:
    """Predicts the latency impact of adding snaking wirelength to an edge."""

    calibration: float
    stage_cap: Dict[int, float]

    def refresh(self, tree: ClockTree) -> None:
        self.stage_cap = stage_local_downstream_capacitance(tree)

    def delay_for_length(self, tree: ClockTree, node_id: int, extra_length: float) -> float:
        """Estimated latency increase (ps) of snaking the edge by ``extra_length`` um."""
        wire = tree.node(node_id).wire_type
        if wire is None or extra_length <= 0.0:
            return 0.0
        load = self.stage_cap.get(node_id, 0.0)
        raw = wire.unit_resistance * extra_length * (
            wire.unit_capacitance * extra_length / 2.0 + load
        ) * OHM_FF_TO_PS
        return self.calibration * raw

    def length_for_delay(self, tree: ClockTree, node_id: int, delay_budget: float) -> float:
        """Largest snake length (um) whose predicted delay fits in ``delay_budget`` ps."""
        wire = tree.node(node_id).wire_type
        if wire is None or delay_budget <= 0.0 or self.calibration <= 0.0:
            return 0.0
        load = self.stage_cap.get(node_id, 0.0)
        a = self.calibration * wire.unit_resistance * wire.unit_capacitance / 2.0 * OHM_FF_TO_PS
        b = self.calibration * wire.unit_resistance * load * OHM_FF_TO_PS
        if a <= 0.0:
            return delay_budget / b if b > 0.0 else 0.0
        disc = b * b + 4.0 * a * delay_budget
        return (-b + math.sqrt(disc)) / (2.0 * a)


def select_independent_middle_edges(tree: ClockTree, count: int = 5) -> List[int]:
    """Pick up to ``count`` long, mutually independent edges mid-way down the tree.

    "Independent" means no selected edge lies in the subtree of another, so a
    single evaluation of the tree with all of them perturbed measures each
    perturbation's effect on disjoint sink sets.  Mid-depth edges are chosen
    because the paper calibrates its linear model on "several independent wire
    segments in the middle of the tree".
    """
    depths: Dict[int, int] = {tree.root_id: 0}
    max_depth = 0
    for node in tree.preorder():
        if node.parent is not None:
            depths[node.node_id] = depths[node.parent] + 1
            max_depth = max(max_depth, depths[node.node_id])
    if max_depth == 0:
        return []
    target_depth = max(1, max_depth // 2)

    candidates = [
        node
        for node in tree.nodes()
        if node.parent is not None
        and abs(depths[node.node_id] - target_depth) <= 1
        and node.edge_length() > 0.0
    ]
    candidates.sort(key=lambda n: -n.edge_length())

    chosen: List[int] = []
    blocked: set = set()
    for node in candidates:
        if node.node_id in blocked:
            continue
        chosen.append(node.node_id)
        blocked.update(tree.subtree_node_ids(node.node_id))
        # Ancestors of a chosen edge are also excluded to preserve independence.
        current = node.parent
        while current is not None:
            blocked.add(current)
            current = tree.node(current).parent
        if len(chosen) >= count:
            break
    return chosen


def _max_latency_increase(
    baseline: EvaluationReport,
    perturbed: EvaluationReport,
    sink_ids: Sequence[int],
    corner: Optional[str] = None,
) -> float:
    """Largest per-sink latency increase (over rise and fall) among ``sink_ids``."""
    corner_name = corner or baseline.fast_corner
    base = baseline.corners[corner_name].latency
    new = perturbed.corners[corner_name].latency
    worst = 0.0
    for sink_id in sink_ids:
        for transition in ("rise", "fall"):
            worst = max(worst, new[sink_id][transition] - base[sink_id][transition])
    return worst


def _calibration_factor(ratios: List[float]) -> float:
    """Aggregate measured/analytic ratios into one conservative factor.

    The maximum ratio is used (a conservative model slows fewer edges per
    round, which the IVC loop then extends over more rounds), clamped to a
    sane band so a single noisy probe cannot freeze or explode the model.
    """
    if not ratios:
        return 1.0
    return min(max(max(ratios), 0.25), 3.0)


def calibrate_downsize_model(
    tree: ClockTree,
    evaluator: ClockNetworkEvaluator,
    wirelib: WireLibrary,
    baseline: EvaluationReport,
    sample_edges: int = 5,
    edge_ids: Optional[Sequence[int]] = None,
) -> Optional[DownsizeModel]:
    """Calibrate the wiresizing impact model with one probe evaluation.

    Up to ``sample_edges`` independent mid-tree edges (or the explicitly
    supplied ``edge_ids``) are downsized on a clone of the tree; a single
    evaluation then measures each edge's worst downstream latency increase,
    and the ratio to the analytic prediction becomes the model's calibration
    factor.  Returns None when no probe edge can be downsized.
    """
    stage_cap = stage_local_downstream_capacitance(tree)
    model = DownsizeModel(calibration=1.0, stage_cap=stage_cap)
    probe_ids = (
        list(edge_ids)
        if edge_ids is not None
        else select_independent_middle_edges(tree, count=sample_edges)
    )
    edges = [
        node_id
        for node_id in probe_ids
        if tree.node(node_id).wire_type is not None
        and wirelib.can_downsize(tree.node(node_id).wire_type)
        and tree.node(node_id).edge_length() > 0.0
    ]
    if not edges:
        return None
    probe = tree.clone()
    for node_id in edges:
        probe.set_wire_type(node_id, wirelib.narrower(probe.node(node_id).wire_type))
    perturbed = evaluator.evaluate(probe)
    downstream = tree.downstream_sinks_map()
    ratios: List[float] = []
    for node_id in edges:
        analytic = model.predicted_delay(tree, wirelib, node_id)
        if analytic <= 0.0:
            continue
        measured = _max_latency_increase(baseline, perturbed, downstream[node_id])
        ratios.append(measured / analytic)
    model.calibration = _calibration_factor(ratios)
    return model


def calibrate_snake_model(
    tree: ClockTree,
    evaluator: ClockNetworkEvaluator,
    baseline: EvaluationReport,
    unit_length: float,
    sample_edges: int = 5,
    edge_ids: Optional[Sequence[int]] = None,
) -> Optional[SnakeModel]:
    """Calibrate the wiresnaking impact model with one probe evaluation.

    Analogous to :func:`calibrate_downsize_model`: the probe edges receive one
    snaking unit of ``unit_length`` micrometres each and the measured latency
    increases calibrate the analytic model.
    """
    if unit_length <= 0.0:
        raise ValueError("unit_length must be positive")
    stage_cap = stage_local_downstream_capacitance(tree)
    model = SnakeModel(calibration=1.0, stage_cap=stage_cap)
    edges = (
        list(edge_ids)
        if edge_ids is not None
        else select_independent_middle_edges(tree, count=sample_edges)
    )
    edges = [e for e in edges if tree.node(e).wire_type is not None]
    if not edges:
        return None
    probe = tree.clone()
    for node_id in edges:
        probe.add_snake(node_id, unit_length)
    perturbed = evaluator.evaluate(probe)
    downstream = tree.downstream_sinks_map()
    ratios: List[float] = []
    for node_id in edges:
        analytic = model.delay_for_length(tree, node_id, unit_length)
        if analytic <= 0.0:
            continue
        measured = _max_latency_increase(baseline, perturbed, downstream[node_id])
        ratios.append(measured / analytic)
    model.calibration = _calibration_factor(ratios)
    return model
