"""Contango's core contribution: slack-driven clock-network optimization.

The package contains the paper's novel pieces -- the slow-down/speed-up slack
framework, composite inverter analysis, minimal sink-polarity correction, the
SPICE-driven wiresizing/wiresnaking/buffer-sizing passes -- and the
:class:`ContangoFlow` methodology that coordinates them (Figure 1).
"""

from repro.core.config import DEFAULT_PIPELINE, VARIATION_PIPELINE, FlowConfig
from repro.core.variation import VariationGate
from repro.core.flow import ContangoFlow
from repro.core.ivc import (
    IvcEngine,
    IvcOutcome,
    IvcState,
    Transaction,
    default_constraints,
    ivc_round,
)
from repro.core.pipeline import (
    OptimizationPass,
    PASS_REGISTRY,
    PassContext,
    PipelineDriver,
    available_passes,
    register_pass,
    resolve_pipeline,
)
from repro.core.report import FlowResult, StageRecord
from repro.core.slack import (
    SinkSlacks,
    SlackAnnotation,
    annotate_tree_slacks,
    compute_sink_slacks,
)
from repro.core.composite import (
    CompositeAnalysis,
    analyze_composites,
    composite_ladder,
    enumerate_composites,
    non_dominated_composites,
    smallest_dominating_count,
    table1_rows,
)
from repro.core.polarity import (
    PolarityCorrectionResult,
    correct_sink_polarity,
    count_inverted_sinks,
)
from repro.core.tuning import PassResult, objective_value
from repro.core.wiresizing import top_down_wiresizing
from repro.core.wiresnaking import top_down_wiresnaking
from repro.core.bottom_level import bottom_level_fine_tuning, rise_fall_divergence
from repro.core.buffer_sliding import (
    find_trunk_chain,
    slide_and_interleave_trunk,
    trunk_buffer_nodes,
)
from repro.core.buffer_sizing import (
    bottom_level_buffers,
    buffer_depths,
    iterative_buffer_sizing,
)

__all__ = [
    "DEFAULT_PIPELINE",
    "VARIATION_PIPELINE",
    "VariationGate",
    "FlowConfig",
    "ContangoFlow",
    "FlowResult",
    "StageRecord",
    "IvcEngine",
    "IvcOutcome",
    "IvcState",
    "Transaction",
    "default_constraints",
    "ivc_round",
    "OptimizationPass",
    "PASS_REGISTRY",
    "PassContext",
    "PipelineDriver",
    "available_passes",
    "register_pass",
    "resolve_pipeline",
    "SinkSlacks",
    "SlackAnnotation",
    "annotate_tree_slacks",
    "compute_sink_slacks",
    "CompositeAnalysis",
    "analyze_composites",
    "composite_ladder",
    "enumerate_composites",
    "non_dominated_composites",
    "smallest_dominating_count",
    "table1_rows",
    "PolarityCorrectionResult",
    "correct_sink_polarity",
    "count_inverted_sinks",
    "PassResult",
    "objective_value",
    "top_down_wiresizing",
    "top_down_wiresnaking",
    "bottom_level_fine_tuning",
    "rise_fall_divergence",
    "find_trunk_chain",
    "slide_and_interleave_trunk",
    "trunk_buffer_nodes",
    "bottom_level_buffers",
    "buffer_depths",
    "iterative_buffer_sizing",
]
