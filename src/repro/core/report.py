"""Flow result records (stage snapshots, Table III/IV/V style summaries)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.evaluator import EvaluationReport
from repro.core.tuning import PassResult
from repro.cts.tree import ClockTree

__all__ = ["StageRecord", "FlowResult"]


@dataclass
class StageRecord:
    """Metrics captured right after one flow stage (one row of Table III)."""

    stage: str
    skew_ps: float
    clr_ps: float
    max_latency_ps: float
    worst_slew_ps: float
    total_capacitance_fF: float
    capacitance_utilization: Optional[float]
    wirelength_um: float
    buffer_count: int
    evaluations: int
    elapsed_s: float

    @classmethod
    def from_report(
        cls,
        stage: str,
        tree: ClockTree,
        report: EvaluationReport,
        elapsed_s: float,
    ) -> "StageRecord":
        return cls(
            stage=stage,
            skew_ps=report.skew,
            clr_ps=report.clr,
            max_latency_ps=report.max_latency,
            worst_slew_ps=report.worst_slew,
            total_capacitance_fF=report.total_capacitance,
            capacitance_utilization=report.capacitance_utilization,
            wirelength_um=report.wirelength,
            buffer_count=tree.buffer_count(),
            evaluations=report.evaluation_index,
            elapsed_s=elapsed_s,
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "stage": self.stage,
            "skew_ps": self.skew_ps,
            "clr_ps": self.clr_ps,
            "max_latency_ps": self.max_latency_ps,
            "worst_slew_ps": self.worst_slew_ps,
            "total_capacitance_fF": self.total_capacitance_fF,
            "capacitance_utilization": self.capacitance_utilization,
            "wirelength_um": self.wirelength_um,
            "buffer_count": self.buffer_count,
            "evaluations": self.evaluations,
            "elapsed_s": self.elapsed_s,
        }


@dataclass
class FlowResult:
    """Complete outcome of one Contango (or baseline) synthesis run."""

    instance_name: str
    flow_name: str
    tree: ClockTree
    final_report: EvaluationReport
    stages: List[StageRecord] = field(default_factory=list)
    pass_results: Dict[str, PassResult] = field(default_factory=dict)
    chosen_buffer: Optional[str] = None
    inverted_sinks: int = 0
    polarity_inverters_added: int = 0
    obstacle_detours: int = 0
    total_evaluations: int = 0
    runtime_s: float = 0.0
    #: Hit/miss/size statistics of the flow evaluator's incremental stage
    #: cache (see :meth:`repro.analysis.evaluator.StageCache.stats`).
    evaluator_cache: Dict[str, int] = field(default_factory=dict)

    @property
    def skew(self) -> float:
        return self.final_report.skew

    @property
    def clr(self) -> float:
        return self.final_report.clr

    @property
    def capacitance_utilization(self) -> Optional[float]:
        return self.final_report.capacitance_utilization

    def stage(self, name: str) -> StageRecord:
        for record in self.stages:
            if record.stage == name:
                return record
        raise KeyError(f"no stage named {name!r} in flow result")

    def stage_table(self) -> List[Dict[str, float]]:
        """Per-stage rows in Table III format."""
        return [record.as_dict() for record in self.stages]

    def summary(self) -> Dict[str, float]:
        """Single-row summary in Table IV format."""
        return {
            "instance": self.instance_name,
            "flow": self.flow_name,
            "clr_ps": self.clr,
            "skew_ps": self.skew,
            "max_latency_ps": self.final_report.max_latency,
            "capacitance_utilization": self.capacitance_utilization,
            "total_capacitance_fF": self.final_report.total_capacitance,
            "wirelength_um": self.final_report.wirelength,
            "slew_violations": len(self.final_report.slew_violations),
            "evaluations": self.total_evaluations,
            "runtime_s": self.runtime_s,
        }
