"""Flow result records (stage snapshots, Table III/IV/V style summaries).

The serialized *shapes* of these records -- per-stage rows and the Table IV
summary -- are owned by the typed schema layer (:mod:`repro.api.records`):
:class:`StageRecord` extends :class:`repro.api.records.StageRow` with the
flow-side constructor, and :meth:`FlowResult.summary` builds a
:class:`repro.api.records.RunSummary`, so field names exist in exactly one
place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.evaluator import EvaluationReport
from repro.api.records import RunSummary, StageRow
from repro.core.tuning import PassResult
from repro.cts.tree import ClockTree

__all__ = ["StageRecord", "FlowResult"]


@dataclass
class StageRecord(StageRow):
    """Metrics captured right after one flow stage (one row of Table III).

    Inherits every field (and the ``to_record``/``from_record`` pair) from
    the public :class:`~repro.api.records.StageRow` schema; this subclass
    only adds the constructor that snapshots a live evaluation.
    """

    @classmethod
    def from_report(
        cls,
        stage: str,
        tree: ClockTree,
        report: EvaluationReport,
        elapsed_s: float,
    ) -> "StageRecord":
        return cls(
            stage=stage,
            skew_ps=report.skew,
            clr_ps=report.clr,
            max_latency_ps=report.max_latency,
            worst_slew_ps=report.worst_slew,
            total_capacitance_fF=report.total_capacitance,
            capacitance_utilization=report.capacitance_utilization,
            wirelength_um=report.wirelength,
            buffer_count=tree.buffer_count(),
            evaluations=report.evaluation_index,
            elapsed_s=elapsed_s,
        )

    def as_dict(self) -> Dict[str, object]:
        """Alias of :meth:`~repro.api.records.StageRow.to_record`."""
        return self.to_record()


@dataclass
class FlowResult:
    """Complete outcome of one Contango (or baseline) synthesis run.

    ``tree`` and ``final_report`` are ``None`` only while a pipeline is still
    populating the record; a result handed back by a flow always carries
    both.  Use :meth:`require_tree` / :meth:`require_report` for validated
    access (every metric property goes through them).
    """

    instance_name: str
    flow_name: str
    tree: Optional[ClockTree] = None
    final_report: Optional[EvaluationReport] = None
    stages: List[StageRecord] = field(default_factory=list)
    pass_results: Dict[str, PassResult] = field(default_factory=dict)
    chosen_buffer: Optional[str] = None
    inverted_sinks: int = 0
    polarity_inverters_added: int = 0
    obstacle_detours: int = 0
    total_evaluations: int = 0
    runtime_s: float = 0.0
    #: Hit/miss/size statistics of the flow evaluator's incremental stage
    #: cache (see :meth:`repro.analysis.evaluator.StageCache.stats`).
    evaluator_cache: Dict[str, int] = field(default_factory=dict)
    #: Bookkeeping of the Monte Carlo p95 acceptance gate (empty unless the
    #: pipeline ran variation-aware passes; see
    #: :meth:`repro.core.variation.VariationGate.stats`).
    variation_gate: Dict[str, object] = field(default_factory=dict)

    def require_tree(self) -> ClockTree:
        """The synthesized tree; raises if the flow never produced one."""
        if self.tree is None:
            raise ValueError(
                f"flow result for {self.instance_name!r} carries no tree yet"
            )
        return self.tree

    def require_report(self) -> EvaluationReport:
        """The final evaluation; raises if the flow never evaluated."""
        if self.final_report is None:
            raise ValueError(
                f"flow result for {self.instance_name!r} carries no final report yet"
            )
        return self.final_report

    @property
    def skew(self) -> float:
        return self.require_report().skew

    @property
    def clr(self) -> float:
        return self.require_report().clr

    @property
    def capacitance_utilization(self) -> Optional[float]:
        return self.require_report().capacitance_utilization

    def stage(self, name: str) -> StageRecord:
        for record in self.stages:
            if record.stage == name:
                return record
        raise KeyError(f"no stage named {name!r} in flow result")

    def stage_table(self) -> List[Dict[str, object]]:
        """Per-stage rows in Table III format."""
        return [record.to_record() for record in self.stages]

    def typed_summary(self) -> RunSummary:
        """Single-row summary in Table IV format, as the typed schema."""
        report = self.require_report()
        return RunSummary(
            instance=self.instance_name,
            flow=self.flow_name,
            clr_ps=self.clr,
            skew_ps=self.skew,
            max_latency_ps=report.max_latency,
            capacitance_utilization=self.capacitance_utilization,
            total_capacitance_fF=report.total_capacitance,
            wirelength_um=report.wirelength,
            slew_violations=len(report.slew_violations),
            evaluations=self.total_evaluations,
            runtime_s=self.runtime_s,
        )

    def summary(self) -> Dict[str, object]:
        """Single-row summary in Table IV format (legacy dict shape)."""
        return self.typed_summary().to_record()
